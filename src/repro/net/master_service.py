"""The networked application master: §V-B over a real control plane.

:class:`NetworkedApplicationMaster` wraps the transport-free
:class:`~repro.coordination.master.ApplicationMaster` in a message
handler so an elastic job can run as N separate processes (or threads)
talking to the AM through :mod:`repro.net` links — in-memory or TCP,
identically.

The AM is also the gradient rendezvous: workers post their per-shard
gradients with ``SYNC`` and block until every member of their generation
contributed, then all receive the same server-computed mean.  Because
every replica starts from the same seed-initialized parameters and
applies identical averaged updates, replicas stay bit-identical — which
the final sha256 parameter digests assert end-to-end.

Adjustments follow Fig. 2 over the wire:

1. the driver sends ``ADJUSTMENT_REQUEST``;
2. joining workers poll ``JOIN`` (each poll doubles as the
   worker-report, idempotently) until the commit plan and the uploaded
   state snapshot are both ready;
3. existing workers ``COORDINATE`` at boundaries; the first ``adjust``
   directive mints the commit plan and elects the state uploader;
4. the uploader pushes its snapshot with ``STATE_UPLOAD``
   (replication), joiners receive it inside their ``join`` reply;
5. once every old-group member saw the directive and the snapshot is
   in, the adjustment is finished and the new generation is live.
"""

from __future__ import annotations

import dataclasses
import threading
import time
import typing

import numpy as np

from ..coordination.master import (
    AdjustmentKind,
    AdjustmentRequest,
    ApplicationMaster,
    DirectiveKind,
    MasterState,
)
from ..coordination.messages import Message, MessageType
from ..coordination.store import KeyValueStore
from ..coordination.telemetry import RuntimeTelemetry
from ..observability import FleetCollector, MetricRegistry
from ..replication.planner import plan_replication
from ..topology.builder import ServerSpec, build_node
from ..topology.tree import DeviceKind, TopologyNode
from ..training.nn import average_gradients
from .chunks import (
    DEFAULT_CHUNK_BYTES,
    ChunkAssembler,
    ChunkStore,
    _digest,
    shard_ranges,
)
from .collective import ring_reference_average
from .journal import Journal, JournalError, JournalState
from .transport import ServerCore
from .wire import payload_nbytes


@dataclasses.dataclass(frozen=True)
class JobSpec:
    """Everything a worker needs to reconstruct the job locally.

    Shipped inside the ``join`` reply, so worker processes need no
    configuration beyond the AM's address and their own id.  The
    dataset and initial parameters are derived deterministically from
    the seed; only optimizer/loader/parameter state ever crosses the
    wire (and only at adjustments).
    """

    train_size: int = 512
    test_size: int = 128
    input_dim: int = 16
    hidden_dim: int = 16
    num_classes: int = 4
    seed: int = 7
    total_batch_size: int = 32
    base_lr: float = 0.05
    momentum: float = 0.9
    iterations: int = 24
    coordination_interval: int = 4
    #: server-side rendezvous wait — must cover the slowest member's
    #: arrival (including a joiner still fetching state at a commit).
    allreduce_timeout: float = 15.0
    #: simulated per-iteration compute time (seconds).  The numpy MLP
    #: steps in microseconds, so without pacing a whole job can finish
    #: before a scale-out's joiners even get their first poll in;
    #: examples and chaos tests use this to keep the job running while
    #: the adjustment plays out.
    iteration_sleep: float = 0.0
    #: client-side ack timeout per SYNC attempt.  Deliberately far below
    #: ``allreduce_timeout``: a dropped contribution must be resent while
    #: the other members are still waiting at the barrier, not after
    #: they have timed out.
    sync_ack_timeout: float = 2.0
    #: chunk size of the replication data plane; snapshots larger than
    #: this stream as multiple ``STATE_CHUNK`` messages.
    chunk_bytes: int = DEFAULT_CHUNK_BYTES
    #: how many chunk requests an uploader/fetcher keeps in flight.
    #: 1 = strictly serial (chaos tests use this to aim faults at exact
    #: chunk indices).
    replication_window: int = 4
    #: gradient plane: True routes per-iteration gradients over the
    #: decentralized ring (direct worker-peer links) once every member
    #: of a generation has a peer address; the star rendezvous stays as
    #: the pre-activation / degraded fallback path.  Workers without a
    #: peer host simply keep the whole job on the star path.
    ring_enabled: bool = True
    #: ring bucket size (bytes, element-aligned); one RING_SEGMENT per
    #: bucket per hop.
    ring_bucket_bytes: int = 64 * 1024
    #: in-flight segment window per ring hop (mirrors
    #: ``replication_window``).
    ring_window: int = 4
    #: how long a rank waits for one expected segment before declaring
    #: the ring degraded and falling back.
    ring_step_timeout: float = 2.0
    #: peer-link ack timeout (resend cadence between ring neighbours).
    ring_ack_timeout: float = 0.5
    #: gradient compression codec on the ring plane (``none`` | ``fp16``
    #: | ``int8``).  Negotiated per ring epoch: the value rides the ring
    #: payload the AM freezes at plan mint, so every member of an epoch
    #: agrees.  ``none`` (the default) keeps the ring bit-identical to
    #: the star path; a codec trades bounded, error-feedback-compensated
    #: precision for per-iteration ring bytes.
    ring_codec: str = "none"
    #: heartbeat-derived worker lease TTL (seconds).  0 disables lease
    #: tracking entirely — the default, so small tests and legacy jobs
    #: run without a supervisor thread.  With a TTL, any message or TCP
    #: heartbeat from a worker refreshes its lease; a worker whose lease
    #: expires is condemned and proactively evicted (scale-in) instead
    #: of stalling its generation's sync barriers until they time out.
    worker_lease_ttl: float = 0.0
    #: cadence of the lease supervisor's expiry sweep.
    lease_check_interval: float = 0.25
    #: live telemetry shipping cadence (seconds).  0 disables shipping —
    #: the default, so jobs without a fleet collector pay nothing.  With
    #: an interval, every worker periodically ships a bounded delta of
    #: its metric registry and trace-event buffer to the AM over a
    #: TELEMETRY message; the knob rides the join-reply spec, so setting
    #: it on the AM enables every worker.
    telemetry_interval: float = 0.0
    #: largest number of trace events per TELEMETRY delta (backpressure
    #: bound; the rest wait for the next tick).
    telemetry_max_events: int = 512
    #: largest unshipped trace-event backlog per worker; beyond it the
    #: oldest unshipped events are dropped (and counted) rather than
    #: letting a slow AM grow the shipper's cursor debt forever.
    telemetry_backlog: int = 4096
    #: sharded state migration: how many shard owners each adjustment
    #: elects among the survivors.  0 (the default) keeps the monolithic
    #: fan-out path: joiners pull the whole blob from the AM.  With
    #: ``k > 0`` the snapshot is cut into ``k`` contiguous digest-
    #: addressed shards, each owned by one survivor that freezes the
    #: (bit-identical) blob locally and serves its chunks over the peer
    #: mesh — joiners fan in from all owners concurrently.
    replication_shards: int = 0
    #: ZeRO-style sharded optimizer state: each worker persists only its
    #: rank's shard of the optimizer (velocity) state, so replication
    #: traffic per worker drops by 1/N; adjustments reshard the flat
    #: velocity space across the new world size at commit boundaries.
    zero_optimizer: bool = False

    @property
    def reply_wait(self) -> float:
        """Server-side wait for a duplicate of an in-flight request.

        Derived, not configured: a retransmission must be willing to
        wait out the longest legitimately-blocking handler — the sync
        rendezvous (``allreduce_timeout``) — plus slack, so the two
        timeouts cannot silently diverge.
        """
        return self.allreduce_timeout + 5.0

    def per_worker_batch(self, group_size: int) -> int:
        """Strong scaling: the total batch is split across the group."""
        return max(1, self.total_batch_size // max(1, group_size))

    def to_payload(self) -> dict:
        """Codec-safe dict form (for the ``join`` reply)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_payload(cls, payload: dict) -> "JobSpec":
        """Inverse of :meth:`to_payload`."""
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in fields})


class _SyncBarrier:
    """One (generation, iteration) gradient rendezvous."""

    __slots__ = ("expected", "contributions", "collected", "event", "result")

    def __init__(self, expected: typing.Iterable[str]):
        self.expected = frozenset(expected)
        self.contributions: "dict[str, typing.Any]" = {}
        #: members whose handler call has returned the result — once all
        #: have, the barrier can be dropped (dedup means no member's
        #: handler runs twice, so nobody will need it again).
        self.collected: set = set()
        self.event = threading.Event()
        self.result: "dict | None" = None


class _CommitPlan:
    """Bookkeeping for one in-flight adjustment commit (steps 3-5)."""

    __slots__ = (
        "generation", "commit_iteration", "old_group", "new_group",
        "add_workers", "uploader", "snapshot", "acked", "requested_at",
        "transfer_id", "ring", "shard_spec",
    )

    def __init__(self, generation, commit_iteration, old_group, new_group,
                 requested_at):
        self.generation = generation
        self.commit_iteration = commit_iteration
        self.old_group = tuple(old_group)
        self.new_group = tuple(new_group)
        self.add_workers = tuple(
            w for w in new_group if w not in set(old_group)
        )
        # The first surviving old-group member replicates state to the
        # joiners; without joiners there is nothing to replicate.
        self.uploader = self.old_group[0] if self.add_workers else None
        self.snapshot: "dict | None" = None
        self.acked: set = set()
        self.requested_at = requested_at
        #: set once a chunked upload for this plan completed (the
        #: monolithic legacy path leaves it None).
        self.transfer_id: "str | None" = None
        #: the new generation's ring (order + peer addresses), frozen at
        #: mint time so every directive and offer ships the same mesh.
        self.ring: "dict | None" = None
        #: sharded-migration assignment frozen at mint time: the
        #: deterministic transfer id plus the elected shard owners
        #: (survivors with peer addresses).  None = monolithic fan-out.
        self.shard_spec: "dict | None" = None


class _Download:
    """One completed snapshot served chunk-by-chunk to joiners.

    The application master never decodes the blob — it verified the
    whole-blob digest at ``STATE_DONE`` and now serves byte ranges of
    it.  ``rounds`` carries the replication planner's ordering: a
    joiner's fetches are gated until every earlier-round joiner has
    pulled its last chunk, mirroring the plan's contention-free rounds.
    """

    __slots__ = (
        "blob", "total_bytes", "total_chunks", "chunk_bytes", "codec",
        "digest", "chunk_digests", "rounds", "progress", "generation",
        "shards",
    )

    def __init__(self, assembler, rounds: "dict[str, int]", generation: int):
        self.blob = memoryview(assembler.buffer)
        self.total_bytes = assembler.total_bytes
        self.total_chunks = assembler.total_chunks
        self.chunk_bytes = assembler.chunk_bytes
        self.codec = assembler.codec
        self.digest = _digest(assembler.buffer)
        self.chunk_digests = [
            _digest(self.chunk(seq)) for seq in range(self.total_chunks)
        ]
        self.rounds = dict(rounds)
        self.progress: "dict[str, set]" = {w: set() for w in rounds}
        self.generation = generation
        #: sharded mode: the shard plan (ranges + digests + owner + peer
        #: addr per shard), shipped verbatim in every joiner's offer.
        #: None = monolithic fan-out.
        self.shards: "list[dict] | None" = None

    def chunk(self, seq: int) -> memoryview:
        start = seq * self.chunk_bytes
        return self.blob[start:min(start + self.chunk_bytes, self.total_bytes)]

    def fetched(self, joiner: str) -> bool:
        return len(self.progress.get(joiner, ())) == self.total_chunks

    @property
    def complete(self) -> bool:
        return all(self.fetched(joiner) for joiner in self.rounds)

    def round_open(self, joiner: str) -> bool:
        mine = self.rounds[joiner]
        return all(
            self.fetched(other)
            for other, r in self.rounds.items()
            if r < mine
        )

    def describe(self, transfer_id: str, joiner: str) -> dict:
        """The ``state_transfer`` descriptor for one joiner's offer."""
        descriptor = {
            "transfer_id": transfer_id,
            "total_bytes": self.total_bytes,
            "total_chunks": self.total_chunks,
            "chunk_bytes": self.chunk_bytes,
            "codec": self.codec,
            "digest": self.digest,
            "round": self.rounds[joiner],
        }
        if self.shards is not None:
            descriptor["shards"] = [dict(shard) for shard in self.shards]
        return descriptor


def _fanout_rounds(
    sources: typing.Sequence[str], joiners: typing.Sequence[str],
    state_bytes: int, fan_in: int = 1,
) -> "dict[str, int]":
    """The replication planner's round index per joiner.

    Workers are modeled as single-GPU nodes of a flat cluster (every
    pair is an L4/NET hop whose path claims only the two endpoint
    NICs), so the planner's contention rules reduce to exactly the
    paper's: distinct node pairs copy concurrently, a shared source
    serializes, and chained fan-out lets round-``r`` joiners serve
    round ``r+1``.

    ``fan_in > 1`` models the sharded migration instead: each joiner
    pulls disjoint shards from up to ``fan_in`` sources at once, so the
    planner schedules per-joiner fan-in groups as units — same-round
    joiners never share an owner link (chaining is off; shard owners
    are elected among the survivors only).
    """
    cluster = TopologyNode(DeviceKind.CLUSTER, "netjob")
    spec = ServerSpec(sockets=1, switches_per_socket=1, gpus_per_switch=1)
    gpus = {}
    for worker in (*sources, *joiners):
        node = build_node(worker, spec=spec, parent=cluster)
        gpus[worker] = next(node.iter_gpus())
    plan = plan_replication(
        existing=[gpus[w] for w in sources],
        new=[gpus[w] for w in joiners],
        gpu_bytes=state_bytes,
        cpu_bytes=0,
        allow_chaining=fan_in <= 1,
        fan_in=fan_in,
    )
    rounds: "dict[str, int]" = {}
    for index, round_ in enumerate(plan.rounds):
        for transfer in round_:
            rounds[transfer.target.name.rsplit("/", 1)[0]] = index
    return rounds


class NetworkedApplicationMaster:
    """Message-driven AM + parameter rendezvous for multi-process jobs."""

    def __init__(
        self,
        spec: JobSpec,
        workers: typing.Sequence[str],
        job_id: str = "netjob",
        tracer: "typing.Any | None" = None,
        metrics: "MetricRegistry | None" = None,
        journal: "Journal | None" = None,
        clock: "typing.Callable[[], float] | None" = None,
        _replay: "JournalState | None" = None,
    ):
        self.spec = spec
        self.tracer = tracer
        self.metrics = metrics if metrics is not None else MetricRegistry()
        #: write-ahead journal (in-memory unless the caller hands in a
        #: file-backed one).  Every externally visible transition is
        #: appended *before* the reply that makes it observable, so a
        #: successor AM replaying the journal can never forget a
        #: commitment a worker might act on.
        self.journal = journal if journal is not None else Journal(
            metrics=self.metrics
        )
        self._clock = clock or time.monotonic
        self.am = ApplicationMaster(
            job_id,
            workers,
            coordination_interval=spec.coordination_interval,
            tracer=tracer,
        )
        self._lock = threading.RLock()
        self._generation = 0
        self._groups: "dict[int, tuple]" = {0: tuple(workers)}
        self._plan: "_CommitPlan | None" = None
        self._pending_request_at: "float | None" = None
        self._barriers: "dict[tuple, _SyncBarrier]" = {}
        self._join_offers: "dict[str, dict]" = {}
        #: worker id -> advertised peer-mesh address (from JOIN polls).
        self._peer_addrs: "dict[str, str]" = {}
        self._final: "dict[str, dict]" = {}
        self._departed: "dict[str, dict]" = {}
        self._latest_sync_iteration = 0
        self.commit_latencies: "list[float]" = []
        self._complete = threading.Event()
        self._chunks = ChunkStore(metrics=self.metrics)
        self._downloads: "dict[str, _Download]" = {}
        #: the last committed adjustment (journal ``commit`` shape) —
        #: kept so a retransmitted COORDINATE at the old commit boundary
        #: can be re-answered with the adjust directive after failover.
        self._last_commit: "dict | None" = None
        #: per-generation sync floor: the highest iteration any *fresh*
        #: SYNC arrived at.  A fresh sync below the floor belongs to a
        #: barrier the group already moved past (possible only after a
        #: failover lost the reply cache) and is answered with a
        #: retryable stale-barrier error instead of seeding a barrier
        #: that can never complete.
        self._sync_floors: "dict[int, int]" = {}
        #: boundary watermark already journaled (one ``progress`` record
        #: per boundary, not one per coordination).
        self._journaled_progress = 0
        #: condemned workers (lease expired) -> condemnation clock time.
        self._condemned: "dict[str, float]" = {}
        #: condemned workers whose eviction has not committed yet ->
        #: detection clock time (MTTR measurement start).
        self._recovering: "dict[str, float]" = {}
        self._fenced = False
        #: heartbeat-lease substrate (PR 1 semantics, injectable clock).
        self._leases = KeyValueStore(clock=clock)
        self.telemetry = RuntimeTelemetry(clock=clock, metrics=self.metrics)
        #: live fleet view fed by workers' TELEMETRY deltas.  Never
        #: journaled: a successor AM starts with an empty collector and
        #: every worker re-ships a full snapshot after re-enrollment,
        #: which rebuilds the view without bloating the write-ahead log.
        self.fleet = FleetCollector(job_id=job_id)
        self.core = ServerCore(
            handler=self.handle, node_id="am", tracer=tracer,
            reply_wait=spec.reply_wait,
            metrics=self.metrics,
            on_activity=self._on_activity,
        )
        self._server = None
        if _replay is None:
            self.epoch = 1
            self.journal.append(
                "init", job_id=job_id, spec=spec.to_payload(),
                workers=list(workers),
            )
            self.journal.append("epoch", epoch=self.epoch)
        else:
            # A successor incarnation: fence the predecessor out by
            # journaling a strictly higher epoch before acting on
            # anything it replayed.
            self.epoch = _replay.epoch + 1
            self.journal.append("epoch", epoch=self.epoch)
            self._restore(_replay)
        self.core.epoch = self.epoch
        self._lease_stop = threading.Event()
        self._lease_thread = None
        if spec.worker_lease_ttl > 0 and clock is None:
            self._lease_thread = threading.Thread(
                target=self._lease_loop, name="am-lease-supervisor",
                daemon=True,
            )
            self._lease_thread.start()

    # -- serving ---------------------------------------------------------------

    def serve_tcp(self, host: str = "127.0.0.1", port: int = 0):
        """Start listening; returns the :class:`~repro.net.tcp.TcpServer`."""
        from .tcp import TcpServer

        self._server = TcpServer(
            self.core, host=host, port=port, tracer=self.tracer,
            metrics=self.metrics,
        ).start()
        return self._server

    def close(self) -> None:
        """Stop the TCP server (if any) and release waiting barriers."""
        self._lease_stop.set()
        if self._server is not None:
            self._server.close()
        with self._lock:
            barriers = list(self._barriers.values())
        for barrier in barriers:
            barrier.event.set()
        self.journal.close()

    def abandon(self) -> None:
        """Fence this incarnation out so a successor can take over.

        Unlike :meth:`close` this releases blocked workers with a
        *retryable* error — they back off, re-enroll with the successor,
        and retransmit — and leaves the journal open for hand-off (a
        file-backed journal's own handle is closed; the successor
        re-reads the file).
        """
        self._lease_stop.set()
        with self._lock:
            self._fenced = True
            barriers = list(self._barriers.values())
            for barrier in barriers:
                if barrier.result is None:
                    barrier.result = self._superseded_reply()
            if self.tracer is not None:
                self.tracer.instant(
                    "am.abandoned", track="am", cat="am", epoch=self.epoch,
                )
        for barrier in barriers:
            barrier.event.set()
        if self._server is not None:
            self._server.close()
        if self.journal.path is not None:
            self.journal.close()

    def _superseded_reply(self) -> dict:
        return {
            "__error__": f"AM epoch {self.epoch} superseded",
            "__retry__": "am_superseded",
        }

    # -- the message handler (single entry point, both transports) ------------

    def handle(self, message: Message) -> dict:
        """Dispatch one deduplicated message to its protocol handler."""
        if self._fenced:
            # A fenced incarnation must never act: the worker backs off
            # and re-resolves the live AM (its endpoint list / the
            # redirected in-memory transport) before retrying.
            return self._superseded_reply()
        payload = message.payload
        worker = message.sender
        if message.msg_type is MessageType.ENROLL:
            return self._handle_enroll(worker, payload)
        if message.msg_type is MessageType.JOIN:
            return self._handle_join(worker, payload)
        if message.msg_type is MessageType.COORDINATE:
            return self._handle_coordinate(
                worker, int(payload["iteration"]),
                ring_epoch=payload.get("ring_epoch"),
            )
        if message.msg_type is MessageType.SYNC:
            return self._handle_sync(worker, payload)
        if message.msg_type is MessageType.STATE_UPLOAD:
            return self._handle_state_upload(worker, payload)
        if message.msg_type is MessageType.STATE_CHUNK:
            return self._handle_state_chunk(worker, payload)
        if message.msg_type is MessageType.STATE_DONE:
            return self._handle_state_done(worker, payload)
        if message.msg_type is MessageType.STATE_FETCH:
            return self._handle_state_fetch(worker, payload)
        if message.msg_type is MessageType.ADJUSTMENT_REQUEST:
            return self._handle_adjustment_request(payload)
        if message.msg_type is MessageType.RESIZE:
            return self._handle_adjustment_request(payload, origin="scheduler")
        if message.msg_type is MessageType.STATUS:
            return self.status()
        if message.msg_type is MessageType.TELEMETRY:
            return self._handle_telemetry(worker, payload)
        raise ValueError(f"unhandled message type {message.msg_type!r}")

    def _handle_telemetry(self, sender: str, payload: dict) -> dict:
        """One TELEMETRY round: worker push or driver query.

        Workers push metric/trace deltas (folded into the fleet
        collector); a driver sends ``{"query": ...}`` to read the
        collected view back — ``"fleet"`` for the raw per-worker dump,
        ``"report"`` for the derived per-job + fleet goodput reports,
        ``"rollup"`` for the fleet metric rollup.
        """
        query = payload.get("query")
        if query is None:
            reply = self.fleet.ingest(payload, sender=sender)
            if self.metrics is not None:
                self.metrics.counter("telemetry.deltas").inc()
                self.metrics.counter("telemetry.events_received").inc(
                    len(payload.get("events") or ())
                )
            return reply
        am_events = (
            self.tracer.to_events() if self.tracer is not None else None
        )
        if query == "report":
            reports = self.fleet.report(
                am_events=am_events, am_metrics=self.metrics.snapshot()
            )
            return {
                "reports": {
                    name: {
                        "job": report.job,
                        "goodput": report.goodput,
                        "busy_seconds": report.busy_seconds,
                        "wall_seconds": report.wall_seconds,
                        "iterations": report.iterations,
                        "workers": report.workers,
                        "recoveries": report.recoveries,
                        "mean_mttr": report.mean_mttr,
                        "max_mttr": report.max_mttr,
                        "mean_detection": report.mean_detection,
                        "counts": report.counts,
                        "overhead": report.overhead,
                        "upload_series": report.upload_series,
                    }
                    for name, report in reports.items()
                },
                "workers": self.fleet.workers(),
            }
        if query == "rollup":
            return {
                "rollup": self.fleet.rollup([self.metrics.snapshot()]),
                "workers": self.fleet.workers(),
            }
        # default: the raw fleet view (collector dump + AM events).
        return {
            "fleet": self.fleet.to_payload(),
            "am_events": am_events,
            "epoch": self.epoch,
        }

    # -- step 2: joining -------------------------------------------------------

    def _handle_join(self, worker: str, payload: "dict | None" = None) -> dict:
        with self._lock:
            # Record the worker's peer-mesh address first: by the time a
            # commit plan is minted every reported joiner has polled at
            # least once, so the frozen ring payload is never partial.
            peer = (payload or {}).get("peer")
            if peer and self._peer_addrs.get(worker) != str(peer):
                self.journal.append("peer", worker=worker, addr=str(peer))
                self._peer_addrs[worker] = str(peer)
            # Consume the offer: a retransmission of this very poll is
            # answered from the ServerCore reply cache, and the offer
            # must not survive to be replayed — stale generation, stale
            # snapshot — if the same worker id is scaled out and back
            # in by a later adjustment.
            offer = self._join_offers.pop(worker, None)
            if offer is not None:
                # Only the offer minted for the live (or in-flight)
                # generation may be served; anything older belongs to a
                # previous incarnation of this worker id and would park
                # the joiner at a dead iteration where its SYNC
                # barriers never complete.
                current = (
                    self._plan.generation if self._plan is not None
                    else self._generation
                )
                if offer["generation"] == current:
                    return offer
            # Initial workers start from scratch at iteration 0.
            if self._generation == 0 and worker in self._groups[0]:
                return {
                    "status": "start",
                    "spec": self.spec.to_payload(),
                    "group": list(self._groups[0]),
                    "generation": 0,
                    "iteration": 0,
                    "epoch": self.epoch,
                    "job": self.am.job_id,
                }
            # A scale-out joiner: the poll doubles as the worker-report
            # (idempotent — the AM ignores reports it is not waiting
            # for, so polling before the request lands is harmless).
            self.am.worker_report(worker)
        return {"status": "pending"}

    # -- step 3: boundary coordination ----------------------------------------

    def _handle_coordinate(
        self, worker: str, iteration: int,
        ring_epoch: "int | None" = None,
    ) -> dict:
        with self._lock:
            if worker in self._condemned:
                # A condemned worker that turns out to be merely slow is
                # fenced out: it must re-enroll, learn it was evicted,
                # and depart — not keep feeding a generation that is
                # being rebuilt without it.
                return self._condemned_reply(worker)
            # With the ring plane active the AM no longer sees
            # per-iteration syncs; boundary coordinates are its view of
            # training progress.
            self._latest_sync_iteration = max(
                self._latest_sync_iteration, iteration
            )
            if iteration > self._journaled_progress:
                # One watermark per boundary (the first worker to reach
                # it): enough that a successor never schedules a commit
                # in the workers' past.
                self.journal.append("progress", iteration=iteration)
                self._journaled_progress = iteration
            directive = self.am.coordinate(worker, iteration)
            if directive.kind is DirectiveKind.CONTINUE:
                last = self._last_commit
                if (
                    last is not None
                    and iteration == int(last["commit_iteration"])
                    and worker in tuple(last["old_group"])
                ):
                    # The predecessor committed this adjustment but its
                    # adjust reply to this worker died with it; the
                    # retransmitted COORDINATE must be answered with the
                    # directive again or the worker would miss the
                    # membership change entirely.
                    return self._replayed_adjust_reply(last, worker)
                reply = {"kind": "continue"}
                # Piggyback the current generation's ring on boundary
                # replies until the worker reports it installed; every
                # member coordinating at this boundary receives the
                # identical payload (same order, same activation), so
                # the plane switches atomically at the boundary.
                if ring_epoch != self._generation:
                    ring = self._ring_payload(
                        self._generation,
                        self._groups[self._generation],
                        active_from=iteration,
                    )
                    if ring is not None:
                        reply["ring"] = ring
                return reply
            if self._plan is None:
                self._mint_plan(directive)
            plan = self._plan
            if worker not in plan.acked:
                self.journal.append(
                    "ack", worker=worker, generation=plan.generation,
                )
                plan.acked.add(worker)
            reply = {
                "kind": "adjust",
                "group": list(plan.new_group),
                "generation": plan.generation,
                "commit_iteration": plan.commit_iteration,
                "upload": worker == plan.uploader,
            }
            if plan.ring is not None:
                reply["ring"] = plan.ring
            if plan.shard_spec is not None:
                # Owners freeze the blob locally; the uploader reuses
                # the deterministic transfer id so the AM's copy and
                # the owners' copies are the same addressable transfer.
                reply["shards"] = dict(plan.shard_spec)
            self._maybe_finish()
            return reply

    def _condemned_reply(self, worker: str) -> dict:
        return {
            "__error__": f"worker {worker!r} was condemned by lease expiry",
            "__retry__": "am_superseded",
        }

    def _replayed_adjust_reply(self, last: dict, worker: str) -> dict:
        """Re-serve a committed adjustment's directive (lock held)."""
        generation = int(last["generation"])
        new_group = tuple(last["new_group"])
        reply = {
            "kind": "adjust",
            "group": list(new_group),
            "generation": generation,
            "commit_iteration": int(last["commit_iteration"]),
            # The snapshot was already replicated before the commit;
            # nobody re-uploads.
            "upload": False,
        }
        ring = self._ring_payload(
            generation, new_group,
            active_from=int(last["commit_iteration"]) + 1,
        )
        if ring is not None:
            reply["ring"] = ring
        return reply

    def _ring_payload(
        self, generation: int, group: typing.Sequence[str],
        active_from: int,
    ) -> "dict | None":
        """The ring installed for ``generation`` — or None if any
        member lacks a peer address (the job then stays on the star
        path; mixed planes within a generation are never distributed).
        """
        if not self.spec.ring_enabled or len(group) < 2:
            return None
        peers = {}
        for member in group:
            addr = self._peer_addrs.get(member)
            if addr is None:
                return None
            peers[member] = addr
        ring = {
            "epoch": generation,
            "order": list(group),
            "peers": peers,
            "active_from": int(active_from),
        }
        # "none" ships no codec key at all: the default ring payload —
        # and everything downstream of it — stays byte-identical to the
        # uncompressed protocol.
        if self.spec.ring_codec != "none":
            ring["codec"] = self.spec.ring_codec
        return ring

    def _mint_plan(self, directive) -> None:
        plan = _CommitPlan(
            generation=self._generation + 1,
            commit_iteration=directive.commit_iteration,
            old_group=self.am.group,
            new_group=directive.new_group,
            requested_at=self._pending_request_at or time.perf_counter(),
        )
        self.journal.append(
            "plan",
            generation=plan.generation,
            commit_iteration=plan.commit_iteration,
            old_group=list(plan.old_group),
            new_group=list(plan.new_group),
            uploader=plan.uploader,
        )
        self._plan = plan
        # A joiner that never polled its offer from an earlier
        # adjustment (it crashed, or was scaled out before joining)
        # must wait for *this* plan's snapshot, not receive the old one.
        for joiner in plan.add_workers:
            self._join_offers.pop(joiner, None)
        # Fully-fetched downloads from earlier adjustments are dead
        # weight now; in-flight ones stay so straggling joiners finish.
        for transfer_id in [
            t for t, d in self._downloads.items() if d.complete
        ]:
            del self._downloads[transfer_id]
        # The new generation's rendezvous membership must exist before
        # the first survivor syncs at the commit boundary — which can
        # happen well before the adjustment finishes.
        self._groups[plan.generation] = plan.new_group
        # Freeze the new generation's ring now: every joiner reported
        # (scale-out plans are only minted after all reports, and a
        # report is a JOIN poll that recorded the peer address), so the
        # mesh is complete — and freezing means survivors' directives
        # and joiners' offers all ship the identical ring.  The commit
        # iteration itself still runs on the star path (activation is
        # one past it), giving joiners the slack to fetch state.
        plan.ring = self._ring_payload(
            plan.generation, plan.new_group,
            active_from=plan.commit_iteration + 1,
        )
        # Sharded migration: elect shard owners among the survivors that
        # have a peer address (they must be reachable over the mesh) and
        # fix the deterministic transfer id now, so the uploader, every
        # owner, and every joiner agree on it without another exchange.
        if self.spec.replication_shards > 0 and plan.add_workers:
            survivors = [
                w for w in plan.old_group
                if w not in self._condemned and w in self._peer_addrs
            ]
            owners = survivors[:max(1, int(self.spec.replication_shards))]
            if owners:
                plan.shard_spec = {
                    "transfer_id": f"shard/g{plan.generation}",
                    "owners": list(owners),
                    "count": len(owners),
                }
        if not plan.add_workers:
            # Nothing to replicate: joiner offers never materialize.
            plan.snapshot = {}

    def _maybe_finish(self) -> None:
        plan = self._plan
        if plan is None:
            return
        # A condemned member will never ack its directive — the commit
        # must not wait for the very worker the adjustment is evicting.
        needed = set(plan.old_group) - set(self._condemned)
        if not plan.acked >= needed:
            return
        if plan.add_workers and plan.snapshot is None:
            return
        removed = tuple(
            w for w in plan.old_group if w not in set(plan.new_group)
        )
        latency = time.perf_counter() - plan.requested_at
        now = self._clock()
        evicted = {}
        for worker in removed:
            started = self._recovering.pop(worker, None)
            if started is not None:
                evicted[worker] = {
                    "iteration": plan.commit_iteration,
                    "digest": None,
                    "evicted": True,
                }
                self.telemetry.record_recovery([worker], max(0.0, now - started))
        # Journal the commit *before* the inner AM transitions: once any
        # worker observes the new generation the successor must agree it
        # exists.
        self.journal.append(
            "commit",
            generation=plan.generation,
            commit_iteration=plan.commit_iteration,
            old_group=list(plan.old_group),
            new_group=list(plan.new_group),
            uploader=plan.uploader,
            latency=latency,
            departed=evicted,
        )
        self._last_commit = {
            "generation": plan.generation,
            "commit_iteration": plan.commit_iteration,
            "old_group": tuple(plan.old_group),
            "new_group": tuple(plan.new_group),
        }
        for worker, info in evicted.items():
            self._departed[worker] = dict(info)
        self.am.finish_adjustment()
        self._generation = plan.generation
        self._plan = None
        self._pending_request_at = None
        self.commit_latencies.append(latency)
        self._drop_superseded_barriers()
        # Membership of retired generations is dead weight: any sync
        # for them is rejected by the generation guard anyway.
        self._groups = {
            g: grp for g, grp in self._groups.items()
            if g >= self._generation
        }
        # More condemned workers may have queued up while this plan was
        # in flight; evict them in the next adjustment immediately.
        self._mint_evictions()
        self._check_complete()

    def _drop_superseded_barriers(self) -> None:
        """Release sync barriers stranded by the commit.

        A barrier for a superseded generation can never complete (its
        membership no longer syncs); without this it would pin its
        gradient arrays and park its waiters for the full
        ``allreduce_timeout``.  Waking them with a generation-changed
        error turns a silent stall into an immediate, explicit signal.
        """
        for key in [k for k in self._barriers if k[0] < self._generation]:
            barrier = self._barriers.pop(key)
            if barrier.result is None:
                barrier.result = {
                    "__error__": (
                        f"sync generation {key[0]} superseded by "
                        f"generation {self._generation}"
                    ),
                    "__retry__": "generation_superseded",
                }
            barrier.event.set()

    def _advance_sync_floor(self, generation: int, iteration: int) -> None:
        """Raise a generation's barrier floor and release what it strands.

        Lock held.  In fault-free operation lockstep guarantees no
        result-less barrier exists below a fresh sync's iteration (the
        group can only advance once every member collected the previous
        mean), so this only ever fires on the retransmission patterns a
        failover produces.
        """
        floor = self._sync_floors.get(generation, -1)
        if iteration <= floor:
            return
        self._sync_floors[generation] = iteration
        for key in [
            k for k in self._barriers
            if k[0] == generation and k[1] < iteration
        ]:
            barrier = self._barriers[key]
            if barrier.result is None:
                self._barriers.pop(key)
                barrier.result = {
                    "__error__": (
                        f"sync {key} is below the barrier floor {iteration}"
                    ),
                    "__retry__": "stale_barrier",
                }
                barrier.event.set()

    # -- step 4: state replication ---------------------------------------------

    def _handle_state_upload(self, worker: str, payload: dict) -> dict:
        if payload.get("final"):
            with self._lock:
                record = {
                    "iteration": int(payload.get("iteration", 0)),
                    "digest": payload.get("digest"),
                }
                self.journal.append(
                    "final", worker=worker, iteration=record["iteration"],
                    digest=record["digest"],
                    removed=bool(payload.get("removed")),
                )
                if payload.get("removed"):
                    self._departed[worker] = record
                else:
                    self._final[worker] = record
                # A finishing worker proves the whole group completed
                # every earlier barrier (lockstep); raise the floor so
                # post-failover retransmissions of those syncs are
                # answered with a repairable error, not a fresh barrier
                # nobody else will ever join.
                self._advance_sync_floor(
                    self._generation, record["iteration"]
                )
                self._check_complete()
            return {"ok": True}
        with self._lock:
            plan = self._plan
            if plan is None or worker != plan.uploader:
                return {"ok": False, "reason": "no snapshot expected"}
            # Copy the parameter arrays: over the in-memory transport the
            # payload aliases the uploader's *live* tensors (TCP would
            # have serialized them), and the uploader keeps training.
            plan.snapshot = {
                "params": {
                    name: np.array(array)
                    for name, array in payload["params"].items()
                },
                "optimizer": payload["optimizer"],
                "loader": payload["loader"],
            }
            self.journal.append(
                "snapshot", generation=plan.generation,
                state=plan.snapshot,
            )
            for joiner in plan.add_workers:
                self._join_offers[joiner] = {
                    "status": "join",
                    "spec": self.spec.to_payload(),
                    "group": list(plan.new_group),
                    "generation": plan.generation,
                    "iteration": plan.commit_iteration,
                    "state": plan.snapshot,
                    "epoch": self.epoch,
                    "job": self.am.job_id,
                    **({"ring": plan.ring} if plan.ring else {}),
                }
            self._maybe_finish()
        return {"ok": True}

    # -- step 4, chunked: the replication data plane ---------------------------

    def _handle_state_chunk(self, worker: str, payload: dict) -> dict:
        """One verified chunk of the uploader's snapshot blob."""
        with self._lock:
            plan = self._plan
            if plan is None or worker != plan.uploader:
                return {"ok": False, "reason": "no snapshot expected"}
            assembler = self._chunks.assembler(worker)
            seq = payload.get("seq")
            if (
                (assembler is None
                 or assembler.transfer_id != payload.get("transfer_id"))
                and isinstance(seq, int) and seq > 0
            ):
                # A mid-stream chunk for a transfer this AM has no
                # assembler for: the predecessor held chunks 0..seq-1
                # and died with them.  Telling the uploader to restart
                # (instead of letting the ChunkStore auto-create an
                # assembler that can never complete) keeps the transfer
                # finite.
                return {
                    "ok": False, "restart": True,
                    "reason": (
                        f"no assembler holds transfer "
                        f"{payload.get('transfer_id')!r} at seq {seq}"
                    ),
                }
            return self._chunks.handle_chunk(worker, payload)

    def _handle_state_done(self, worker: str, payload: dict) -> dict:
        """Finalize a chunked upload: verify, plan fan-out, mint offers.

        The AM stores the assembled blob verbatim (digest-verified,
        never decoded) and serves it back to joiners chunk by chunk in
        the replication planner's round order.
        """
        with self._lock:
            plan = self._plan
            if plan is None or worker != plan.uploader:
                return {"ok": False, "reason": "no snapshot expected"}
            transfer_id = str(payload.get("transfer_id"))
            if plan.transfer_id == transfer_id and plan.snapshot is not None:
                # Duplicate DONE for a transfer this AM (or its
                # predecessor, pre-journal) already finalized.
                download = self._downloads.get(transfer_id)
                return {
                    "ok": True,
                    "chunks": download.total_chunks if download else 0,
                    "payload_bytes": download.total_bytes if download else 0,
                    "duplicates": 0,
                }
            reply, assembler = self._chunks.handle_done(worker, payload)
            if assembler is None:
                if reply.get("reason") == "unknown transfer":
                    # Post-failover DONE for chunks the predecessor held:
                    # the uploader must restart the transfer from zero.
                    reply = dict(reply, restart=True)
                return reply
            shard_spec = plan.shard_spec
            owners: "list[str]" = []
            if shard_spec is not None:
                owners = [
                    o for o in shard_spec["owners"]
                    if o not in self._condemned and o in self._peer_addrs
                ]
            if owners:
                # Sharded fan-in: per-joiner groups pull one shard slice
                # from every owner concurrently; the planner schedules
                # the groups so same-round joiners never share an owner.
                rounds = _fanout_rounds(
                    owners, plan.add_workers, assembler.total_bytes,
                    fan_in=len(owners),
                )
            else:
                rounds = _fanout_rounds(
                    plan.old_group, plan.add_workers, assembler.total_bytes
                )
            download = _Download(assembler, rounds, plan.generation)
            if owners:
                shards = shard_ranges(
                    assembler.total_chunks, assembler.chunk_bytes,
                    assembler.total_bytes, len(owners),
                )
                for shard in shards:
                    shard["digest"] = _digest(
                        download.blob[shard["start_byte"]:shard["end_byte"]]
                    )
                    owner = owners[shard["index"] % len(owners)]
                    shard["owner"] = owner
                    shard["addr"] = self._peer_addrs.get(owner)
                download.shards = shards
                self.metrics.counter("net.shards.planned").inc(len(shards))
            self._downloads[transfer_id] = download
            plan.transfer_id = transfer_id
            self.journal.append(
                "snapshot", generation=plan.generation,
                transfer_id=transfer_id,
                blob=bytes(assembler.buffer),
                total_bytes=assembler.total_bytes,
                total_chunks=assembler.total_chunks,
                chunk_bytes=assembler.chunk_bytes,
                codec=assembler.codec,
                digest=download.digest,
            )
            # Sentinel: _maybe_finish only needs to know replication
            # data exists; the offers below carry the real descriptor.
            plan.snapshot = {"transfer": transfer_id}
            for joiner in plan.add_workers:
                self._join_offers[joiner] = {
                    "status": "join",
                    "spec": self.spec.to_payload(),
                    "group": list(plan.new_group),
                    "generation": plan.generation,
                    "iteration": plan.commit_iteration,
                    "state_transfer": download.describe(transfer_id, joiner),
                    "epoch": self.epoch,
                    "job": self.am.job_id,
                    **({"ring": plan.ring} if plan.ring else {}),
                }
            if self.tracer is not None:
                self.tracer.instant(
                    "replicate.fanout", track="am", cat="replicate",
                    transfer_id=transfer_id, rounds=rounds,
                    payload_bytes=assembler.total_bytes,
                    chunks=assembler.total_chunks,
                    **(
                        {"shards": len(download.shards),
                         "owners": list(owners)}
                        if download.shards is not None else {}
                    ),
                )
            self._maybe_finish()
            return reply

    def _handle_state_fetch(self, worker: str, payload: dict) -> dict:
        """Serve one chunk of a stored snapshot to a joiner."""
        transfer_id = payload.get("transfer_id")
        with self._lock:
            download = self._downloads.get(transfer_id)
            if download is None:
                return {"ok": False, "reason": "unknown transfer"}
            if worker not in download.rounds:
                return {"ok": False, "reason": "not a planned joiner"}
            if payload.get("complete"):
                # A sharded joiner's chunks crossed the peer mesh, not
                # this link; its completion report is what advances the
                # round gate for later fan-in rounds.
                download.progress[worker] = set(range(download.total_chunks))
                self.metrics.counter("net.shards.joins_completed").inc()
                return {"ok": True}
            if not download.round_open(worker):
                # Earlier planner rounds are still copying; the joiner
                # polls until its round opens.
                return {"status": "pending"}
            if payload.get("probe"):
                # Sharded round gate: the joiner only asks whether its
                # fan-in round is open before turning to the owners.
                return {"ok": True, "open": True}
            seq = payload.get("seq")
            if not isinstance(seq, int) or not 0 <= seq < download.total_chunks:
                return {"ok": False, "reason": f"bad seq {seq!r}"}
            download.progress[worker].add(seq)
            chunk = download.chunk(seq)
            self.metrics.counter("net.chunks.served").inc()
            return {
                "ok": True,
                "seq": seq,
                "data": chunk,
                "digest": download.chunk_digests[seq],
            }

    # -- the gradient rendezvous -----------------------------------------------

    def _handle_sync(self, worker: str, payload: dict) -> dict:
        generation = int(payload["generation"])
        iteration = int(payload["iteration"])
        key = (generation, iteration)
        with self._lock:
            if self._fenced:
                # The dispatch-time fence check races abandon(): a sync
                # that slipped past it must not seed a fresh barrier
                # after the fence swept the old ones — nobody would ever
                # resolve it and the worker would hang for the full
                # allreduce timeout instead of re-enrolling.
                return self._superseded_reply()
            if generation < self._generation:
                # Lockstep means live members never sync a retired
                # generation; anything arriving here is a straggler of
                # a superseded incarnation and must not seed a barrier
                # that can never complete.
                raise KeyError(
                    f"sync generation {generation} superseded by "
                    f"generation {self._generation}"
                )
            group = self._groups.get(generation)
            if group is None or worker not in group:
                raise KeyError(
                    f"{worker!r} is not in generation {generation}"
                )
            if worker in self._condemned:
                return self._condemned_reply(worker)
            floor = self._sync_floors.get(generation, -1)
            if iteration < floor:
                # The rest of the group already synced past this
                # iteration — its barrier completed and was dropped (or
                # died with a predecessor AM).  Seeding a new one would
                # strand this worker for the full allreduce timeout; a
                # retryable error lets it repair the missed mean from a
                # peer's cache instead.
                return {
                    "__error__": (
                        f"sync ({generation}, {iteration}) is below the "
                        f"barrier floor {floor}"
                    ),
                    "__retry__": "stale_barrier",
                }
            if iteration > floor:
                self._advance_sync_floor(generation, iteration)
            self.metrics.counter("net.sync.grad_bytes").inc(
                payload_nbytes(payload.get("grads"))
            )
            if payload.get("ring_fallback"):
                self.metrics.counter("net.sync.ring_fallbacks").inc()
            barrier = self._barriers.get(key)
            if barrier is None:
                barrier = self._barriers[key] = _SyncBarrier(
                    w for w in group if w not in self._condemned
                )
            barrier.contributions[worker] = payload.get("grads")
            self._latest_sync_iteration = max(
                self._latest_sync_iteration, iteration
            )
            if set(barrier.contributions) >= barrier.expected:
                barrier.result = {
                    "grads": self._average(group, barrier.contributions),
                    "members": len(barrier.expected),
                }
                barrier.event.set()
        if not barrier.event.wait(self.spec.allreduce_timeout):
            missing = sorted(barrier.expected - set(barrier.contributions))
            raise TimeoutError(
                f"sync ({generation}, {iteration}) timed out waiting "
                f"for {missing}"
            )
        result = barrier.result or {}
        with self._lock:
            barrier.collected.add(worker)
            if barrier.collected >= barrier.expected:
                # Everyone has this iteration's mean; keeping the
                # barrier (and its gradient ndarrays) any longer would
                # grow memory linearly with iterations run.
                self._barriers.pop(key, None)
        self.metrics.counter("net.sync.grad_bytes").inc(
            payload_nbytes(result.get("grads"))
        )
        return result

    def _average(self, group: "tuple[str, ...]", contributions: dict):
        """Average one barrier's gradients, matching the ring's order.

        Ring-enabled jobs must get bit-identical means from both
        planes, and IEEE float addition is not associative — so when
        the ring is on, the AM replays the ring's exact reduction
        (ring-order chained adds over zero-filled absentees) instead
        of the naive sum.  Legacy star-only jobs keep the historical
        ``average_gradients`` arithmetic.
        """
        concrete = [
            grads for grads in contributions.values() if grads
        ]
        if not concrete:
            return None
        if not self.spec.ring_enabled:
            return average_gradients(concrete)
        template = concrete[0]
        ordered = [
            contributions.get(member) or
            {name: np.zeros_like(arr) for name, arr in template.items()}
            for member in group
        ]
        return ring_reference_average(ordered)

    # -- step 1: the scheduler/driver API ---------------------------------------

    def _handle_adjustment_request(
        self, payload: dict, origin: str = "driver"
    ) -> dict:
        """Accept one externally driven adjustment (step 1).

        ``ADJUSTMENT_REQUEST`` is the classic driver call; ``RESIZE`` is
        the cluster scheduler's directive and defaults its ``origin`` to
        ``"scheduler"``.  The journaled request records who asked
        (``origin``) and any pinned commit boundary (``at_iteration``),
        so a successor AM re-drives the same decision after failover.
        """
        origin = str(payload.get("origin", origin))
        pin = payload.get("at_iteration")
        request = AdjustmentRequest(
            kind=AdjustmentKind(payload["kind"]),
            add_workers=tuple(payload.get("add", ())),
            remove_workers=tuple(payload.get("remove", ())),
            at_iteration=None if pin is None else int(pin),
        )
        with self._lock:
            accepted = self.am.request_adjustment(request)
            if accepted:
                self.journal.append(
                    "request", kind=request.kind.value,
                    add=list(request.add_workers),
                    remove=list(request.remove_workers),
                    origin=origin, at_iteration=request.at_iteration,
                )
                self._pending_request_at = time.perf_counter()
                if self.tracer is not None:
                    self.tracer.instant(
                        "am.resize_accepted", track="am", cat="am",
                        kind=request.kind.value, origin=origin,
                        at_iteration=request.at_iteration,
                    )
                self.metrics.counter(f"am.resizes.{origin}").inc()
        return {"accepted": accepted, "epoch": self.epoch}

    # -- failover: re-enrollment ------------------------------------------------

    def _handle_enroll(self, worker: str, payload: dict) -> dict:
        """A surviving worker re-introduces itself to a successor AM.

        The worker reports where it stands (generation, iteration, ring
        epoch, peer address); the AM answers with its fencing epoch and
        a verdict: ``ok`` (resume), ``evicted`` (you were condemned or
        already scaled out — finish and depart), or ``unknown``.
        """
        payload = payload or {}
        with self._lock:
            peer = payload.get("peer")
            if peer and self._peer_addrs.get(worker) != str(peer):
                self.journal.append("peer", worker=worker, addr=str(peer))
                self._peer_addrs[worker] = str(peer)
            if worker in self._condemned or worker in self._departed:
                status = "evicted"
            elif worker in self._groups.get(self._generation, ()) or (
                self._plan is not None and worker in self._plan.new_group
            ):
                status = "ok"
            else:
                status = "unknown"
            self.metrics.counter("am.enrollments").inc()
            if self.tracer is not None:
                self.tracer.instant(
                    "worker.enroll", track="am", cat="failover",
                    worker=worker, status=status, epoch=self.epoch,
                    generation=self._generation,
                    worker_generation=payload.get("generation"),
                    worker_iteration=payload.get("iteration"),
                )
            return {
                "epoch": self.epoch,
                "generation": self._generation,
                "status": status,
                "job": self.am.job_id,
            }

    # -- lease-based worker failure detection -----------------------------------

    def _on_activity(self, sender: str) -> None:
        """Every dispatched message (and TCP heartbeat) renews a lease.

        Called *before* dedup on purpose: a worker blocked at a sync
        barrier keeps retransmitting the same request, and those
        duplicates are exactly the liveness signal that must keep its
        lease fresh.
        """
        ttl = self.spec.worker_lease_ttl
        if ttl <= 0 or self._fenced:
            return
        with self._lock:
            if sender in self._condemned or sender in self._departed:
                return
            live = set(self._groups.get(self._generation, ()))
            if self._plan is not None:
                live.update(self._plan.new_group)
            elif self.am.pending is not None:
                live.update(self.am.pending.add_workers)
            if sender not in live:
                return  # the driver, or a worker not (yet) in the job
            key = f"lease/{sender}"
            if not self._leases.keep_alive(key, ttl):
                self._leases.lease(key, sender, ttl)

    def _lease_loop(self) -> None:
        while not self._lease_stop.wait(self.spec.lease_check_interval):
            try:
                self.check_leases()
            except Exception:
                self.metrics.counter("am.lease_check_errors").inc()

    def check_leases(self, now: "float | None" = None) -> "list[str]":
        """Condemn workers whose lease expired; mint their eviction.

        Public so injectable-clock tests (and the chaos soak) can drive
        detection deterministically without the supervisor thread.
        Returns the workers condemned by this sweep.
        """
        condemned_now: "list[str]" = []
        with self._lock:
            if self._fenced or self.spec.worker_lease_ttl <= 0:
                return condemned_now
            if now is None:
                now = self._clock()
            parked = {
                worker
                for barrier in self._barriers.values()
                if barrier.result is None
                for worker in barrier.contributions
            }
            for key in self._leases.expired_keys("lease/"):
                worker = key.split("/", 1)[1]
                if worker in self._condemned or worker in self._departed:
                    continue
                if worker in parked:
                    # The worker's request is parked in an open barrier
                    # the AM itself is holding: it delivered a message
                    # we have not answered, so it is live by definition
                    # (and on the in-memory transport a parked sender
                    # produces no other traffic at all — its request
                    # thread is blocked inside our handler).
                    self._leases.lease(
                        f"lease/{worker}", worker,
                        self.spec.worker_lease_ttl,
                    )
                    continue
                deadline = self._leases.lease_deadline(key) or now
                self._condemn(worker, now=now, deadline=deadline)
                condemned_now.append(worker)
            if condemned_now:
                self._mint_evictions()
        return condemned_now

    def _condemn(self, worker: str, now: float, deadline: float) -> None:
        """Lock held: mark one worker dead and release what it blocks."""
        self.journal.append("condemn", worker=worker)
        self._condemned[worker] = now
        self._recovering[worker] = now
        # Fence the (possibly merely slow) holder out: its keep-alives
        # must fail from here on so it cannot resurrect the lease the
        # eviction is already acting on.
        self._leases.force_expire(f"lease/{worker}")
        self.telemetry.record_detection(
            worker, max(0.0, now - deadline), cause="lease_expired"
        )
        self.metrics.counter("worker.lease.expired").inc()
        if self.tracer is not None:
            self.tracer.instant(
                "worker.condemned", track="am", cat="failover",
                worker=worker, detection_latency=max(0.0, now - deadline),
            )
        plan = self._plan
        if (
            plan is not None and plan.uploader == worker
            and plan.snapshot is None
        ):
            # The elected uploader died before replicating: the
            # scale-out cannot ever gather its snapshot, so the plan is
            # aborted back to the last committed generation rather than
            # wedging every joiner.
            self.abort_plan()
        self._release_worker_barriers(worker)

    def _release_worker_barriers(self, worker: str) -> None:
        """Lock held: drop a dead worker from every waiting barrier.

        Survivors blocked on the dead member's contribution get their
        mean now — computed over the same ring-ordered, zero-filled
        reduction both planes use, so every survivor stays bit-identical
        with the others.
        """
        for key, barrier in list(self._barriers.items()):
            if barrier.result is not None or worker not in barrier.expected:
                continue
            barrier.expected = frozenset(barrier.expected - {worker})
            barrier.contributions.pop(worker, None)
            if not barrier.expected:
                self._barriers.pop(key)
                continue
            if set(barrier.contributions) >= barrier.expected:
                group = self._groups.get(key[0], ())
                barrier.result = {
                    "grads": self._average(tuple(group), barrier.contributions),
                    "members": len(barrier.expected),
                }
                barrier.event.set()

    def _mint_evictions(self) -> None:
        """Lock held: turn condemned workers into a scale-in request."""
        group = set(self._groups.get(self._generation, ()))
        pending = sorted(
            w for w in self._condemned
            if w in group and w not in self._departed
        )
        if not pending:
            return
        if self._plan is not None or self.am.pending is not None:
            return  # queued behind the in-flight adjustment
        if set(pending) >= group:
            return  # scale-in cannot remove every worker
        self.journal.append(
            "request", kind=AdjustmentKind.SCALE_IN.value,
            add=[], remove=pending, auto=True, origin="lease",
        )
        accepted = self.am.request_adjustment(AdjustmentRequest(
            kind=AdjustmentKind.SCALE_IN, remove_workers=tuple(pending),
        ))
        if accepted:
            self._pending_request_at = time.perf_counter()
            self.metrics.counter("am.evictions").inc(len(pending))
            if self.tracer is not None:
                self.tracer.instant(
                    "am.eviction_minted", track="am", cat="failover",
                    remove=pending,
                )

    def abort_plan(self) -> None:
        """Lock held: abandon the in-flight plan (uploader death only).

        Any survivor that already acked the directive has advanced into
        the aborted generation and will fail loudly at its next sync —
        an explicit error beats the silent wedge of a snapshot that can
        never arrive.
        """
        plan = self._plan
        if plan is None:
            return
        self.journal.append("abort")
        self._plan = None
        self._pending_request_at = None
        self._groups.pop(plan.generation, None)
        for joiner in plan.add_workers:
            self._join_offers.pop(joiner, None)
        self.am.pending = None
        self.am.reported = set()
        self.am.commit_iteration = -1
        self.am.state = MasterState.RUNNING
        self.metrics.counter("am.plans_aborted").inc()
        if self.tracer is not None:
            self.tracer.instant(
                "am.plan_aborted", track="am", cat="failover",
                generation=plan.generation,
            )

    # -- failover: journal replay -----------------------------------------------

    @classmethod
    def from_journal(
        cls,
        journal: Journal,
        tracer: "typing.Any | None" = None,
        metrics: "MetricRegistry | None" = None,
        clock: "typing.Callable[[], float] | None" = None,
    ) -> "NetworkedApplicationMaster":
        """Rebuild a crashed AM from its journal (the standby path).

        The successor replays every journaled transition, journals a
        strictly higher fencing epoch (locking the predecessor out of
        the wire handshake), and resumes: an in-flight commit whose
        acks and snapshot are all journaled is completed; one whose
        uploader is gone is aborted back to the last committed
        generation.
        """
        state = JournalState.replay(journal.records())
        if state.job_id is None or state.spec_payload is None:
            raise JournalError("journal holds no init record to recover from")
        spec = JobSpec.from_payload(state.spec_payload)
        master = cls(
            spec, state.initial_workers, job_id=state.job_id,
            tracer=tracer, metrics=metrics, journal=journal, clock=clock,
            _replay=state,
        )
        return master

    def _restore(self, state: JournalState) -> None:
        """Apply a replayed :class:`JournalState` (constructor path)."""
        now = self._clock()
        self._generation = state.generation
        self._groups = {
            g: tuple(grp) for g, grp in state.groups.items()
            if g >= state.generation
        }
        self._peer_addrs = dict(state.peers)
        self._final = {w: dict(i) for w, i in state.final.items()}
        self._departed = {w: dict(i) for w, i in state.departed.items()}
        self._latest_sync_iteration = state.progress
        self._journaled_progress = state.progress
        # Everything at or past the journaled watermark is live; any
        # fresh sync below it is a retransmission whose barrier died
        # with the predecessor and must take the repair path.
        self._sync_floors = {state.generation: state.progress}
        self._last_commit = (
            dict(state.last_commit) if state.last_commit is not None else None
        )
        self.commit_latencies = list(state.commit_latencies)
        for worker in state.condemned:
            if worker in self._departed:
                continue
            self._condemned[worker] = now
            self._recovering[worker] = now
        self.am.group = state.current_group
        self.am.latest_iteration = state.progress
        self.am.adjustments_committed = state.adjustments_committed
        pending = state.pending_request
        request = None
        if pending is not None:
            pin = pending.get("at_iteration")
            request = AdjustmentRequest(
                kind=AdjustmentKind(pending["kind"]),
                add_workers=tuple(pending.get("add", ())),
                remove_workers=tuple(pending.get("remove", ())),
                at_iteration=None if pin is None else int(pin),
            )
        if state.plan is not None:
            self._restore_plan(state, request)
        elif request is not None:
            # Accepted but not yet minted: no worker saw a directive
            # (plans are journaled before the first one is served), so
            # the successor is free to re-drive step 1 and schedule a
            # fresh boundary from its own watermark.
            if self.am.request_adjustment(request):
                self._pending_request_at = time.perf_counter()
        self._restore_downloads(state)
        self.metrics.counter("am.journal.replayed").inc(state.replayed)
        self.metrics.counter("am.failover").inc()
        if self.tracer is not None:
            self.tracer.instant(
                "am.failover", track="am", cat="failover",
                epoch=self.epoch, generation=self._generation,
                replayed=state.replayed,
            )
        self._mint_evictions()
        self._maybe_finish()

    def _restore_plan(
        self, state: JournalState, request: "AdjustmentRequest | None"
    ) -> None:
        """Reinstate the journaled in-flight commit plan (ctor path)."""
        data = state.plan
        plan = _CommitPlan(
            generation=int(data["generation"]),
            commit_iteration=int(data["commit_iteration"]),
            old_group=tuple(data["old_group"]),
            new_group=tuple(data["new_group"]),
            requested_at=time.perf_counter(),
        )
        plan.acked = set(state.acked)
        plan.ring = self._ring_payload(
            plan.generation, plan.new_group,
            active_from=plan.commit_iteration + 1,
        )
        self._groups[plan.generation] = plan.new_group
        snap = state.last_snapshot
        if snap is not None and int(snap["generation"]) == plan.generation:
            self._install_snapshot(plan, snap)
        if (
            plan.add_workers and plan.snapshot is None
            and plan.uploader in self._condemned
        ):
            # The only worker that could still produce the snapshot is
            # dead: install then immediately abort, so the abort is
            # journaled and survivors fail fast.
            self._plan = plan
            self._restore_inner_am(plan, request)
            self.abort_plan()
            return
        self._plan = plan
        self._restore_inner_am(plan, request)
        self._pending_request_at = time.perf_counter()

    def _restore_inner_am(
        self, plan: _CommitPlan, request: "AdjustmentRequest | None"
    ) -> None:
        if request is None:
            # Plan without a journaled request cannot happen (requests
            # are journaled before plans), but stay defensive.
            removed = set(plan.old_group) - set(plan.new_group)
            added = set(plan.new_group) - set(plan.old_group)
            request = AdjustmentRequest(
                kind=AdjustmentKind.SCALE_OUT if added
                else AdjustmentKind.SCALE_IN,
                add_workers=tuple(sorted(added)),
                remove_workers=tuple(sorted(removed)),
            )
        self.am.group = plan.old_group
        self.am.pending = request
        self.am.reported = set(request.add_workers)
        self.am.commit_iteration = plan.commit_iteration
        self.am.state = MasterState.COMMIT_SCHEDULED

    def _install_snapshot(self, plan: _CommitPlan, snap: dict) -> None:
        """Rebuild offers (and the chunk download) from a journaled
        snapshot record (ctor path, lock not yet contended)."""
        if "blob" in snap:
            transfer_id = str(snap["transfer_id"])
            assembler = ChunkAssembler(
                transfer_id=transfer_id,
                total_bytes=int(snap["total_bytes"]),
                total_chunks=int(snap["total_chunks"]),
                chunk_bytes=int(snap["chunk_bytes"]),
                codec=str(snap.get("codec", "json")),
            )
            blob = snap["blob"]
            assembler.buffer[:] = (
                blob if isinstance(blob, (bytes, bytearray)) else bytes(blob)
            )
            assembler.received = set(range(assembler.total_chunks))
            # Post-failover there is no way to know which planner round
            # each joiner had reached; serving everyone from round 0
            # trades the contention-free schedule for guaranteed
            # progress.
            rounds = {w: 0 for w in plan.add_workers}
            download = _Download(assembler, rounds, plan.generation)
            self._downloads[transfer_id] = download
            plan.transfer_id = transfer_id
            plan.snapshot = {"transfer": transfer_id}
            for joiner in plan.add_workers:
                self._join_offers[joiner] = {
                    "status": "join",
                    "spec": self.spec.to_payload(),
                    "group": list(plan.new_group),
                    "generation": plan.generation,
                    "iteration": plan.commit_iteration,
                    "state_transfer": download.describe(transfer_id, joiner),
                    "epoch": self.epoch,
                    "job": self.am.job_id,
                    **({"ring": plan.ring} if plan.ring else {}),
                }
        else:
            plan.snapshot = {
                "params": {
                    name: np.array(array)
                    for name, array in snap["state"]["params"].items()
                },
                "optimizer": snap["state"]["optimizer"],
                "loader": snap["state"]["loader"],
            }
            for joiner in plan.add_workers:
                self._join_offers[joiner] = {
                    "status": "join",
                    "spec": self.spec.to_payload(),
                    "group": list(plan.new_group),
                    "generation": plan.generation,
                    "iteration": plan.commit_iteration,
                    "state": plan.snapshot,
                    "epoch": self.epoch,
                    "job": self.am.job_id,
                    **({"ring": plan.ring} if plan.ring else {}),
                }

    def _restore_downloads(self, state: JournalState) -> None:
        """Re-serve the last *committed* generation's snapshot.

        A joiner whose offer reply was lost keeps polling JOIN after
        the commit; the successor must still be able to answer with the
        committed generation's state (``last_snapshot`` survives the
        commit in the journal for exactly this reason).
        """
        snap = state.last_snapshot
        last = state.last_commit
        if snap is None or last is None or self._plan is not None:
            return
        if int(snap["generation"]) != int(last["generation"]):
            return
        joiners = [
            w for w in last["new_group"]
            if w not in set(last["old_group"])
            and w not in self._final and w not in self._departed
        ]
        if not joiners:
            return
        plan = _CommitPlan(
            generation=int(last["generation"]),
            commit_iteration=int(last["commit_iteration"]),
            old_group=tuple(last["old_group"]),
            new_group=tuple(last["new_group"]),
            requested_at=time.perf_counter(),
        )
        plan.ring = self._ring_payload(
            plan.generation, plan.new_group,
            active_from=plan.commit_iteration + 1,
        )
        self._install_snapshot(plan, snap)
        # Only the offers/downloads were needed; the plan scaffold is
        # discarded (the adjustment already committed).

    # -- progress ---------------------------------------------------------------

    def _check_complete(self) -> None:
        group = self._groups[self._generation]
        if self._plan is None and all(w in self._final for w in group):
            self._complete.set()

    @property
    def complete(self) -> bool:
        """True once every current-group member uploaded a final digest."""
        return self._complete.is_set()

    def wait_complete(self, timeout: "float | None" = None) -> bool:
        """Block until the job completes (or the timeout lapses)."""
        return self._complete.wait(timeout)

    def final_digests(self) -> "dict[str, str]":
        """Final parameter digest per completing worker."""
        with self._lock:
            return {w: r["digest"] for w, r in self._final.items()}

    def status(self) -> dict:
        """Snapshot of job progress (the ``STATUS`` reply)."""
        with self._lock:
            return {
                "iteration": self._latest_sync_iteration,
                "generation": self._generation,
                "group": list(self._groups[self._generation]),
                "adjustments_committed": self.am.adjustments_committed,
                "adjustment_pending": self._plan is not None
                or self.am.pending is not None,
                "complete": self._complete.is_set(),
                "digests": {
                    w: r["digest"] for w, r in self._final.items()
                },
                "departed": sorted(self._departed),
                "commit_latencies": list(self.commit_latencies),
                "handled": self.core.handled,
                "duplicates": self.core.duplicates,
                "uploads_completed": self._chunks.completed,
                "downloads_active": len(self._downloads),
                "epoch": self.epoch,
                "condemned": sorted(self._condemned),
                "journal_records": len(self.journal),
            }
