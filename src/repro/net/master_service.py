"""The networked application master: §V-B over a real control plane.

:class:`NetworkedApplicationMaster` wraps the transport-free
:class:`~repro.coordination.master.ApplicationMaster` in a message
handler so an elastic job can run as N separate processes (or threads)
talking to the AM through :mod:`repro.net` links — in-memory or TCP,
identically.

The AM is also the gradient rendezvous: workers post their per-shard
gradients with ``SYNC`` and block until every member of their generation
contributed, then all receive the same server-computed mean.  Because
every replica starts from the same seed-initialized parameters and
applies identical averaged updates, replicas stay bit-identical — which
the final sha256 parameter digests assert end-to-end.

Adjustments follow Fig. 2 over the wire:

1. the driver sends ``ADJUSTMENT_REQUEST``;
2. joining workers poll ``JOIN`` (each poll doubles as the
   worker-report, idempotently) until the commit plan and the uploaded
   state snapshot are both ready;
3. existing workers ``COORDINATE`` at boundaries; the first ``adjust``
   directive mints the commit plan and elects the state uploader;
4. the uploader pushes its snapshot with ``STATE_UPLOAD``
   (replication), joiners receive it inside their ``join`` reply;
5. once every old-group member saw the directive and the snapshot is
   in, the adjustment is finished and the new generation is live.
"""

from __future__ import annotations

import dataclasses
import threading
import time
import typing

import numpy as np

from ..coordination.master import (
    AdjustmentKind,
    AdjustmentRequest,
    ApplicationMaster,
    DirectiveKind,
)
from ..coordination.messages import Message, MessageType
from ..observability import MetricRegistry
from ..replication.planner import plan_replication
from ..topology.builder import ServerSpec, build_node
from ..topology.tree import DeviceKind, TopologyNode
from ..training.nn import average_gradients
from .chunks import DEFAULT_CHUNK_BYTES, ChunkStore, _digest
from .collective import ring_reference_average
from .transport import ServerCore
from .wire import payload_nbytes


@dataclasses.dataclass(frozen=True)
class JobSpec:
    """Everything a worker needs to reconstruct the job locally.

    Shipped inside the ``join`` reply, so worker processes need no
    configuration beyond the AM's address and their own id.  The
    dataset and initial parameters are derived deterministically from
    the seed; only optimizer/loader/parameter state ever crosses the
    wire (and only at adjustments).
    """

    train_size: int = 512
    test_size: int = 128
    input_dim: int = 16
    hidden_dim: int = 16
    num_classes: int = 4
    seed: int = 7
    total_batch_size: int = 32
    base_lr: float = 0.05
    momentum: float = 0.9
    iterations: int = 24
    coordination_interval: int = 4
    #: server-side rendezvous wait — must cover the slowest member's
    #: arrival (including a joiner still fetching state at a commit).
    allreduce_timeout: float = 15.0
    #: simulated per-iteration compute time (seconds).  The numpy MLP
    #: steps in microseconds, so without pacing a whole job can finish
    #: before a scale-out's joiners even get their first poll in;
    #: examples and chaos tests use this to keep the job running while
    #: the adjustment plays out.
    iteration_sleep: float = 0.0
    #: client-side ack timeout per SYNC attempt.  Deliberately far below
    #: ``allreduce_timeout``: a dropped contribution must be resent while
    #: the other members are still waiting at the barrier, not after
    #: they have timed out.
    sync_ack_timeout: float = 2.0
    #: chunk size of the replication data plane; snapshots larger than
    #: this stream as multiple ``STATE_CHUNK`` messages.
    chunk_bytes: int = DEFAULT_CHUNK_BYTES
    #: how many chunk requests an uploader/fetcher keeps in flight.
    #: 1 = strictly serial (chaos tests use this to aim faults at exact
    #: chunk indices).
    replication_window: int = 4
    #: gradient plane: True routes per-iteration gradients over the
    #: decentralized ring (direct worker-peer links) once every member
    #: of a generation has a peer address; the star rendezvous stays as
    #: the pre-activation / degraded fallback path.  Workers without a
    #: peer host simply keep the whole job on the star path.
    ring_enabled: bool = True
    #: ring bucket size (bytes, element-aligned); one RING_SEGMENT per
    #: bucket per hop.
    ring_bucket_bytes: int = 64 * 1024
    #: in-flight segment window per ring hop (mirrors
    #: ``replication_window``).
    ring_window: int = 4
    #: how long a rank waits for one expected segment before declaring
    #: the ring degraded and falling back.
    ring_step_timeout: float = 2.0
    #: peer-link ack timeout (resend cadence between ring neighbours).
    ring_ack_timeout: float = 0.5

    @property
    def reply_wait(self) -> float:
        """Server-side wait for a duplicate of an in-flight request.

        Derived, not configured: a retransmission must be willing to
        wait out the longest legitimately-blocking handler — the sync
        rendezvous (``allreduce_timeout``) — plus slack, so the two
        timeouts cannot silently diverge.
        """
        return self.allreduce_timeout + 5.0

    def per_worker_batch(self, group_size: int) -> int:
        """Strong scaling: the total batch is split across the group."""
        return max(1, self.total_batch_size // max(1, group_size))

    def to_payload(self) -> dict:
        """Codec-safe dict form (for the ``join`` reply)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_payload(cls, payload: dict) -> "JobSpec":
        """Inverse of :meth:`to_payload`."""
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in fields})


class _SyncBarrier:
    """One (generation, iteration) gradient rendezvous."""

    __slots__ = ("expected", "contributions", "collected", "event", "result")

    def __init__(self, expected: typing.Iterable[str]):
        self.expected = frozenset(expected)
        self.contributions: "dict[str, typing.Any]" = {}
        #: members whose handler call has returned the result — once all
        #: have, the barrier can be dropped (dedup means no member's
        #: handler runs twice, so nobody will need it again).
        self.collected: set = set()
        self.event = threading.Event()
        self.result: "dict | None" = None


class _CommitPlan:
    """Bookkeeping for one in-flight adjustment commit (steps 3-5)."""

    __slots__ = (
        "generation", "commit_iteration", "old_group", "new_group",
        "add_workers", "uploader", "snapshot", "acked", "requested_at",
        "transfer_id", "ring",
    )

    def __init__(self, generation, commit_iteration, old_group, new_group,
                 requested_at):
        self.generation = generation
        self.commit_iteration = commit_iteration
        self.old_group = tuple(old_group)
        self.new_group = tuple(new_group)
        self.add_workers = tuple(
            w for w in new_group if w not in set(old_group)
        )
        # The first surviving old-group member replicates state to the
        # joiners; without joiners there is nothing to replicate.
        self.uploader = self.old_group[0] if self.add_workers else None
        self.snapshot: "dict | None" = None
        self.acked: set = set()
        self.requested_at = requested_at
        #: set once a chunked upload for this plan completed (the
        #: monolithic legacy path leaves it None).
        self.transfer_id: "str | None" = None
        #: the new generation's ring (order + peer addresses), frozen at
        #: mint time so every directive and offer ships the same mesh.
        self.ring: "dict | None" = None


class _Download:
    """One completed snapshot served chunk-by-chunk to joiners.

    The application master never decodes the blob — it verified the
    whole-blob digest at ``STATE_DONE`` and now serves byte ranges of
    it.  ``rounds`` carries the replication planner's ordering: a
    joiner's fetches are gated until every earlier-round joiner has
    pulled its last chunk, mirroring the plan's contention-free rounds.
    """

    __slots__ = (
        "blob", "total_bytes", "total_chunks", "chunk_bytes", "codec",
        "digest", "chunk_digests", "rounds", "progress", "generation",
    )

    def __init__(self, assembler, rounds: "dict[str, int]", generation: int):
        self.blob = memoryview(assembler.buffer)
        self.total_bytes = assembler.total_bytes
        self.total_chunks = assembler.total_chunks
        self.chunk_bytes = assembler.chunk_bytes
        self.codec = assembler.codec
        self.digest = _digest(assembler.buffer)
        self.chunk_digests = [
            _digest(self.chunk(seq)) for seq in range(self.total_chunks)
        ]
        self.rounds = dict(rounds)
        self.progress: "dict[str, set]" = {w: set() for w in rounds}
        self.generation = generation

    def chunk(self, seq: int) -> memoryview:
        start = seq * self.chunk_bytes
        return self.blob[start:min(start + self.chunk_bytes, self.total_bytes)]

    def fetched(self, joiner: str) -> bool:
        return len(self.progress.get(joiner, ())) == self.total_chunks

    @property
    def complete(self) -> bool:
        return all(self.fetched(joiner) for joiner in self.rounds)

    def round_open(self, joiner: str) -> bool:
        mine = self.rounds[joiner]
        return all(
            self.fetched(other)
            for other, r in self.rounds.items()
            if r < mine
        )

    def describe(self, transfer_id: str, joiner: str) -> dict:
        """The ``state_transfer`` descriptor for one joiner's offer."""
        return {
            "transfer_id": transfer_id,
            "total_bytes": self.total_bytes,
            "total_chunks": self.total_chunks,
            "chunk_bytes": self.chunk_bytes,
            "codec": self.codec,
            "digest": self.digest,
            "round": self.rounds[joiner],
        }


def _fanout_rounds(
    sources: typing.Sequence[str], joiners: typing.Sequence[str],
    state_bytes: int,
) -> "dict[str, int]":
    """The replication planner's round index per joiner.

    Workers are modeled as single-GPU nodes of a flat cluster (every
    pair is an L4/NET hop whose path claims only the two endpoint
    NICs), so the planner's contention rules reduce to exactly the
    paper's: distinct node pairs copy concurrently, a shared source
    serializes, and chained fan-out lets round-``r`` joiners serve
    round ``r+1``.
    """
    cluster = TopologyNode(DeviceKind.CLUSTER, "netjob")
    spec = ServerSpec(sockets=1, switches_per_socket=1, gpus_per_switch=1)
    gpus = {}
    for worker in (*sources, *joiners):
        node = build_node(worker, spec=spec, parent=cluster)
        gpus[worker] = next(node.iter_gpus())
    plan = plan_replication(
        existing=[gpus[w] for w in sources],
        new=[gpus[w] for w in joiners],
        gpu_bytes=state_bytes,
        cpu_bytes=0,
        allow_chaining=True,
    )
    rounds: "dict[str, int]" = {}
    for index, round_ in enumerate(plan.rounds):
        for transfer in round_:
            rounds[transfer.target.name.rsplit("/", 1)[0]] = index
    return rounds


class NetworkedApplicationMaster:
    """Message-driven AM + parameter rendezvous for multi-process jobs."""

    def __init__(
        self,
        spec: JobSpec,
        workers: typing.Sequence[str],
        job_id: str = "netjob",
        tracer: "typing.Any | None" = None,
        metrics: "MetricRegistry | None" = None,
    ):
        self.spec = spec
        self.tracer = tracer
        self.metrics = metrics if metrics is not None else MetricRegistry()
        self.am = ApplicationMaster(
            job_id,
            workers,
            coordination_interval=spec.coordination_interval,
            tracer=tracer,
        )
        self._lock = threading.RLock()
        self._generation = 0
        self._groups: "dict[int, tuple]" = {0: tuple(workers)}
        self._plan: "_CommitPlan | None" = None
        self._pending_request_at: "float | None" = None
        self._barriers: "dict[tuple, _SyncBarrier]" = {}
        self._join_offers: "dict[str, dict]" = {}
        #: worker id -> advertised peer-mesh address (from JOIN polls).
        self._peer_addrs: "dict[str, str]" = {}
        self._final: "dict[str, dict]" = {}
        self._departed: "dict[str, dict]" = {}
        self._latest_sync_iteration = 0
        self.commit_latencies: "list[float]" = []
        self._complete = threading.Event()
        self._chunks = ChunkStore(metrics=self.metrics)
        self._downloads: "dict[str, _Download]" = {}
        self.core = ServerCore(
            handler=self.handle, node_id="am", tracer=tracer,
            reply_wait=spec.reply_wait,
            metrics=self.metrics,
        )
        self._server = None

    # -- serving ---------------------------------------------------------------

    def serve_tcp(self, host: str = "127.0.0.1", port: int = 0):
        """Start listening; returns the :class:`~repro.net.tcp.TcpServer`."""
        from .tcp import TcpServer

        self._server = TcpServer(
            self.core, host=host, port=port, tracer=self.tracer,
            metrics=self.metrics,
        ).start()
        return self._server

    def close(self) -> None:
        """Stop the TCP server (if any) and release waiting barriers."""
        if self._server is not None:
            self._server.close()
        with self._lock:
            barriers = list(self._barriers.values())
        for barrier in barriers:
            barrier.event.set()

    # -- the message handler (single entry point, both transports) ------------

    def handle(self, message: Message) -> dict:
        """Dispatch one deduplicated message to its protocol handler."""
        payload = message.payload
        worker = message.sender
        if message.msg_type is MessageType.JOIN:
            return self._handle_join(worker, payload)
        if message.msg_type is MessageType.COORDINATE:
            return self._handle_coordinate(
                worker, int(payload["iteration"]),
                ring_epoch=payload.get("ring_epoch"),
            )
        if message.msg_type is MessageType.SYNC:
            return self._handle_sync(worker, payload)
        if message.msg_type is MessageType.STATE_UPLOAD:
            return self._handle_state_upload(worker, payload)
        if message.msg_type is MessageType.STATE_CHUNK:
            return self._handle_state_chunk(worker, payload)
        if message.msg_type is MessageType.STATE_DONE:
            return self._handle_state_done(worker, payload)
        if message.msg_type is MessageType.STATE_FETCH:
            return self._handle_state_fetch(worker, payload)
        if message.msg_type is MessageType.ADJUSTMENT_REQUEST:
            return self._handle_adjustment_request(payload)
        if message.msg_type is MessageType.STATUS:
            return self.status()
        raise ValueError(f"unhandled message type {message.msg_type!r}")

    # -- step 2: joining -------------------------------------------------------

    def _handle_join(self, worker: str, payload: "dict | None" = None) -> dict:
        with self._lock:
            # Record the worker's peer-mesh address first: by the time a
            # commit plan is minted every reported joiner has polled at
            # least once, so the frozen ring payload is never partial.
            peer = (payload or {}).get("peer")
            if peer:
                self._peer_addrs[worker] = str(peer)
            # Consume the offer: a retransmission of this very poll is
            # answered from the ServerCore reply cache, and the offer
            # must not survive to be replayed — stale generation, stale
            # snapshot — if the same worker id is scaled out and back
            # in by a later adjustment.
            offer = self._join_offers.pop(worker, None)
            if offer is not None:
                # Only the offer minted for the live (or in-flight)
                # generation may be served; anything older belongs to a
                # previous incarnation of this worker id and would park
                # the joiner at a dead iteration where its SYNC
                # barriers never complete.
                current = (
                    self._plan.generation if self._plan is not None
                    else self._generation
                )
                if offer["generation"] == current:
                    return offer
            # Initial workers start from scratch at iteration 0.
            if self._generation == 0 and worker in self._groups[0]:
                return {
                    "status": "start",
                    "spec": self.spec.to_payload(),
                    "group": list(self._groups[0]),
                    "generation": 0,
                    "iteration": 0,
                }
            # A scale-out joiner: the poll doubles as the worker-report
            # (idempotent — the AM ignores reports it is not waiting
            # for, so polling before the request lands is harmless).
            self.am.worker_report(worker)
        return {"status": "pending"}

    # -- step 3: boundary coordination ----------------------------------------

    def _handle_coordinate(
        self, worker: str, iteration: int,
        ring_epoch: "int | None" = None,
    ) -> dict:
        with self._lock:
            # With the ring plane active the AM no longer sees
            # per-iteration syncs; boundary coordinates are its view of
            # training progress.
            self._latest_sync_iteration = max(
                self._latest_sync_iteration, iteration
            )
            directive = self.am.coordinate(worker, iteration)
            if directive.kind is DirectiveKind.CONTINUE:
                reply = {"kind": "continue"}
                # Piggyback the current generation's ring on boundary
                # replies until the worker reports it installed; every
                # member coordinating at this boundary receives the
                # identical payload (same order, same activation), so
                # the plane switches atomically at the boundary.
                if ring_epoch != self._generation:
                    ring = self._ring_payload(
                        self._generation,
                        self._groups[self._generation],
                        active_from=iteration,
                    )
                    if ring is not None:
                        reply["ring"] = ring
                return reply
            if self._plan is None:
                self._mint_plan(directive)
            plan = self._plan
            plan.acked.add(worker)
            reply = {
                "kind": "adjust",
                "group": list(plan.new_group),
                "generation": plan.generation,
                "commit_iteration": plan.commit_iteration,
                "upload": worker == plan.uploader,
            }
            if plan.ring is not None:
                reply["ring"] = plan.ring
            self._maybe_finish()
            return reply

    def _ring_payload(
        self, generation: int, group: typing.Sequence[str],
        active_from: int,
    ) -> "dict | None":
        """The ring installed for ``generation`` — or None if any
        member lacks a peer address (the job then stays on the star
        path; mixed planes within a generation are never distributed).
        """
        if not self.spec.ring_enabled or len(group) < 2:
            return None
        peers = {}
        for member in group:
            addr = self._peer_addrs.get(member)
            if addr is None:
                return None
            peers[member] = addr
        return {
            "epoch": generation,
            "order": list(group),
            "peers": peers,
            "active_from": int(active_from),
        }

    def _mint_plan(self, directive) -> None:
        plan = _CommitPlan(
            generation=self._generation + 1,
            commit_iteration=directive.commit_iteration,
            old_group=self.am.group,
            new_group=directive.new_group,
            requested_at=self._pending_request_at or time.perf_counter(),
        )
        self._plan = plan
        # A joiner that never polled its offer from an earlier
        # adjustment (it crashed, or was scaled out before joining)
        # must wait for *this* plan's snapshot, not receive the old one.
        for joiner in plan.add_workers:
            self._join_offers.pop(joiner, None)
        # Fully-fetched downloads from earlier adjustments are dead
        # weight now; in-flight ones stay so straggling joiners finish.
        for transfer_id in [
            t for t, d in self._downloads.items() if d.complete
        ]:
            del self._downloads[transfer_id]
        # The new generation's rendezvous membership must exist before
        # the first survivor syncs at the commit boundary — which can
        # happen well before the adjustment finishes.
        self._groups[plan.generation] = plan.new_group
        # Freeze the new generation's ring now: every joiner reported
        # (scale-out plans are only minted after all reports, and a
        # report is a JOIN poll that recorded the peer address), so the
        # mesh is complete — and freezing means survivors' directives
        # and joiners' offers all ship the identical ring.  The commit
        # iteration itself still runs on the star path (activation is
        # one past it), giving joiners the slack to fetch state.
        plan.ring = self._ring_payload(
            plan.generation, plan.new_group,
            active_from=plan.commit_iteration + 1,
        )
        if not plan.add_workers:
            # Nothing to replicate: joiner offers never materialize.
            plan.snapshot = {}

    def _maybe_finish(self) -> None:
        plan = self._plan
        if plan is None:
            return
        if not plan.acked >= set(plan.old_group):
            return
        if plan.add_workers and plan.snapshot is None:
            return
        self.am.finish_adjustment()
        self._generation = plan.generation
        self._plan = None
        self._pending_request_at = None
        self.commit_latencies.append(time.perf_counter() - plan.requested_at)
        self._drop_superseded_barriers()
        # Membership of retired generations is dead weight: any sync
        # for them is rejected by the generation guard anyway.
        self._groups = {
            g: grp for g, grp in self._groups.items()
            if g >= self._generation
        }
        self._check_complete()

    def _drop_superseded_barriers(self) -> None:
        """Release sync barriers stranded by the commit.

        A barrier for a superseded generation can never complete (its
        membership no longer syncs); without this it would pin its
        gradient arrays and park its waiters for the full
        ``allreduce_timeout``.  Waking them with a generation-changed
        error turns a silent stall into an immediate, explicit signal.
        """
        for key in [k for k in self._barriers if k[0] < self._generation]:
            barrier = self._barriers.pop(key)
            if barrier.result is None:
                barrier.result = {
                    "__error__": (
                        f"sync generation {key[0]} superseded by "
                        f"generation {self._generation}"
                    )
                }
            barrier.event.set()

    # -- step 4: state replication ---------------------------------------------

    def _handle_state_upload(self, worker: str, payload: dict) -> dict:
        if payload.get("final"):
            with self._lock:
                record = {
                    "iteration": int(payload.get("iteration", 0)),
                    "digest": payload.get("digest"),
                }
                if payload.get("removed"):
                    self._departed[worker] = record
                else:
                    self._final[worker] = record
                self._check_complete()
            return {"ok": True}
        with self._lock:
            plan = self._plan
            if plan is None or worker != plan.uploader:
                return {"ok": False, "reason": "no snapshot expected"}
            # Copy the parameter arrays: over the in-memory transport the
            # payload aliases the uploader's *live* tensors (TCP would
            # have serialized them), and the uploader keeps training.
            plan.snapshot = {
                "params": {
                    name: np.array(array)
                    for name, array in payload["params"].items()
                },
                "optimizer": payload["optimizer"],
                "loader": payload["loader"],
            }
            for joiner in plan.add_workers:
                self._join_offers[joiner] = {
                    "status": "join",
                    "spec": self.spec.to_payload(),
                    "group": list(plan.new_group),
                    "generation": plan.generation,
                    "iteration": plan.commit_iteration,
                    "state": plan.snapshot,
                    **({"ring": plan.ring} if plan.ring else {}),
                }
            self._maybe_finish()
        return {"ok": True}

    # -- step 4, chunked: the replication data plane ---------------------------

    def _handle_state_chunk(self, worker: str, payload: dict) -> dict:
        """One verified chunk of the uploader's snapshot blob."""
        with self._lock:
            plan = self._plan
            if plan is None or worker != plan.uploader:
                return {"ok": False, "reason": "no snapshot expected"}
            return self._chunks.handle_chunk(worker, payload)

    def _handle_state_done(self, worker: str, payload: dict) -> dict:
        """Finalize a chunked upload: verify, plan fan-out, mint offers.

        The AM stores the assembled blob verbatim (digest-verified,
        never decoded) and serves it back to joiners chunk by chunk in
        the replication planner's round order.
        """
        with self._lock:
            plan = self._plan
            if plan is None or worker != plan.uploader:
                return {"ok": False, "reason": "no snapshot expected"}
            reply, assembler = self._chunks.handle_done(worker, payload)
            if assembler is None:
                return reply
            transfer_id = str(payload["transfer_id"])
            rounds = _fanout_rounds(
                plan.old_group, plan.add_workers, assembler.total_bytes
            )
            download = _Download(assembler, rounds, plan.generation)
            self._downloads[transfer_id] = download
            plan.transfer_id = transfer_id
            # Sentinel: _maybe_finish only needs to know replication
            # data exists; the offers below carry the real descriptor.
            plan.snapshot = {"transfer": transfer_id}
            for joiner in plan.add_workers:
                self._join_offers[joiner] = {
                    "status": "join",
                    "spec": self.spec.to_payload(),
                    "group": list(plan.new_group),
                    "generation": plan.generation,
                    "iteration": plan.commit_iteration,
                    "state_transfer": download.describe(transfer_id, joiner),
                    **({"ring": plan.ring} if plan.ring else {}),
                }
            if self.tracer is not None:
                self.tracer.instant(
                    "replicate.fanout", track="am", cat="replicate",
                    transfer_id=transfer_id, rounds=rounds,
                    payload_bytes=assembler.total_bytes,
                    chunks=assembler.total_chunks,
                )
            self._maybe_finish()
            return reply

    def _handle_state_fetch(self, worker: str, payload: dict) -> dict:
        """Serve one chunk of a stored snapshot to a joiner."""
        transfer_id = payload.get("transfer_id")
        with self._lock:
            download = self._downloads.get(transfer_id)
            if download is None:
                return {"ok": False, "reason": "unknown transfer"}
            if worker not in download.rounds:
                return {"ok": False, "reason": "not a planned joiner"}
            if not download.round_open(worker):
                # Earlier planner rounds are still copying; the joiner
                # polls until its round opens.
                return {"status": "pending"}
            seq = payload.get("seq")
            if not isinstance(seq, int) or not 0 <= seq < download.total_chunks:
                return {"ok": False, "reason": f"bad seq {seq!r}"}
            download.progress[worker].add(seq)
            chunk = download.chunk(seq)
            self.metrics.counter("net.chunks.served").inc()
            return {
                "ok": True,
                "seq": seq,
                "data": chunk,
                "digest": download.chunk_digests[seq],
            }

    # -- the gradient rendezvous -----------------------------------------------

    def _handle_sync(self, worker: str, payload: dict) -> dict:
        generation = int(payload["generation"])
        iteration = int(payload["iteration"])
        key = (generation, iteration)
        with self._lock:
            if generation < self._generation:
                # Lockstep means live members never sync a retired
                # generation; anything arriving here is a straggler of
                # a superseded incarnation and must not seed a barrier
                # that can never complete.
                raise KeyError(
                    f"sync generation {generation} superseded by "
                    f"generation {self._generation}"
                )
            group = self._groups.get(generation)
            if group is None or worker not in group:
                raise KeyError(
                    f"{worker!r} is not in generation {generation}"
                )
            self.metrics.counter("net.sync.grad_bytes").inc(
                payload_nbytes(payload.get("grads"))
            )
            if payload.get("ring_fallback"):
                self.metrics.counter("net.sync.ring_fallbacks").inc()
            barrier = self._barriers.get(key)
            if barrier is None:
                barrier = self._barriers[key] = _SyncBarrier(group)
            barrier.contributions[worker] = payload.get("grads")
            self._latest_sync_iteration = max(
                self._latest_sync_iteration, iteration
            )
            if set(barrier.contributions) >= barrier.expected:
                barrier.result = {
                    "grads": self._average(group, barrier.contributions),
                    "members": len(barrier.expected),
                }
                barrier.event.set()
        if not barrier.event.wait(self.spec.allreduce_timeout):
            missing = sorted(barrier.expected - set(barrier.contributions))
            raise TimeoutError(
                f"sync ({generation}, {iteration}) timed out waiting "
                f"for {missing}"
            )
        result = barrier.result or {}
        with self._lock:
            barrier.collected.add(worker)
            if barrier.collected >= barrier.expected:
                # Everyone has this iteration's mean; keeping the
                # barrier (and its gradient ndarrays) any longer would
                # grow memory linearly with iterations run.
                self._barriers.pop(key, None)
        self.metrics.counter("net.sync.grad_bytes").inc(
            payload_nbytes(result.get("grads"))
        )
        return result

    def _average(self, group: "tuple[str, ...]", contributions: dict):
        """Average one barrier's gradients, matching the ring's order.

        Ring-enabled jobs must get bit-identical means from both
        planes, and IEEE float addition is not associative — so when
        the ring is on, the AM replays the ring's exact reduction
        (ring-order chained adds over zero-filled absentees) instead
        of the naive sum.  Legacy star-only jobs keep the historical
        ``average_gradients`` arithmetic.
        """
        concrete = [
            grads for grads in contributions.values() if grads
        ]
        if not concrete:
            return None
        if not self.spec.ring_enabled:
            return average_gradients(concrete)
        template = concrete[0]
        ordered = [
            contributions.get(member) or
            {name: np.zeros_like(arr) for name, arr in template.items()}
            for member in group
        ]
        return ring_reference_average(ordered)

    # -- step 1: the scheduler/driver API ---------------------------------------

    def _handle_adjustment_request(self, payload: dict) -> dict:
        request = AdjustmentRequest(
            kind=AdjustmentKind(payload["kind"]),
            add_workers=tuple(payload.get("add", ())),
            remove_workers=tuple(payload.get("remove", ())),
        )
        with self._lock:
            accepted = self.am.request_adjustment(request)
            if accepted:
                self._pending_request_at = time.perf_counter()
        return {"accepted": accepted}

    # -- progress ---------------------------------------------------------------

    def _check_complete(self) -> None:
        group = self._groups[self._generation]
        if self._plan is None and all(w in self._final for w in group):
            self._complete.set()

    @property
    def complete(self) -> bool:
        """True once every current-group member uploaded a final digest."""
        return self._complete.is_set()

    def wait_complete(self, timeout: "float | None" = None) -> bool:
        """Block until the job completes (or the timeout lapses)."""
        return self._complete.wait(timeout)

    def final_digests(self) -> "dict[str, str]":
        """Final parameter digest per completing worker."""
        with self._lock:
            return {w: r["digest"] for w, r in self._final.items()}

    def status(self) -> dict:
        """Snapshot of job progress (the ``STATUS`` reply)."""
        with self._lock:
            return {
                "iteration": self._latest_sync_iteration,
                "generation": self._generation,
                "group": list(self._groups[self._generation]),
                "adjustments_committed": self.am.adjustments_committed,
                "adjustment_pending": self._plan is not None
                or self.am.pending is not None,
                "complete": self._complete.is_set(),
                "digests": {
                    w: r["digest"] for w, r in self._final.items()
                },
                "departed": sorted(self._departed),
                "commit_latencies": list(self.commit_latencies),
                "handled": self.core.handled,
                "duplicates": self.core.duplicates,
                "uploads_completed": self._chunks.completed,
                "downloads_active": len(self._downloads),
            }
