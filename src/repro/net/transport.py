"""The transport seam: one protocol, two implementations, one recipe.

The paper's §V-D fault-tolerance recipe — unique message IDs, receiver
dedup, sender timeout-resend — is transport-independent, so this module
pins it to a small :class:`Transport` protocol and implements the recipe
*once*:

* :class:`ReliableLink` is the only resend loop (it drives
  :class:`~repro.coordination.messages.ReliableSender`), used unchanged
  over the in-memory transport and over TCP;
* :class:`ServerCore` is the only dedup filter (it drives
  :class:`~repro.coordination.messages.DeduplicatingInbox` keyed by
  ``(sender, msg_id)``) and caches each reply so a retransmission is
  answered without re-executing the handler — exactly-once execution,
  at-least-once delivery.

:class:`InMemoryTransport` keeps the whole stack in-process (fast tests,
deterministic chaos), :class:`repro.net.tcp.TcpTransport` runs it over
real sockets; both consume the same deterministic
:class:`~repro.coordination.faults.FaultPlan` via
:class:`TransportFaults`, so a chaos schedule replays identically on
either side of the seam.
"""

from __future__ import annotations

import collections
import dataclasses
import threading
import time
import typing

from ..coordination.faults import ExponentialBackoff, FaultPlan
from ..coordination.messages import (
    DeduplicatingInbox,
    FaultyChannel,
    Message,
    MessageFactory,
    MessageType,
    ReliableSender,
)
from ..observability.fleet import ClockSync
from .wire import payload_nbytes

#: Reserved request-payload key carrying the sender's trace context
#: (job id, node id, per-process incarnation epoch, send timestamp).
#: Stamped by :meth:`ReliableLink.request`, popped by
#: :meth:`ServerCore.dispatch` before the handler runs; the message id
#: itself is the request→reply correlation id.  Replies carry the
#: server's context under the same key, stamped per *transmission* by
#: the transport (never by ServerCore — a cached reply re-served to a
#: retransmission must get fresh timestamps).
TRACE_CTX_KEY = "__ctx__"


class TransportClosed(ConnectionError):
    """The transport is permanently down; no retry can help."""


class RemoteError(RuntimeError):
    """The server's handler raised; the error text crossed the wire."""


class RetryableError(RemoteError):
    """A structured, *recoverable* server-side rejection.

    Raised when the reply carries ``__retry__`` alongside ``__error__``:
    the server is telling this client that the request hit a condition
    the client can resolve itself — a superseded AM epoch (re-enroll
    with the successor), a stale sync barrier (repair the mean from a
    peer), a superseded generation.  ``reason`` holds the machine-
    readable tag; the human text stays in ``args[0]``.
    """

    def __init__(self, message: str, reason: str):
        super().__init__(message)
        self.reason = reason


class RequestTimeout(TimeoutError):
    """Every resend attempt of one request went unacknowledged."""


@typing.runtime_checkable
class Transport(typing.Protocol):
    """What a control-plane transport must offer.

    Both :class:`~repro.coordination.messages.FaultyChannel` (the
    in-memory channel) and :class:`repro.net.tcp.TcpTransport` satisfy
    this structurally: fire-and-forget ``send`` of one
    :class:`~repro.coordination.messages.Message` (False = known-lost;
    True promises nothing — acknowledgement is the reliability layer's
    job), a liveness flag, and teardown.
    """

    node_id: str

    def send(self, message: Message) -> bool:
        """Attempt one delivery; False if the send is known to be lost."""
        ...

    def close(self) -> None:
        """Tear the transport down; subsequent sends fail."""
        ...

    @property
    def connected(self) -> bool:
        """Liveness of the underlying link."""
        ...


# -- deterministic fault injection -------------------------------------------


@dataclasses.dataclass(frozen=True)
class FaultAction:
    """What the fault schedule dictates for one send."""

    delay: float = 0.0
    reset: bool = False


class TransportFaults:
    """Stateful consumer of a :class:`FaultPlan`'s network faults.

    Drops and duplicates are *not* handled here — they go through the
    shared :class:`FaultyChannel` stage so both transports inherit the
    exact semantics the in-memory tests pinned down.  This class owns
    the send-indexed faults a channel cannot express: added latency and
    connection resets.
    """

    def __init__(
        self,
        delays: "typing.Mapping[int, float] | None" = None,
        resets: typing.Iterable[int] = (),
    ):
        self.delays = dict(delays or {})
        self.resets = frozenset(resets)
        self.sends = 0
        self.delays_injected = 0
        self.resets_injected = 0

    @classmethod
    def from_plan(cls, plan: "FaultPlan | None") -> "TransportFaults | None":
        """The plan's latency/reset schedule (None if it has neither)."""
        if plan is None or not (plan.net_delays or plan.connection_resets):
            return None
        return cls(delays=plan.net_delays, resets=plan.connection_resets)

    def next_send(self) -> FaultAction:
        """Advance the send counter and report this send's faults."""
        self.sends += 1
        delay = float(self.delays.get(self.sends, 0.0))
        reset = self.sends in self.resets
        if delay:
            self.delays_injected += 1
        if reset:
            self.resets_injected += 1
        return FaultAction(delay=delay, reset=reset)


# -- client side: the single resend code path ---------------------------------


class _ReplySlot:
    """One outstanding request's rendezvous with its reply."""

    __slots__ = ("event", "payload")

    def __init__(self):
        self.event = threading.Event()
        self.payload: "dict | None" = None


class ReliableLink:
    """Request/reply with timeout-resend over any :class:`Transport`.

    Every request is a uniquely-identified
    :class:`~repro.coordination.messages.Message`; retransmissions reuse
    the ID (so the server can dedup), and the retry loop itself is the
    existing :class:`ReliableSender` — acknowledgement means "the reply
    for this msg_id arrived within ``ack_timeout``".
    """

    def __init__(
        self,
        node_id: str,
        transport: "Transport | None" = None,
        ack_timeout: float = 1.0,
        max_attempts: int = 8,
        backoff: "ExponentialBackoff | None" = None,
        tracer: "typing.Any | None" = None,
        metrics: "typing.Any | None" = None,
    ):
        self.node_id = node_id
        self.transport = transport
        self.ack_timeout = ack_timeout
        self.tracer = tracer
        self.metrics = metrics
        self._factory = MessageFactory()
        self._slots: "dict[int, _ReplySlot]" = {}
        self._slots_lock = threading.Lock()
        self._sender = ReliableSender(
            channel=_LinkChannel(self),
            max_attempts=max_attempts,
            backoff=backoff,
        )
        #: extra trace-context fields stamped on every request (the
        #: worker agent fills in the job id once it learns it).
        self.trace_context: "dict[str, typing.Any]" = {}
        #: NTP-style offset estimate of ``server_clock - our_clock``,
        #: fed by the per-transmission context on every reply.
        self.clock_sync = ClockSync()
        #: msg_id -> perf_counter time of its latest transmission.
        self._send_times: "dict[int, float]" = {}

    # -- wiring ----------------------------------------------------------------

    def attach(self, transport: Transport) -> "ReliableLink":
        """Bind the transport (which needed ``on_reply`` to exist first)."""
        self.transport = transport
        return self

    def on_reply(self, in_reply_to: int, payload: dict) -> None:
        """Inbound-reply hook the transport calls from its read path."""
        ctx = payload.pop(TRACE_CTX_KEY, None)
        if isinstance(ctx, dict):
            self._fold_clock_sample(in_reply_to, ctx)
        with self._slots_lock:
            slot = self._slots.get(in_reply_to)
        if slot is not None:
            slot.payload = payload
            slot.event.set()

    def _fold_clock_sample(self, in_reply_to: int, ctx: dict) -> None:
        """One NTP quadruple from a reply's transmission context."""
        t0 = self._send_times.get(in_reply_to)
        t1, t2 = ctx.get("recv"), ctx.get("sent")
        if t0 is None or t1 is None or t2 is None:
            return
        t3 = time.perf_counter()
        offset, rtt = self.clock_sync.add(t0, float(t1), float(t2), t3)
        if self.metrics is not None:
            self.metrics.counter("net.clock_samples").inc()
        if self.tracer is not None:
            self.tracer.instant(
                "net.clock_sample", track=self.node_id, cat="net",
                peer=ctx.get("node"), offset=offset, rtt=rtt,
                best_offset=self.clock_sync.offset,
            )

    # -- stats -----------------------------------------------------------------

    @property
    def resends(self) -> int:
        """Total retransmissions performed (shared resend counter)."""
        return self._sender.retries

    # -- the request path ------------------------------------------------------

    def request(
        self,
        msg_type: MessageType,
        payload: "dict | None" = None,
        ack_timeout: "float | None" = None,
    ) -> dict:
        """Deliver one request exactly-once and return its reply payload.

        Resends (same msg_id) until the reply lands or the attempt
        budget runs out; raises :class:`RequestTimeout` on exhaustion,
        :class:`RemoteError` if the handler raised remotely.
        """
        if self.transport is None:
            raise TransportClosed("link has no transport attached")
        stamped = dict(payload or {})
        stamped[TRACE_CTX_KEY] = dict(
            self.trace_context,
            node=self.node_id,
            epoch=self._factory.epoch,
            sent=time.perf_counter(),
        )
        message = self._factory.make(msg_type, self.node_id, stamped)
        slot = _ReplySlot()
        with self._slots_lock:
            self._slots[message.msg_id] = slot
        timeout = self.ack_timeout if ack_timeout is None else ack_timeout
        try:
            delivered = self._sender.send(
                message, acknowledged=lambda: slot.event.wait(timeout)
            )
        finally:
            with self._slots_lock:
                self._slots.pop(message.msg_id, None)
            self._send_times.pop(message.msg_id, None)
        if not delivered:
            raise RequestTimeout(
                f"{msg_type.value} request {message.msg_id} from "
                f"{self.node_id!r} exhausted its resend budget"
            )
        reply = slot.payload or {}
        if "__error__" in reply:
            if "__retry__" in reply:
                raise RetryableError(
                    reply["__error__"], str(reply["__retry__"])
                )
            raise RemoteError(reply["__error__"])
        return reply

    def close(self) -> None:
        """Close the underlying transport."""
        if self.transport is not None:
            self.transport.close()


class _LinkChannel:
    """Adapter presenting a :class:`Transport` to ReliableSender.

    ReliableSender only calls ``channel.send(message)``; this shim adds
    the per-send trace instant so both transports' sends land in the
    observability taxonomy uniformly.
    """

    def __init__(self, link: ReliableLink):
        self._link = link

    def send(self, message: Message) -> bool:
        transport = self._link.transport
        if transport is None:
            return False
        # Timestamp every transmission (resends overwrite): the reply's
        # clock sample wants the t0 of the send that produced it, and
        # the latest send is the best available estimate.
        self._link._send_times[message.msg_id] = time.perf_counter()
        delivered = transport.send(message)
        nbytes = payload_nbytes(message.payload)
        tracer = self._link.tracer
        if tracer is not None:
            tracer.instant(
                "net.send", track=self._link.node_id, cat="net",
                type=message.msg_type.value, msg_id=message.msg_id,
                delivered=delivered, payload_bytes=nbytes,
            )
        metrics = self._link.metrics
        if metrics is not None:
            metrics.counter("net.sends").inc()
            if nbytes:
                metrics.counter("net.payload_bytes_sent").inc(nbytes)
        return delivered


# -- server side: the single dedup code path ----------------------------------


class _PendingReply:
    """Reply cache entry; exists from first sight of a msg_id onward."""

    __slots__ = ("event", "payload")

    def __init__(self):
        self.event = threading.Event()
        self.payload: "dict | None" = None


class ServerCore:
    """Exactly-once request execution with reply caching.

    Transport-independent: the TCP server and the in-memory transport
    both feed inbound messages to :meth:`dispatch`.  A fresh message
    runs the handler once; a retransmission (same ``(sender, msg_id)``)
    waits for — or is served from — the cached reply, never re-executing
    the handler.  That is the §V-D recipe's receiving half.

    The dedup window is bounded: ``dedup_ttl`` seconds after a reply
    completes, its cache entry and seen-key are evicted, so a
    long-running serve process does not accumulate one entry per
    message forever.  The TTL only has to outlive the sender's resend
    horizon (``max_attempts × (ack_timeout + backoff)``, a few seconds)
    — the 120 s default leaves an order of magnitude of slack.
    """

    def __init__(
        self,
        handler: typing.Callable[[Message], dict],
        node_id: str = "am",
        tracer: "typing.Any | None" = None,
        reply_wait: float = 30.0,
        dedup_ttl: "float | None" = 120.0,
        metrics: "typing.Any | None" = None,
        on_activity: "typing.Callable[[str], None] | None" = None,
    ):
        self.handler = handler
        self.node_id = node_id
        self.tracer = tracer
        self.metrics = metrics
        self.reply_wait = reply_wait
        self.dedup_ttl = dedup_ttl
        #: Fencing epoch advertised in the TCP welcome (and readable by
        #: the in-memory transport); bumped by AM failover.
        self.epoch = 0
        #: Liveness hook, called with the sender id for *every* inbound
        #: message — duplicates included, because a worker stuck resending
        #: into a blocked barrier is very much alive.
        self.on_activity = on_activity
        self._inbox = DeduplicatingInbox(
            key=lambda message: (message.sender, message.msg_id)
        )
        self._replies: "dict[tuple, _PendingReply]" = {}
        #: completed (key, finished_at) pairs, oldest first, awaiting TTL.
        self._retired: "collections.deque[tuple[tuple, float]]" = (
            collections.deque()
        )
        self._lock = threading.Lock()
        self.handled = 0
        self.evicted = 0
        #: per-(sender, type) handler executions, for exactly-once asserts.
        self.executions: "dict[tuple, int]" = {}

    @property
    def duplicates(self) -> int:
        """Retransmissions absorbed without re-execution."""
        return self._inbox.duplicates_dropped

    def _evict_expired_locked(self, now: float) -> None:
        while self._retired and now - self._retired[0][1] > self.dedup_ttl:
            key, _ = self._retired.popleft()
            self._replies.pop(key, None)
            self._inbox.forget(key)
            self.evicted += 1

    def dispatch(self, message: Message) -> dict:
        """Process one inbound message; returns the reply payload."""
        if self.on_activity is not None:
            self.on_activity(message.sender)
        # The wire trace context is transport metadata, not request
        # data: strip it before the handler (or nbytes accounting) sees
        # the payload.  Retransmissions may arrive without it.
        ctx = message.payload.pop(TRACE_CTX_KEY, None)
        if not isinstance(ctx, dict):
            ctx = None
        key = (message.sender, message.msg_id)
        with self._lock:
            if self.dedup_ttl is not None:
                self._evict_expired_locked(time.monotonic())
            fresh = self._inbox.accept(message)
            if fresh:
                pending = _PendingReply()
                self._replies[key] = pending
            else:
                pending = self._replies.get(key)
        nbytes = payload_nbytes(message.payload)
        if self.tracer is not None:
            ctx_args = {}
            if ctx is not None:
                if ctx.get("job") is not None:
                    ctx_args["job"] = ctx.get("job")
                if ctx.get("epoch") is not None:
                    ctx_args["sender_epoch"] = ctx.get("epoch")
            self.tracer.instant(
                "net.recv", track=self.node_id, cat="net",
                sender=message.sender, type=message.msg_type.value,
                msg_id=message.msg_id, duplicate=not fresh,
                payload_bytes=nbytes, **ctx_args,
            )
        if self.metrics is not None:
            self.metrics.counter(
                "net.requests" if fresh else "net.request_duplicates"
            ).inc()
            if fresh and nbytes:
                self.metrics.counter("net.payload_bytes_received").inc(nbytes)
        if not fresh:
            # A retransmission: the original may still be executing (it
            # raced a reconnect); wait for its reply rather than running
            # the handler twice.
            if pending is None or not pending.event.wait(self.reply_wait):
                return {"__error__": "duplicate outlived its reply cache"}
            return pending.payload or {}
        try:
            payload = self.handler(message)
        except Exception as exc:
            payload = {"__error__": f"{type(exc).__name__}: {exc}"}
        with self._lock:
            self.handled += 1
            count_key = (message.sender, message.msg_type.value)
            self.executions[count_key] = self.executions.get(count_key, 0) + 1
            self._retired.append((key, time.monotonic()))
        pending.payload = payload
        pending.event.set()
        return payload


# -- the in-memory transport --------------------------------------------------


class InMemoryTransport(FaultyChannel):
    """A :class:`Transport` that dispatches straight into a ServerCore.

    Subclasses the in-memory :class:`FaultyChannel` — the channel *is*
    the transport's loss/duplication stage (single fault code path) —
    and layers on the two behaviors a real socket adds: injected
    latency and connection resets with reconnect backoff.  A reset
    drops the in-flight message with the "connection"; the next send
    pays the reconnect (counted, traced as ``net.reconnect``) and then
    proceeds, exactly like the TCP transport.
    """

    def __init__(
        self,
        node_id: str,
        server: ServerCore,
        on_reply: typing.Callable[[int, dict], None],
        fault_plan: "FaultPlan | None" = None,
        backoff: "ExponentialBackoff | None" = None,
        tracer: "typing.Any | None" = None,
        heartbeat_interval: "float | None" = None,
    ):
        plan = fault_plan
        super().__init__(
            deliver=self._dispatch,
            drop_every=plan.drop_every if plan else 0,
            duplicate_every=plan.duplicate_every if plan else 0,
            node_id=node_id,
        )
        self._server = server
        self._on_reply = on_reply
        self._faults = TransportFaults.from_plan(plan)
        self._backoff = backoff or ExponentialBackoff(
            base=0.001, max_delay=0.02
        )
        self.tracer = tracer
        self._link_up = True
        self.reconnects = 0
        #: Optional liveness heartbeat, mirroring the TCP transport's
        #: wire-level pings: feeds the server's ``on_activity`` hook
        #: (lease keep-alive) without going through dispatch, so
        #: exactly-once execution counts are untouched.  A worker doing
        #: ring (peer-to-peer) iterations may otherwise not message the
        #: AM for a whole coordination interval — silence the lease
        #: evictor must not mistake for death.  Off by default; dies
        #: with :meth:`close`, exactly like a real process's socket.
        #: Serializes concurrent senders (pipelined chunk uploads use a
        #: small thread window) so the deterministic fault schedule sees
        #: one send at a time, exactly like the TCP transport's
        #: send lock.
        self._send_lock = threading.Lock()
        self._heartbeat_stop = threading.Event()
        self._heartbeat_thread: "threading.Thread | None" = None
        if heartbeat_interval:
            self._heartbeat_thread = threading.Thread(
                target=self._heartbeat_loop, args=(heartbeat_interval,),
                name=f"mem-hb-{node_id}", daemon=True,
            )
            self._heartbeat_thread.start()

    def _heartbeat_loop(self, interval: float) -> None:
        while not self._heartbeat_stop.wait(interval):
            if not self.connected:
                continue
            on_activity = getattr(self._server, "on_activity", None)
            if on_activity is not None:
                on_activity(self.node_id)

    @property
    def connected(self) -> bool:
        """Both "the channel is open" and "the simulated link is up"."""
        return super().connected and self._link_up

    @property
    def server_epoch(self) -> "int | None":
        """The served AM's fencing epoch (mirrors the TCP welcome)."""
        return getattr(self._server, "epoch", None)

    def redirect(self, server: ServerCore) -> None:
        """Point this transport at a successor server (AM failover).

        The in-memory analogue of a TCP client reconnecting to the
        standby endpoint: subsequent sends dispatch into the new core,
        and :attr:`server_epoch` reports its (bumped) fencing epoch.
        """
        with self._send_lock:
            self._server = server
            self._link_up = True

    def _dispatch(self, message: Message) -> None:
        t_recv = time.perf_counter()
        reply = self._server.dispatch(message)
        # Stamp the server's transmission context on a shallow copy —
        # never on the cached reply dict itself, so a retransmission
        # re-served from the cache gets fresh timestamps.  In-process
        # both clocks are the same perf_counter, so the measured offset
        # is ~0 — a free sanity check on the estimator.
        ctx = {
            "node": getattr(self._server, "node_id", "am"),
            "epoch": getattr(self._server, "epoch", 0),
            "recv": t_recv,
            "sent": time.perf_counter(),
        }
        self._on_reply(message.msg_id, dict(reply, **{TRACE_CTX_KEY: ctx}))

    def _reconnect(self) -> None:
        span = None
        if self.tracer is not None:
            span = self.tracer.begin(
                "net.reconnect", track=self.node_id, cat="net"
            )
        self._backoff.wait(min(self.reconnects, 8))
        self.reconnects += 1
        self._link_up = True
        if self.tracer is not None:
            self.tracer.end(span, attempt=self.reconnects)

    def send(self, message: Message) -> bool:
        with self._send_lock:
            if not super().connected:  # closed for good
                return False
            action = (
                self._faults.next_send() if self._faults is not None
                else FaultAction()
            )
            if action.reset:
                # The connection dies under this send: the message is lost.
                self._link_up = False
                return False
            if not self._link_up:
                self._reconnect()
            if action.delay:
                time.sleep(action.delay)
            return super().send(message)

    def close(self) -> None:
        self._heartbeat_stop.set()
        super().close()


def memory_link(
    server: ServerCore,
    node_id: str,
    fault_plan: "FaultPlan | None" = None,
    ack_timeout: float = 0.2,
    max_attempts: int = 10,
    tracer: "typing.Any | None" = None,
    metrics: "typing.Any | None" = None,
    heartbeat_interval: "float | None" = None,
) -> ReliableLink:
    """A ready-to-use reliable in-memory client for ``server``."""
    link = ReliableLink(
        node_id, ack_timeout=ack_timeout, max_attempts=max_attempts,
        tracer=tracer, metrics=metrics,
    )
    transport = InMemoryTransport(
        node_id, server, on_reply=link.on_reply, fault_plan=fault_plan,
        tracer=tracer, heartbeat_interval=heartbeat_interval,
    )
    return link.attach(transport)
