"""Live worker→AM telemetry shipping (the fleet observability plane).

Each worker runs one :class:`TelemetryShipper`: a background thread that
periodically pushes a bounded delta of the worker's trace-event buffer
and a full metric-registry snapshot to the AM over the existing
:class:`~repro.net.transport.ReliableLink` — so shipping inherits the
protocol's exactly-once guarantee (timeout-resend + server-side dedup)
instead of inventing a second reliability layer.

The cursor protocol mirrors :meth:`~repro.observability.tracing.Tracer.
collect_events`: every shipped record carries its buffer index, the AM's
:class:`~repro.observability.fleet.FleetCollector` folds records
idempotently by index, and still-open spans are revisited on later
ticks.  Three situations force a *full* snapshot (``full=True`` clears
the collector's view of this worker before folding):

* the first ship after start-up;
* re-enrollment with a successor AM (the collector is deliberately not
  journaled — the fleet view is rebuilt from these re-ships), or a
  ``resync`` reply from a collector that detected a gap;
* backpressure: when the unshipped backlog exceeds ``backlog`` events
  the shipper drops the oldest (advancing its cursor and counting the
  loss in ``dropped``) and marks the next ship full so the collector
  replaces — rather than merges with — its now-stale view.

Shipping failures (timeouts, fenced replies mid-failover) never advance
the cursor: the next tick simply retries, and the agent's own
re-enrollment path calls :meth:`mark_full` so the successor gets the
whole picture.
"""

from __future__ import annotations

import threading
import time
import typing

from ..coordination.messages import MessageType
from .transport import (
    ReliableLink,
    RemoteError,
    RequestTimeout,
    RetryableError,
    TransportClosed,
)


class TelemetryShipper:
    """Ships bounded metric/trace deltas from one worker to the AM."""

    def __init__(
        self,
        link: ReliableLink,
        worker_id: str,
        job: "str | None" = None,
        tracer: "typing.Any | None" = None,
        metrics: "typing.Any | None" = None,
        interval: float = 1.0,
        max_events: int = 512,
        backlog: int = 4096,
        ack_timeout: "float | None" = None,
    ):
        self.link = link
        self.worker_id = worker_id
        self.job = job
        self.tracer = tracer
        self.metrics = metrics
        self.interval = float(interval)
        self.max_events = int(max_events)
        self.backlog = int(backlog)
        self.ack_timeout = ack_timeout
        #: totals, for tests and the overhead benchmark.
        self.ships = 0
        self.failures = 0
        self.events_shipped = 0
        self.dropped = 0
        self._seq = 0
        self._start = 0
        self._pending: "list[int]" = []
        self._full = True  # the first ship is always a snapshot
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: "threading.Thread | None" = None

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> None:
        """Start the periodic shipping thread (daemon; idempotent)."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name=f"telemetry-{self.worker_id}",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the thread without flushing (crash/teardown path)."""
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5.0)

    def flush(self) -> bool:
        """Ship until everything recorded *so far* is delivered.

        The drain target is the buffer length at entry: shipping itself
        records new events (``net.send`` spans, clock samples), so
        chasing "empty" would never terminate — each ship would create
        the next ship's backlog.  Open spans below the target that never
        close, and a dead AM, are handled by the stall bound.  Returns
        True when the target was reached.
        """
        if self.tracer is None:
            return self.ship_once()
        target = len(self.tracer)

        def remaining() -> bool:
            with self._lock:
                if self._full:
                    return True  # a marked-full snapshot is still owed
                return self._start < target or any(
                    i < target for i in self._pending
                )

        stalls = 0
        while remaining() and stalls < 3:
            with self._lock:
                before = (self._start, tuple(self._pending), self._full)
            if not self.ship_once():
                stalls += 1
                time.sleep(min(self.interval, 0.05))
                continue
            with self._lock:
                after = (self._start, tuple(self._pending), self._full)
            stalls = stalls + 1 if after == before else 0
        return not remaining()

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.ship_once()

    # -- the ship path ----------------------------------------------------------

    def mark_full(self) -> None:
        """Rewind the cursor: the next ship is a complete snapshot.

        Called by the agent after re-enrolling with a successor AM
        (whose collector starts empty) and on a ``resync`` reply.
        """
        with self._lock:
            self._full = True
            self._start = 0
            self._pending = []

    def _shed_backlog(self) -> None:
        """Drop the oldest unshipped events past the backlog bound."""
        if self.tracer is None:
            return
        buffered = len(self.tracer)
        lag = buffered - self._start + len(self._pending)
        if lag <= self.backlog:
            return
        new_start = buffered - self.backlog
        shed = max(0, new_start - self._start)
        kept = [i for i in self._pending if i >= new_start]
        shed += len(self._pending) - len(kept)
        self._start = max(self._start, new_start)
        self._pending = kept
        self.dropped += shed
        # The collector's view of this worker predates the drop — a
        # plain delta would silently leave a gap, so replace it.
        self._full = True
        if self.metrics is not None:
            self.metrics.counter("telemetry.dropped").inc(shed)

    def ship_once(self) -> bool:
        """One delta: collect, send, advance the cursor on success."""
        with self._lock:
            self._shed_backlog()
            start, pending = self._start, list(self._pending)
            full, seq = self._full, self._seq
        records: "list[dict]" = []
        next_start, still_pending = start, pending
        if self.tracer is not None:
            records, next_start, still_pending = self.tracer.collect_events(
                start, pending, limit=self.max_events
            )
        payload = {
            "worker": self.worker_id,
            "job": self.job,
            "seq": seq,
            "full": full,
            "start": start,
            "events": records,
            "metrics": (
                self.metrics.to_json() if self.metrics is not None else None
            ),
            "offset": self.link.clock_sync.offset,
            "dropped": self.dropped,
        }
        try:
            reply = self.link.request(
                MessageType.TELEMETRY, payload, ack_timeout=self.ack_timeout
            )
        except (RequestTimeout, TransportClosed, RetryableError, RemoteError):
            # Cursor untouched: the next tick re-ships the same delta
            # (same indices — the collector folds idempotently even if
            # this one actually landed and only the reply was lost).
            self.failures += 1
            if self.metrics is not None:
                self.metrics.counter("telemetry.failures").inc()
            return False
        with self._lock:
            self._start = max(self._start, next_start)
            self._pending = [i for i in still_pending if i >= 0]
            self._seq = seq + 1
            self._full = False
            if reply.get("resync"):
                self._full = True
                self._start = 0
                self._pending = []
        self.ships += 1
        self.events_shipped += len(records)
        if self.metrics is not None:
            self.metrics.counter("telemetry.ships").inc()
            self.metrics.counter("telemetry.events_shipped").inc(
                len(records)
            )
        return True
