"""The worker agent: one training replica driven over a reliable link.

A :class:`WorkerAgent` is transport-agnostic — hand it any
:class:`~repro.net.transport.ReliableLink` (in-memory for tests, TCP for
real multi-process jobs) and it runs the full worker half of the
protocol: join-poll until admitted, train in lockstep with the group,
coordinate at boundaries, adopt adjustments (including uploading state
when elected, or departing when scaled in), and upload a final parameter
digest the AM uses to assert replica consistency.

Every replica reconstructs the dataset, model and loader locally from
the :class:`~repro.net.master_service.JobSpec` seed; the only training
state that crosses the wire is the adjustment-time snapshot and the
per-iteration gradients (averaged by the AM's rendezvous).
"""

from __future__ import annotations

import time
import typing

import numpy as np

from ..coordination.messages import MessageType
from ..training.architectures import mlp_architecture
from ..training.dataloader import SerialLoader
from ..training.datasets import make_classification
from ..training.optim import MomentumSGD
from .chunks import ChunkedFetcher, ChunkedUploader
from .master_service import JobSpec
from .transport import ReliableLink
from .wire import params_digest


class JoinRejected(RuntimeError):
    """The agent gave up polling before the AM admitted it."""


class WorkerAgent:
    """One data-parallel replica speaking the worker protocol."""

    def __init__(
        self,
        worker_id: str,
        link: ReliableLink,
        poll_interval: float = 0.05,
        join_timeout: float = 30.0,
        tracer: "typing.Any | None" = None,
        metrics: "typing.Any | None" = None,
    ):
        self.worker_id = worker_id
        self.link = link
        self.poll_interval = poll_interval
        self.join_timeout = join_timeout
        self.tracer = tracer
        self.metrics = metrics
        self.iterations_run = 0
        self.removed = False
        self.joined_at: "int | None" = None
        self.final_digest: "str | None" = None
        self.upload_summary: "dict | None" = None

    # -- protocol steps ---------------------------------------------------------

    def _join(self) -> dict:
        """Poll ``JOIN`` until admitted (each poll is the worker-report)."""
        deadline = time.monotonic() + self.join_timeout
        while True:
            reply = self.link.request(MessageType.JOIN)
            if reply.get("status") in ("start", "join"):
                return reply
            if time.monotonic() >= deadline:
                raise JoinRejected(
                    f"{self.worker_id!r} not admitted within "
                    f"{self.join_timeout}s"
                )
            time.sleep(self.poll_interval)

    def run(self) -> dict:
        """Execute the job to completion; returns a result summary."""
        admission = self._join()
        spec = JobSpec.from_payload(admission["spec"])
        group = list(admission["group"])
        generation = int(admission["generation"])
        start_iteration = int(admission["iteration"])
        self.joined_at = start_iteration

        dataset = make_classification(
            train_size=spec.train_size,
            test_size=spec.test_size,
            input_dim=spec.input_dim,
            num_classes=spec.num_classes,
            seed=spec.seed,
        )
        architecture = mlp_architecture(
            spec.input_dim, spec.hidden_dim, spec.num_classes
        )
        loader = SerialLoader(dataset_size=spec.train_size, seed=spec.seed)
        optimizer = MomentumSGD(spec.base_lr, momentum=spec.momentum)
        state = admission.get("state")
        transfer = admission.get("state_transfer")
        if transfer:
            # The offer names a chunked snapshot; pull it through the
            # replication data plane (round-gated by the AM per the
            # replication plan), verify, and decode.
            fetcher = ChunkedFetcher(
                self.link,
                window=spec.replication_window,
                timeout=spec.allreduce_timeout,
                tracer=self.tracer,
                metrics=self.metrics,
            )
            state = fetcher.fetch(transfer)
        if state:
            # Copy: over the in-memory transport several joiners receive
            # the same snapshot object; each replica needs its own arrays.
            params = {
                name: np.array(array)
                for name, array in state["params"].items()
            }
            optimizer.load_state_dict(state["optimizer"])
            loader.load_state_dict(state["loader"])
        else:
            params = architecture.init(spec.seed)

        iteration = start_iteration
        while iteration < spec.iterations:
            # Boundary coordination — except at the join iteration: the
            # adjustment that admitted this worker commits *at* that
            # boundary, and the survivors' directives drive it.
            at_boundary = iteration % spec.coordination_interval == 0
            if at_boundary and iteration != start_iteration:
                directive = self.link.request(
                    MessageType.COORDINATE, {"iteration": iteration}
                )
                if directive["kind"] == "adjust":
                    if directive.get("upload"):
                        # Stream the snapshot through the chunked data
                        # plane: the blob views the live tensors, which
                        # is safe because training is paused at this
                        # boundary until the upload finishes.
                        uploader = ChunkedUploader(
                            self.link,
                            chunk_bytes=spec.chunk_bytes,
                            window=spec.replication_window,
                            tracer=self.tracer,
                            metrics=self.metrics,
                        )
                        self.upload_summary = uploader.upload(
                            {
                                "params": params,
                                "optimizer": optimizer.state_dict(),
                                "loader": loader.state_dict(),
                            },
                            context={"iteration": iteration},
                        )
                    group = list(directive["group"])
                    generation = int(directive["generation"])
                    if self.worker_id not in group:
                        self.removed = True
                        break

            span = None
            if self.tracer is not None:
                span = self.tracer.begin(
                    "worker.iteration", track=self.worker_id, cat="train",
                    iteration=iteration,
                )
            if spec.iteration_sleep:
                time.sleep(spec.iteration_sleep)
            rank = group.index(self.worker_id)
            shards = loader.next_iteration(
                len(group), spec.per_worker_batch(len(group))
            )
            indices = shards[rank]
            grads = None
            if indices.size:
                _, grads = architecture.loss_and_gradients(
                    params,
                    dataset.train_x[indices],
                    dataset.train_y[indices],
                )
            averaged = self.link.request(
                MessageType.SYNC,
                {
                    "generation": generation,
                    "iteration": iteration,
                    "grads": grads,
                },
                ack_timeout=spec.sync_ack_timeout,
            ).get("grads")
            if averaged:
                optimizer.step(params, averaged)
            if self.tracer is not None:
                self.tracer.end(span)
            self.iterations_run += 1
            iteration += 1

        self.final_digest = params_digest(params)
        self.link.request(
            MessageType.STATE_UPLOAD,
            {
                "final": True,
                "iteration": iteration,
                "digest": self.final_digest,
                "removed": self.removed,
            },
        )
        return {
            "worker": self.worker_id,
            "iterations_run": self.iterations_run,
            "joined_at": self.joined_at,
            "removed": self.removed,
            "digest": self.final_digest,
        }
