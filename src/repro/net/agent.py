"""The worker agent: one training replica driven over a reliable link.

A :class:`WorkerAgent` is transport-agnostic — hand it any
:class:`~repro.net.transport.ReliableLink` (in-memory for tests, TCP for
real multi-process jobs) and it runs the full worker half of the
protocol: join-poll until admitted, train in lockstep with the group,
coordinate at boundaries, adopt adjustments (including uploading state
when elected, or departing when scaled in), and upload a final parameter
digest the AM uses to assert replica consistency.

Every replica reconstructs the dataset, model and loader locally from
the :class:`~repro.net.master_service.JobSpec` seed; the only training
state that crosses the wire is the adjustment-time snapshot and the
per-iteration gradients.

Gradient planes
---------------

Given a :class:`~repro.net.peers.PeerHost`, the agent also serves a
peer endpoint (advertised in its ``JOIN`` report) and averages
gradients over the decentralized ring (:mod:`repro.net.collective`)
once the AM has distributed a ring for the current generation — taking
the AM out of the per-iteration gradient path entirely.  Iterations the
ring cannot serve (pre-activation, mid-adjustment, or after a ring
abort that no peer survived) go through the star ``SYNC`` rendezvous,
whose AM-side reference averaging is bit-identical to the ring's.
"""

from __future__ import annotations

import time
import typing

import numpy as np

from ..coordination.messages import MessageType
from ..training.architectures import mlp_architecture
from ..training.dataloader import SerialLoader
from ..training.datasets import make_classification
from ..training.optim import MomentumSGD
from .chunks import ChunkedFetcher, ChunkedUploader
from .collective import RingDegraded, RingMailbox, RingNode
from .master_service import JobSpec
from .transport import ReliableLink, ServerCore
from .wire import params_digest


class JoinRejected(RuntimeError):
    """The agent gave up polling before the AM admitted it."""


class WorkerAgent:
    """One data-parallel replica speaking the worker protocol."""

    def __init__(
        self,
        worker_id: str,
        link: ReliableLink,
        poll_interval: float = 0.05,
        join_timeout: float = 30.0,
        tracer: "typing.Any | None" = None,
        metrics: "typing.Any | None" = None,
        peer_host: "typing.Any | None" = None,
        peer_fault_plan: "typing.Any | None" = None,
        ring_fail_at: "typing.Collection[int]" = (),
    ):
        self.worker_id = worker_id
        self.link = link
        self.poll_interval = poll_interval
        self.join_timeout = join_timeout
        self.tracer = tracer
        self.metrics = metrics
        self.peer_host = peer_host
        self.peer_fault_plan = peer_fault_plan
        self.ring_fail_at = tuple(ring_fail_at)
        self.iterations_run = 0
        self.removed = False
        self.joined_at: "int | None" = None
        self.final_digest: "str | None" = None
        self.upload_summary: "dict | None" = None
        #: per-plane iteration counts, for tests and reporting.
        self.ring_iterations = 0
        self.star_iterations = 0
        self.ring_repairs = 0
        self.ring_fallbacks = 0
        self.peer_addr: "str | None" = None
        self._ring_node: "RingNode | None" = None
        self._mailbox: "RingMailbox | None" = None

    # -- protocol steps ---------------------------------------------------------

    def _join(self) -> dict:
        """Poll ``JOIN`` until admitted (each poll is the worker-report)."""
        payload = {"peer": self.peer_addr} if self.peer_addr else {}
        deadline = time.monotonic() + self.join_timeout
        while True:
            reply = self.link.request(MessageType.JOIN, payload)
            if reply.get("status") in ("start", "join"):
                return reply
            if time.monotonic() >= deadline:
                raise JoinRejected(
                    f"{self.worker_id!r} not admitted within "
                    f"{self.join_timeout}s"
                )
            time.sleep(self.poll_interval)

    def _serve_peer(self) -> None:
        """Start this worker's peer endpoint before reporting in."""
        if self.peer_host is None:
            return
        self._mailbox = RingMailbox(metrics=self.metrics)
        core = ServerCore(
            self._mailbox.handle,
            node_id=f"{self.worker_id}/peer",
            tracer=self.tracer,
            metrics=self.metrics,
        )
        self.peer_addr = self.peer_host.serve(core, self.worker_id)

    def _build_ring_node(self, spec: JobSpec) -> None:
        if self.peer_host is None or not spec.ring_enabled:
            return

        def connect(addr: str):
            return self.peer_host.connect(
                addr,
                node_id=self.worker_id,
                fault_plan=self.peer_fault_plan,
                ack_timeout=spec.ring_ack_timeout,
                tracer=self.tracer,
                metrics=self.metrics,
            )

        self._ring_node = RingNode(
            self.worker_id,
            self._mailbox,
            connect,
            bucket_bytes=spec.ring_bucket_bytes,
            window=spec.ring_window,
            step_timeout=spec.ring_step_timeout,
            tracer=self.tracer,
            metrics=self.metrics,
            fail_at=self.ring_fail_at,
        )

    def _install_ring(self, ring: "dict | None") -> None:
        if ring and self._ring_node is not None:
            self._ring_node.install(ring)

    def _ring_epoch(self) -> int:
        """The generation of the currently installed ring (-1 if none)."""
        node = self._ring_node
        if node is None or node.ring is None:
            return -1
        return node.ring["epoch"]

    def _star_sync(
        self,
        spec: JobSpec,
        generation: int,
        iteration: int,
        grads: "dict | None",
        ring_fallback: bool = False,
    ) -> "dict | None":
        payload = {
            "generation": generation,
            "iteration": iteration,
            "grads": grads,
        }
        if ring_fallback:
            payload["ring_fallback"] = True
        return self.link.request(
            MessageType.SYNC, payload, ack_timeout=spec.sync_ack_timeout
        ).get("grads")

    def _ring_recover(
        self,
        spec: JobSpec,
        generation: int,
        iteration: int,
        grads: "dict | None",
    ) -> "dict | None":
        """After a ring abort: repair from a completed peer, else star.

        Polls every other member's iteration state.  Any peer reporting
        ``done`` serves its cached (bit-exact) mean; the star retry only
        runs once *no* peer can still complete — peers still ``running``
        are given until the allreduce timeout, so a partial-star
        deadlock (some members at the AM barrier, others finishing the
        ring) cannot happen.
        """
        node = self._ring_node
        peers = [w for w in node.ring["order"] if w != self.worker_id]
        deadline = time.monotonic() + spec.allreduce_timeout
        while True:
            undecided = False
            for peer in peers:
                try:
                    reply = node.fetch_peer_state(peer, generation, iteration)
                except Exception:
                    continue  # unreachable counts as unable to complete
                state = reply.get("state")
                if state == "done" and reply.get("grads") is not None:
                    self.ring_repairs += 1
                    if self.metrics is not None:
                        self.metrics.counter("net.allreduce.repairs").inc()
                    if self.tracer is not None:
                        self.tracer.instant(
                            "net.allreduce.repair", track=self.worker_id,
                            iteration=iteration, peer=peer,
                        )
                    return {
                        name: np.array(array)
                        for name, array in reply["grads"].items()
                    }
                if state not in ("degraded",):
                    undecided = True
            if not undecided or time.monotonic() >= deadline:
                break
            time.sleep(self.poll_interval)
        self.ring_fallbacks += 1
        return self._star_sync(
            spec, generation, iteration, grads, ring_fallback=True
        )

    def run(self) -> dict:
        """Execute the job to completion; returns a result summary."""
        self._serve_peer()
        try:
            return self._run()
        finally:
            if self._ring_node is not None:
                self._ring_node.close()
            if self.peer_host is not None and self.peer_addr is not None:
                self.peer_host.release(self.peer_addr)

    def _run(self) -> dict:
        admission = self._join()
        spec = JobSpec.from_payload(admission["spec"])
        group = list(admission["group"])
        generation = int(admission["generation"])
        start_iteration = int(admission["iteration"])
        self.joined_at = start_iteration
        self._build_ring_node(spec)
        self._install_ring(admission.get("ring"))

        dataset = make_classification(
            train_size=spec.train_size,
            test_size=spec.test_size,
            input_dim=spec.input_dim,
            num_classes=spec.num_classes,
            seed=spec.seed,
        )
        architecture = mlp_architecture(
            spec.input_dim, spec.hidden_dim, spec.num_classes
        )
        loader = SerialLoader(dataset_size=spec.train_size, seed=spec.seed)
        optimizer = MomentumSGD(spec.base_lr, momentum=spec.momentum)
        state = admission.get("state")
        transfer = admission.get("state_transfer")
        if transfer:
            # The offer names a chunked snapshot; pull it through the
            # replication data plane (round-gated by the AM per the
            # replication plan), verify, and decode.
            fetcher = ChunkedFetcher(
                self.link,
                window=spec.replication_window,
                timeout=spec.allreduce_timeout,
                tracer=self.tracer,
                metrics=self.metrics,
            )
            state = fetcher.fetch(transfer)
        if state:
            # Copy: over the in-memory transport several joiners receive
            # the same snapshot object; each replica needs its own arrays.
            params = {
                name: np.array(array)
                for name, array in state["params"].items()
            }
            optimizer.load_state_dict(state["optimizer"])
            loader.load_state_dict(state["loader"])
        else:
            params = architecture.init(spec.seed)

        iteration = start_iteration
        while iteration < spec.iterations:
            # Boundary coordination — except at the join iteration: the
            # adjustment that admitted this worker commits *at* that
            # boundary, and the survivors' directives drive it.
            at_boundary = iteration % spec.coordination_interval == 0
            if at_boundary and iteration != start_iteration:
                directive = self.link.request(
                    MessageType.COORDINATE,
                    {
                        "iteration": iteration,
                        "ring_epoch": self._ring_epoch(),
                    },
                )
                self._install_ring(directive.get("ring"))
                if directive["kind"] == "adjust":
                    if directive.get("upload"):
                        # Stream the snapshot through the chunked data
                        # plane: the blob views the live tensors, which
                        # is safe because training is paused at this
                        # boundary until the upload finishes.
                        uploader = ChunkedUploader(
                            self.link,
                            chunk_bytes=spec.chunk_bytes,
                            window=spec.replication_window,
                            tracer=self.tracer,
                            metrics=self.metrics,
                        )
                        self.upload_summary = uploader.upload(
                            {
                                "params": params,
                                "optimizer": optimizer.state_dict(),
                                "loader": loader.state_dict(),
                            },
                            context={"iteration": iteration},
                        )
                    group = list(directive["group"])
                    generation = int(directive["generation"])
                    if self.worker_id not in group:
                        self.removed = True
                        break

            span = None
            if self.tracer is not None:
                span = self.tracer.begin(
                    "worker.iteration", track=self.worker_id, cat="train",
                    iteration=iteration,
                )
            if spec.iteration_sleep:
                time.sleep(spec.iteration_sleep)
            rank = group.index(self.worker_id)
            shards = loader.next_iteration(
                len(group), spec.per_worker_batch(len(group))
            )
            indices = shards[rank]
            grads = None
            if indices.size:
                _, grads = architecture.loss_and_gradients(
                    params,
                    dataset.train_x[indices],
                    dataset.train_y[indices],
                )
            node = self._ring_node
            # The final iteration always rides the star: it doubles as
            # the job's closing barrier, so no replica can exit while a
            # degraded peer still needs a completer's cached mean.
            if (
                node is not None
                and node.active(generation, iteration)
                and iteration + 1 < spec.iterations
            ):
                # Ring members always contribute concretely — an empty
                # shard becomes explicit zeros so every rank's layout
                # (and the /N divisor) agrees.
                ring_grads = grads or {
                    name: np.zeros_like(array)
                    for name, array in params.items()
                }
                try:
                    averaged = node.allreduce(
                        generation, iteration, ring_grads
                    )
                    self.ring_iterations += 1
                except RingDegraded:
                    averaged = self._ring_recover(
                        spec, generation, iteration, grads
                    )
            else:
                averaged = self._star_sync(
                    spec, generation, iteration, grads
                )
                self.star_iterations += 1
            if averaged:
                optimizer.step(params, averaged)
            if self.tracer is not None:
                self.tracer.end(span)
            self.iterations_run += 1
            iteration += 1

        self.final_digest = params_digest(params)
        self.link.request(
            MessageType.STATE_UPLOAD,
            {
                "final": True,
                "iteration": iteration,
                "digest": self.final_digest,
                "removed": self.removed,
            },
        )
        return {
            "worker": self.worker_id,
            "iterations_run": self.iterations_run,
            "joined_at": self.joined_at,
            "removed": self.removed,
            "digest": self.final_digest,
            "ring_iterations": self.ring_iterations,
            "star_iterations": self.star_iterations,
            "ring_repairs": self.ring_repairs,
            "ring_fallbacks": self.ring_fallbacks,
        }
