"""The worker agent: one training replica driven over a reliable link.

A :class:`WorkerAgent` is transport-agnostic — hand it any
:class:`~repro.net.transport.ReliableLink` (in-memory for tests, TCP for
real multi-process jobs) and it runs the full worker half of the
protocol: join-poll until admitted, train in lockstep with the group,
coordinate at boundaries, adopt adjustments (including uploading state
when elected, or departing when scaled in), and upload a final parameter
digest the AM uses to assert replica consistency.

Every replica reconstructs the dataset, model and loader locally from
the :class:`~repro.net.master_service.JobSpec` seed; the only training
state that crosses the wire is the adjustment-time snapshot and the
per-iteration gradients.

Gradient planes
---------------

Given a :class:`~repro.net.peers.PeerHost`, the agent also serves a
peer endpoint (advertised in its ``JOIN`` report) and averages
gradients over the decentralized ring (:mod:`repro.net.collective`)
once the AM has distributed a ring for the current generation — taking
the AM out of the per-iteration gradient path entirely.  Iterations the
ring cannot serve (pre-activation, mid-adjustment, or after a ring
abort that no peer survived) go through the star ``SYNC`` rendezvous,
whose AM-side reference averaging is bit-identical to the ring's.
"""

from __future__ import annotations

import time
import typing

import numpy as np

from ..coordination.faults import ExponentialBackoff, SilentCrash
from ..coordination.messages import MessageType
from ..training.architectures import mlp_architecture
from ..training.dataloader import SerialLoader
from ..training.datasets import make_classification
from ..training.optim import MomentumSGD, ShardedMomentumSGD
from .chunks import (
    ChunkedFetcher,
    ChunkedUploader,
    ShardedFetcher,
    ShardStore,
    StateBlob,
)
from .collective import RingDegraded, RingMailbox, RingNode
from .master_service import JobSpec
from .telemetry import TelemetryShipper
from .transport import (
    ReliableLink,
    RequestTimeout,
    RetryableError,
    ServerCore,
    TransportClosed,
)
from .wire import params_digest


class JoinRejected(RuntimeError):
    """The agent gave up polling before the AM admitted it."""


class WorkerEvicted(RuntimeError):
    """A successor AM condemned this worker while it was unreachable.

    Raised out of re-enrollment: the lease-based eviction already
    removed this worker from the group (or is about to), so the only
    correct move is to stop training and file a final ``removed``
    report — fighting the eviction would fork the replica set.
    """


class WorkerAgent:
    """One data-parallel replica speaking the worker protocol."""

    def __init__(
        self,
        worker_id: str,
        link: ReliableLink,
        poll_interval: float = 0.05,
        join_timeout: float = 30.0,
        tracer: "typing.Any | None" = None,
        metrics: "typing.Any | None" = None,
        peer_host: "typing.Any | None" = None,
        peer_fault_plan: "typing.Any | None" = None,
        ring_fail_at: "typing.Collection[int]" = (),
        backoff: "ExponentialBackoff | None" = None,
        die_at_iteration: "int | None" = None,
        stale_state: "dict | None" = None,
        shard_die_after: "int | None" = None,
    ):
        self.worker_id = worker_id
        self.link = link
        self.poll_interval = poll_interval
        self.join_timeout = join_timeout
        self.tracer = tracer
        self.metrics = metrics
        self.peer_host = peer_host
        self.peer_fault_plan = peer_fault_plan
        self.ring_fail_at = tuple(ring_fail_at)
        #: spacing between retries when the AM is unreachable or mid-
        #: failover (JOIN refused, requests timing out, fenced replies).
        self.backoff = backoff or ExponentialBackoff(
            base=0.05, factor=2.0, max_delay=1.0
        )
        #: chaos knob: raise :class:`SilentCrash` before computing this
        #: iteration — the thread-level analogue of ``kill -9``.
        self.die_at_iteration = die_at_iteration
        #: delta rejoin: a stale snapshot this worker still holds from a
        #: previous incarnation; shards whose digests match are adopted
        #: locally instead of fetched.
        self.stale_state = stale_state
        #: chaos knob for the sharded plane: hard-exit the process after
        #: serving this many shard chunks — a shard owner dying
        #: mid-fetch, from the joiner's point of view.
        self.shard_die_after = shard_die_after
        self.iterations_run = 0
        self.removed = False
        self.joined_at: "int | None" = None
        self.final_digest: "str | None" = None
        self.upload_summary: "dict | None" = None
        #: per-plane iteration counts, for tests and reporting.
        self.ring_iterations = 0
        self.star_iterations = 0
        self.ring_repairs = 0
        self.ring_fallbacks = 0
        #: failover bookkeeping, for tests and reporting.
        self.join_retries = 0
        self.enrollments = 0
        self.stale_repairs = 0
        self.am_retries = 0
        self.peer_addr: "str | None" = None
        #: live telemetry shipper (built from the admitted JobSpec when
        #: ``spec.telemetry_interval > 0``).
        self.telemetry: "TelemetryShipper | None" = None
        #: the state this replica held when it left the job (scale-in or
        #: completion) — a rejoin harness feeds it back as
        #: ``stale_state`` to exercise the delta path.
        self.final_state: "dict | None" = None
        #: ZeRO mode: the rank's persisted optimizer shard at exit.
        self.zero_shard: "dict | None" = None
        self._ring_node: "RingNode | None" = None
        self._mailbox: "RingMailbox | None" = None
        self._shard_store: "ShardStore | None" = None
        self._joined = False
        self._am_epoch: "int | None" = None
        self._enroll_needed = False
        self._generation = 0
        self._iteration = 0

    # -- protocol steps ---------------------------------------------------------

    def _join(self) -> dict:
        """Poll ``JOIN`` until admitted (each poll is the worker-report).

        An AM that refuses connections or is mid-failover does not fail
        the join: transport losses and fenced replies are retried under
        bounded exponential backoff until ``join_timeout`` passes.
        """
        payload = {"peer": self.peer_addr} if self.peer_addr else {}
        deadline = time.monotonic() + self.join_timeout
        attempt = 0
        while True:
            try:
                reply = self.link.request(MessageType.JOIN, payload)
            except (RequestTimeout, TransportClosed, RetryableError) as exc:
                if isinstance(exc, RetryableError) and exc.reason not in (
                    "am_superseded",
                ):
                    raise
                if time.monotonic() >= deadline:
                    raise JoinRejected(
                        f"{self.worker_id!r} could not reach a live AM "
                        f"within {self.join_timeout}s: {exc}"
                    ) from exc
                self.join_retries += 1
                if self.metrics is not None:
                    self.metrics.counter("worker.join_retries").inc()
                self.backoff.wait(attempt)
                attempt += 1
                continue
            attempt = 0
            if reply.get("status") in ("start", "join"):
                return reply
            if time.monotonic() >= deadline:
                raise JoinRejected(
                    f"{self.worker_id!r} not admitted within "
                    f"{self.join_timeout}s"
                )
            time.sleep(self.poll_interval)

    # -- failover: epoch tracking and re-enrollment -----------------------------

    def _enroll(self) -> None:
        """Introduce this worker to the (possibly new) AM incarnation."""
        reply = self.link.request(MessageType.ENROLL, {
            "generation": self._generation,
            "iteration": self._iteration,
            "ring_epoch": self._ring_epoch(),
            "peer": self.peer_addr,
        })
        self._am_epoch = reply.get("epoch", self._am_epoch)
        self._enroll_needed = False
        self.enrollments += 1
        if self.telemetry is not None:
            # A successor AM starts with an empty fleet collector (it is
            # deliberately not journaled); re-ship the full picture.
            self.telemetry.mark_full()
        if self.metrics is not None:
            self.metrics.counter("worker.enrollments").inc()
        if self.tracer is not None:
            self.tracer.instant(
                "worker.enrolled", track=self.worker_id, cat="failover",
                epoch=self._am_epoch, status=reply.get("status"),
            )
        if reply.get("status") == "evicted":
            raise WorkerEvicted(
                f"{self.worker_id!r} was evicted by AM epoch "
                f"{self._am_epoch} (lease expired while unreachable)"
            )

    def _maybe_enroll(self) -> None:
        """Re-enroll when the AM's fencing epoch moved under us.

        The epoch arrives on the wire handshake (TCP welcome frame /
        the in-memory transport's live ``server_epoch``); a fenced
        reply (``am_superseded``) also forces one regardless of what
        the transport last saw.
        """
        if not self._joined:
            return
        epoch = getattr(self.link.transport, "server_epoch", None)
        if self._am_epoch is None and not self._enroll_needed:
            # Admission predates epoch reporting (legacy harness):
            # adopt what the transport sees without an extra message.
            self._am_epoch = epoch
            return
        if not self._enroll_needed and (
            epoch is None or epoch == self._am_epoch
        ):
            return
        self._enroll()

    def _request(
        self,
        msg_type: MessageType,
        payload: "dict | None" = None,
        ack_timeout: "float | None" = None,
    ) -> dict:
        """One protocol request that rides out an AM failover.

        Transport losses and fenced (``am_superseded``) rejections are
        retried — re-enrolling with the successor first — under bounded
        backoff until ``join_timeout`` passes.  Stale-barrier and
        superseded-generation rejections propagate: their recovery
        belongs to the caller.  :class:`WorkerEvicted` propagates too.
        """
        deadline = time.monotonic() + self.join_timeout
        attempt = 0
        while True:
            try:
                self._maybe_enroll()
                return self.link.request(
                    msg_type, payload, ack_timeout=ack_timeout
                )
            except RetryableError as exc:
                if exc.reason != "am_superseded":
                    raise
                self._enroll_needed = True
            except (RequestTimeout, TransportClosed):
                pass
            if time.monotonic() >= deadline:
                raise RequestTimeout(
                    f"{msg_type.value} from {self.worker_id!r} could not "
                    f"reach a live AM within {self.join_timeout}s"
                )
            self.am_retries += 1
            if self.metrics is not None:
                self.metrics.counter("worker.am_retries").inc()
            self.backoff.wait(attempt)
            attempt += 1

    def _start_telemetry(self, spec: JobSpec, job: "str | None") -> None:
        """Begin live metric/trace shipping if the admitted spec asks.

        The job id learned at admission is stamped into every outgoing
        request's trace context (wire-level correlation) whether or not
        shipping is on; the shipper itself only runs when the AM-side
        ``telemetry_interval`` is positive — the knob rides the join
        reply, so enabling it on the AM enables every worker.
        """
        if job:
            self.link.trace_context["job"] = str(job)
        if spec.telemetry_interval <= 0 or self.telemetry is not None:
            return
        if self.tracer is None and self.metrics is None:
            return
        self.telemetry = TelemetryShipper(
            self.link,
            self.worker_id,
            job=str(job) if job else None,
            tracer=self.tracer,
            metrics=self.metrics,
            interval=spec.telemetry_interval,
            max_events=spec.telemetry_max_events,
            backlog=spec.telemetry_backlog,
        )
        self.telemetry.start()

    def _serve_peer(self) -> None:
        """Start this worker's peer endpoint before reporting in.

        The endpoint multiplexes two planes: ring traffic goes to the
        mailbox, ``STATE_FETCH`` goes to the shard store (this worker
        serving frozen snapshot shards to joiners).
        """
        if self.peer_host is None:
            return
        self._mailbox = RingMailbox(metrics=self.metrics)
        on_serve = None
        if self.shard_die_after is not None:
            limit = int(self.shard_die_after)

            def on_serve(count: int) -> None:
                if count >= limit:
                    # The process-level analogue of a SIGKILL mid-serve:
                    # joiners see the link drop and must re-plan.
                    import os
                    os._exit(9)

        self._shard_store = ShardStore(metrics=self.metrics, on_serve=on_serve)

        def handle(message):
            if message.msg_type is MessageType.STATE_FETCH:
                return self._shard_store.handle_fetch(
                    message.sender, message.payload
                )
            return self._mailbox.handle(message)

        core = ServerCore(
            handle,
            node_id=f"{self.worker_id}/peer",
            tracer=self.tracer,
            metrics=self.metrics,
        )
        self.peer_addr = self.peer_host.serve(core, self.worker_id)

    def _build_ring_node(self, spec: JobSpec) -> None:
        if self.peer_host is None or not spec.ring_enabled:
            return

        def connect(addr: str):
            return self.peer_host.connect(
                addr,
                node_id=self.worker_id,
                fault_plan=self.peer_fault_plan,
                ack_timeout=spec.ring_ack_timeout,
                tracer=self.tracer,
                metrics=self.metrics,
            )

        self._ring_node = RingNode(
            self.worker_id,
            self._mailbox,
            connect,
            bucket_bytes=spec.ring_bucket_bytes,
            window=spec.ring_window,
            step_timeout=spec.ring_step_timeout,
            tracer=self.tracer,
            metrics=self.metrics,
            fail_at=self.ring_fail_at,
            codec=spec.ring_codec,
        )

    def _install_ring(self, ring: "dict | None") -> None:
        if ring and self._ring_node is not None:
            self._ring_node.install(ring)

    def _ring_epoch(self) -> int:
        """The generation of the currently installed ring (-1 if none)."""
        node = self._ring_node
        if node is None or node.ring is None:
            return -1
        return node.ring["epoch"]

    def _star_sync(
        self,
        spec: JobSpec,
        generation: int,
        iteration: int,
        grads: "dict | None",
        ring_fallback: bool = False,
    ) -> "dict | None":
        payload = {
            "generation": generation,
            "iteration": iteration,
            "grads": grads,
        }
        if ring_fallback:
            payload["ring_fallback"] = True
        try:
            mean = self._request(
                MessageType.SYNC, payload, ack_timeout=spec.sync_ack_timeout
            ).get("grads")
        except RetryableError as exc:
            if exc.reason != "stale_barrier":
                raise
            return self._stale_repair(spec, generation, iteration)
        if mean is not None and self._mailbox is not None:
            # Cache a private copy so a peer stranded by an AM failover
            # (its reply for this very barrier died with the old AM)
            # can repair the identical mean over the peer mesh.
            self._mailbox.record_mean(generation, iteration, {
                name: np.array(array) for name, array in mean.items()
            })
        return mean

    def _stale_repair(
        self, spec: JobSpec, generation: int, iteration: int
    ) -> "dict | None":
        """Recover a mean whose barrier died with a failed AM.

        The group completed this barrier before the failover (that is
        what "stale" asserts), so every peer holds the bit-exact mean
        in its mailbox cache — and peers cannot advance more than one
        iteration (the next barrier needs this worker), so the cache
        cannot have been overwritten.  Star-only jobs without a peer
        mesh have nothing to repair from; that is a documented
        limitation of the failover path.
        """
        node = self._ring_node
        if node is None or node.ring is None:
            raise RequestTimeout(
                f"sync ({generation}, {iteration}) is stale and "
                f"{self.worker_id!r} has no peer mesh to repair from"
            )
        peers = [w for w in node.ring["order"] if w != self.worker_id]
        deadline = time.monotonic() + spec.allreduce_timeout
        while True:
            for peer in peers:
                try:
                    reply = node.fetch_peer_state(peer, generation, iteration)
                except Exception:
                    continue
                if reply.get("state") == "done" and reply.get("grads"):
                    self.stale_repairs += 1
                    if self.metrics is not None:
                        self.metrics.counter("worker.stale_repairs").inc()
                    if self.tracer is not None:
                        self.tracer.instant(
                            "worker.stale_repair", track=self.worker_id,
                            cat="failover", iteration=iteration, peer=peer,
                        )
                    return {
                        name: np.array(array)
                        for name, array in reply["grads"].items()
                    }
            if time.monotonic() >= deadline:
                raise RequestTimeout(
                    f"no peer served the mean for stale sync "
                    f"({generation}, {iteration})"
                )
            time.sleep(self.poll_interval)

    def _ring_recover(
        self,
        spec: JobSpec,
        generation: int,
        iteration: int,
        grads: "dict | None",
    ) -> "dict | None":
        """After a ring abort: repair from a completed peer, else star.

        Polls every other member's iteration state.  Any peer reporting
        ``done`` serves its cached (bit-exact) mean; the star retry only
        runs once *no* peer can still complete — peers still ``running``
        are given until the allreduce timeout, so a partial-star
        deadlock (some members at the AM barrier, others finishing the
        ring) cannot happen.

        A peer that never *began* this iteration's ring (``unknown``)
        is decisive, not undecided: under lockstep it is either headed
        to the star barrier itself (where it is waiting for us — so
        waiting for it here would deadlock against the barrier timeout)
        or still behind, in which case it will repair from the star
        mean we cache in the mailbox.  Waiting only helps for peers
        mid-ring.
        """
        node = self._ring_node
        peers = [w for w in node.ring["order"] if w != self.worker_id]
        deadline = time.monotonic() + spec.allreduce_timeout
        while True:
            undecided = False
            for peer in peers:
                try:
                    reply = node.fetch_peer_state(peer, generation, iteration)
                except Exception:
                    continue  # unreachable counts as unable to complete
                state = reply.get("state")
                if state == "done" and reply.get("grads") is not None:
                    self.ring_repairs += 1
                    if self.metrics is not None:
                        self.metrics.counter("net.allreduce.repairs").inc()
                    if self.tracer is not None:
                        self.tracer.instant(
                            "net.allreduce.repair", track=self.worker_id,
                            iteration=iteration, peer=peer,
                        )
                    return {
                        name: np.array(array)
                        for name, array in reply["grads"].items()
                    }
                if state == "running":
                    undecided = True
            if not undecided or time.monotonic() >= deadline:
                break
            time.sleep(self.poll_interval)
        self.ring_fallbacks += 1
        return self._star_sync(
            spec, generation, iteration, grads, ring_fallback=True
        )

    def run(self) -> dict:
        """Execute the job to completion; returns a result summary."""
        self._serve_peer()
        try:
            return self._run()
        finally:
            if self.telemetry is not None:
                # Stop the shipper thread without flushing: the clean
                # exit path already flushed, and a crash (SilentCrash)
                # must not ship — a killed process could not either.
                self.telemetry.stop()
            if self._ring_node is not None:
                self._ring_node.close()
            if self.peer_host is not None and self.peer_addr is not None:
                self.peer_host.release(self.peer_addr)

    def _run(self) -> dict:
        admission = self._join()
        spec = JobSpec.from_payload(admission["spec"])
        group = list(admission["group"])
        generation = int(admission["generation"])
        start_iteration = int(admission["iteration"])
        self.joined_at = start_iteration
        self._joined = True
        self._am_epoch = admission.get("epoch")
        self._generation = generation
        self._iteration = start_iteration
        self._start_telemetry(spec, admission.get("job"))
        self._build_ring_node(spec)
        self._install_ring(admission.get("ring"))

        dataset = make_classification(
            train_size=spec.train_size,
            test_size=spec.test_size,
            input_dim=spec.input_dim,
            num_classes=spec.num_classes,
            seed=spec.seed,
        )
        architecture = mlp_architecture(
            spec.input_dim, spec.hidden_dim, spec.num_classes
        )
        loader = SerialLoader(dataset_size=spec.train_size, seed=spec.seed)
        if spec.zero_optimizer:
            optimizer = ShardedMomentumSGD(
                spec.base_lr, momentum=spec.momentum,
                rank=group.index(self.worker_id) if self.worker_id in group
                else 0,
                world=max(1, len(group)),
            )
        else:
            optimizer = MomentumSGD(spec.base_lr, momentum=spec.momentum)
        state = admission.get("state")
        transfer = admission.get("state_transfer")
        if transfer and transfer.get("shards"):
            # Sharded offer: fan in from every shard owner concurrently
            # over the peer mesh (the AM only gates rounds and backstops
            # dead owners), adopting matching shards from any stale
            # local snapshot first.
            connect = None
            if self.peer_host is not None:
                def connect(addr):
                    return self.peer_host.connect(
                        addr,
                        node_id=self.worker_id,
                        fault_plan=self.peer_fault_plan,
                        ack_timeout=spec.ring_ack_timeout,
                        tracer=self.tracer,
                        metrics=self.metrics,
                    )
            fetcher = ShardedFetcher(
                self.link,
                connect=connect,
                window=spec.replication_window,
                timeout=spec.allreduce_timeout,
                tracer=self.tracer,
                metrics=self.metrics,
            )
            state = fetcher.fetch(transfer, stale_state=self.stale_state)
        elif transfer:
            # The offer names a chunked snapshot; pull it through the
            # replication data plane (round-gated by the AM per the
            # replication plan), verify, and decode.
            fetcher = ChunkedFetcher(
                self.link,
                window=spec.replication_window,
                timeout=spec.allreduce_timeout,
                tracer=self.tracer,
                metrics=self.metrics,
            )
            state = fetcher.fetch(transfer)
        if state:
            # Copy: over the in-memory transport several joiners receive
            # the same snapshot object; each replica needs its own arrays.
            params = {
                name: np.array(array)
                for name, array in state["params"].items()
            }
            optimizer.load_state_dict(state["optimizer"])
            loader.load_state_dict(state["loader"])
        else:
            params = architecture.init(spec.seed)

        try:
            if self._train_loop(
                spec, group, generation, start_iteration,
                dataset, architecture, loader, optimizer, params,
            ):
                self.removed = True  # voluntary scale-in departure
        except WorkerEvicted:
            # A successor AM condemned us while we were unreachable;
            # stop cleanly and file a removed final report.
            self.removed = True
            if self.metrics is not None:
                self.metrics.counter("worker.evicted").inc()
            if self.tracer is not None:
                self.tracer.instant(
                    "worker.evicted", track=self.worker_id, cat="failover",
                    iteration=self._iteration,
                )

        # Keep the departing replica's state: a rejoin harness hands it
        # back as ``stale_state`` so the delta path can skip unchanged
        # shards.  References, not copies — nothing mutates them after
        # the loop.
        self.final_state = {
            "params": params,
            "optimizer": optimizer.state_dict(),
            "loader": loader.state_dict(),
        }
        if isinstance(optimizer, ShardedMomentumSGD):
            self.zero_shard = optimizer.shard_state_dict()
            if self.metrics is not None:
                self.metrics.counter("training.zero.shard_bytes").inc(
                    int(self.zero_shard["slice"].nbytes)
                )

        if self.telemetry is not None:
            # Clean exit: drain the trace/metric backlog before the
            # final report so the AM's fleet view includes our last
            # iterations (the final spans above are closed by now).
            self.telemetry.flush()
        self.final_digest = params_digest(params)
        self._request(
            MessageType.STATE_UPLOAD,
            {
                "final": True,
                "iteration": self._iteration,
                "digest": self.final_digest,
                "removed": self.removed,
            },
        )
        return {
            "worker": self.worker_id,
            "iterations_run": self.iterations_run,
            "joined_at": self.joined_at,
            "removed": self.removed,
            "digest": self.final_digest,
            "ring_iterations": self.ring_iterations,
            "star_iterations": self.star_iterations,
            "ring_repairs": self.ring_repairs,
            "ring_fallbacks": self.ring_fallbacks,
        }

    def _train_loop(
        self,
        spec: JobSpec,
        group: "list[str]",
        generation: int,
        start_iteration: int,
        dataset,
        architecture,
        loader,
        optimizer,
        params: dict,
    ) -> bool:
        """The lockstep training loop; returns True if scaled out."""
        iteration = start_iteration
        while iteration < spec.iterations:
            self._iteration = iteration
            # Boundary coordination — except at the join iteration: the
            # adjustment that admitted this worker commits *at* that
            # boundary, and the survivors' directives drive it.
            at_boundary = iteration % spec.coordination_interval == 0
            if at_boundary and iteration != start_iteration:
                directive = self._request(
                    MessageType.COORDINATE,
                    {
                        "iteration": iteration,
                        "ring_epoch": self._ring_epoch(),
                    },
                )
                self._install_ring(directive.get("ring"))
                if directive["kind"] == "adjust":
                    shard_spec = directive.get("shards")
                    if (
                        shard_spec
                        and self._shard_store is not None
                        and self.worker_id in shard_spec.get("owners", ())
                    ):
                        # Elected shard owner: freeze the (bit-identical)
                        # snapshot blob under the plan's deterministic
                        # transfer id and serve it from the peer thread
                        # while training continues.  Safe to encode here:
                        # training is paused at this boundary, and
                        # ``register`` copies the bytes out of the views.
                        blob = StateBlob.encode(
                            {
                                "params": params,
                                "optimizer": optimizer.state_dict(),
                                "loader": loader.state_dict(),
                            },
                            chunk_bytes=spec.chunk_bytes,
                        )
                        self._shard_store.register(
                            shard_spec["transfer_id"], blob
                        )
                    if directive.get("upload"):
                        # Stream the snapshot through the chunked data
                        # plane: the blob views the live tensors, which
                        # is safe because training is paused at this
                        # boundary until the upload finishes.
                        uploader = ChunkedUploader(
                            self.link,
                            chunk_bytes=spec.chunk_bytes,
                            window=spec.replication_window,
                            tracer=self.tracer,
                            metrics=self.metrics,
                        )
                        self.upload_summary = uploader.upload(
                            {
                                "params": params,
                                "optimizer": optimizer.state_dict(),
                                "loader": loader.state_dict(),
                            },
                            transfer_id=(
                                shard_spec["transfer_id"]
                                if shard_spec else None
                            ),
                            context={"iteration": iteration},
                        )
                    group[:] = directive["group"]
                    generation = int(directive["generation"])
                    self._generation = generation
                    if self.worker_id not in group:
                        return True
                    if isinstance(optimizer, ShardedMomentumSGD):
                        # The worker count changed: re-slice the flat
                        # velocity space along the new world size.
                        optimizer.reshard(
                            group.index(self.worker_id), len(group)
                        )

            if (
                self.die_at_iteration is not None
                and iteration >= self.die_at_iteration
            ):
                raise SilentCrash(
                    f"{self.worker_id!r} killed at iteration {iteration}"
                )
            span = None
            if self.tracer is not None:
                span = self.tracer.begin(
                    "worker.iteration", track=self.worker_id, cat="train",
                    iteration=iteration,
                )
            if spec.iteration_sleep:
                time.sleep(spec.iteration_sleep)
            rank = group.index(self.worker_id)
            shards = loader.next_iteration(
                len(group), spec.per_worker_batch(len(group))
            )
            indices = shards[rank]
            grads = None
            if indices.size:
                _, grads = architecture.loss_and_gradients(
                    params,
                    dataset.train_x[indices],
                    dataset.train_y[indices],
                )
            node = self._ring_node
            # The final iteration always rides the star: it doubles as
            # the job's closing barrier, so no replica can exit while a
            # degraded peer still needs a completer's cached mean.
            if (
                node is not None
                and node.active(generation, iteration)
                and iteration + 1 < spec.iterations
            ):
                # Ring members always contribute concretely — an empty
                # shard becomes explicit zeros so every rank's layout
                # (and the /N divisor) agrees.
                ring_grads = grads or {
                    name: np.zeros_like(array)
                    for name, array in params.items()
                }
                try:
                    averaged = node.allreduce(
                        generation, iteration, ring_grads
                    )
                    self.ring_iterations += 1
                except RingDegraded:
                    averaged = self._ring_recover(
                        spec, generation, iteration, grads
                    )
            else:
                averaged = self._star_sync(
                    spec, generation, iteration, grads
                )
                self.star_iterations += 1
            if averaged:
                optimizer.step(params, averaged)
            if self.tracer is not None:
                self.tracer.end(span)
            self.iterations_run += 1
            iteration += 1
            self._iteration = iteration
        return False
