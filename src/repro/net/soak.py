"""Goodput-SLO chaos soak for the networked control plane.

A :class:`ChaosSoak` runs one elastic job in-process (workers as
threads, AM per transport seam) while a deterministic
:class:`SoakSchedule` injects the failures this PR's failover machinery
exists for:

* **worker kills** — a thread raises
  :class:`~repro.coordination.faults.SilentCrash` mid-iteration and its
  link is torn down, so only lease expiry can notice;
* **an AM kill** — the primary is :meth:`abandoned
  <repro.net.master_service.NetworkedApplicationMaster.abandon>` and a
  successor is rebuilt from the journal
  (:meth:`~repro.net.master_service.NetworkedApplicationMaster.from_journal`),
  taking over via transport redirect (memory) or a pre-advertised
  standby endpoint (TCP);
* **connection resets / message drops** — the existing
  :class:`~repro.coordination.faults.FaultPlan` machinery.

The soak's verdict is a :class:`GoodputReport` derived from the Chrome
trace (busy ``worker.iteration`` span time over wall time) and the
:class:`~repro.observability.MetricRegistry` (detection latency and
MTTR histograms fed by the lease evictor), with
:meth:`GoodputReport.assert_slo` turning the floors into a hard
pass/fail.  The same schedule replays identically over the in-memory
transport and loopback TCP — recovery *counts* must match even though
timings differ.
"""

from __future__ import annotations

import threading
import time
import typing

from ..coordination.faults import FaultPlan, SilentCrash
from ..coordination.messages import MessageType
from ..observability import MetricRegistry, Tracer
from .agent import WorkerAgent
from .master_service import JobSpec, NetworkedApplicationMaster
from .peers import MemoryPeerHost, TcpPeerHost
from .transport import (
    RequestTimeout,
    RetryableError,
    TransportClosed,
    memory_link,
)

#: trace instants counted by :func:`derive_report` (all emitted by this
#: PR's failover paths; see docs/OBSERVABILITY.md).
_INSTANT_COUNTS = {
    "am.failover": "failovers",
    "worker.condemned": "condemned",
    "am.eviction_minted": "evictions_minted",
    "worker.enrolled": "enrollments",
    "worker.stale_repair": "stale_repairs",
    "net.transfer_restart": "transfer_restarts",
    "worker.evicted": "workers_evicted",
    "am.plan_aborted": "plans_aborted",
}


class SLOViolation(AssertionError):
    """The soak finished but missed its goodput/MTTR service levels."""


class SoakSchedule:
    """One soak's complete, deterministic failure schedule.

    Everything is keyed by *iteration* (the job's logical clock), never
    by wall time, which is what makes the schedule replayable across
    transports and machines.
    """

    def __init__(
        self,
        worker_kills: "typing.Mapping[str, int] | None" = None,
        am_kill_iteration: "int | None" = None,
        connection_resets: "typing.Mapping[str, typing.Sequence[int]] | None" = None,
        drop_every: "typing.Mapping[str, int] | None" = None,
    ):
        #: worker id -> iteration at which its thread silently dies.
        self.worker_kills = dict(worker_kills or {})
        #: AM is killed once training reaches this iteration (None: never).
        self.am_kill_iteration = am_kill_iteration
        #: worker id -> message indices at which its connection resets.
        self.connection_resets = {
            w: tuple(r) for w, r in (connection_resets or {}).items()
        }
        #: worker id -> drop each n-th control-plane message.
        self.drop_every = dict(drop_every or {})

    def fault_plan(self, worker_id: str) -> "FaultPlan | None":
        resets = self.connection_resets.get(worker_id, ())
        drops = self.drop_every.get(worker_id, 0)
        if not resets and not drops:
            return None
        return FaultPlan(connection_resets=tuple(resets), drop_every=drops)

    def describe(self) -> dict:
        return {
            "worker_kills": dict(self.worker_kills),
            "am_kill_iteration": self.am_kill_iteration,
            "connection_resets": {
                w: list(r) for w, r in self.connection_resets.items()
            },
            "drop_every": dict(self.drop_every),
        }


class GoodputReport:
    """What the soak measured, plus the SLO verdict machinery."""

    def __init__(self, **fields):
        self.goodput: float = fields.pop("goodput", 0.0)
        self.busy_seconds: float = fields.pop("busy_seconds", 0.0)
        self.wall_seconds: float = fields.pop("wall_seconds", 0.0)
        self.iterations: int = fields.pop("iterations", 0)
        self.workers: int = fields.pop("workers", 0)
        self.recoveries: int = fields.pop("recoveries", 0)
        self.mean_mttr: "float | None" = fields.pop("mean_mttr", None)
        self.max_mttr: "float | None" = fields.pop("max_mttr", None)
        self.mean_detection: "float | None" = fields.pop(
            "mean_detection", None
        )
        self.counts: "dict[str, int]" = fields.pop("counts", {})
        self.extra = fields

    def assert_slo(
        self, goodput_floor: float = 0.3, mttr_ceiling: float = 10.0
    ) -> "GoodputReport":
        """Raise :class:`SLOViolation` unless the floors hold; else self."""
        problems = []
        if self.goodput < goodput_floor:
            problems.append(
                f"goodput {self.goodput:.3f} below floor {goodput_floor:.3f}"
            )
        if self.max_mttr is not None and self.max_mttr > mttr_ceiling:
            problems.append(
                f"max MTTR {self.max_mttr:.2f}s above ceiling "
                f"{mttr_ceiling:.2f}s"
            )
        if problems:
            raise SLOViolation("; ".join(problems))
        return self

    def rows(self) -> "list[tuple[str, str]]":
        def fmt(value, unit=""):
            if value is None:
                return "-"
            if isinstance(value, float):
                return f"{value:.3f}{unit}"
            return f"{value}{unit}"

        rows = [
            ("goodput", fmt(self.goodput)),
            ("busy", fmt(self.busy_seconds, "s")),
            ("wall", fmt(self.wall_seconds, "s")),
            ("iterations", fmt(self.iterations)),
            ("workers", fmt(self.workers)),
            ("recoveries", fmt(self.recoveries)),
            ("mean MTTR", fmt(self.mean_mttr, "s")),
            ("max MTTR", fmt(self.max_mttr, "s")),
            ("mean detection", fmt(self.mean_detection, "s")),
        ]
        for name in sorted(self.counts):
            rows.append((name, fmt(self.counts[name])))
        return rows

    def format(self) -> str:
        rows = self.rows()
        width = max(len(name) for name, _ in rows)
        lines = [f"{name:<{width}}  {value}" for name, value in rows]
        return "\n".join(lines)


def derive_report(
    events: "typing.Sequence[dict]",
    metrics: "dict | None" = None,
) -> GoodputReport:
    """Compute goodput/MTTR from Chrome-trace events (+ a metrics snapshot).

    Goodput is the fraction of the job's wall-clock each participating
    worker spent inside ``worker.iteration`` spans, averaged over the
    workers that emitted any — time lost to barriers, failover backoff,
    re-enrollment, and repair shows up directly as the gap to 1.0.
    Works on a live tracer's ``to_events()`` or a trace file reloaded
    with :func:`repro.observability.load_trace_events`.
    """
    track_names = {
        e["tid"]: e["args"]["name"]
        for e in events
        if e.get("ph") == "M" and e.get("name") == "thread_name"
    }
    busy_us: "dict[str, float]" = {}
    counts = {label: 0 for label in _INSTANT_COUNTS.values()}
    iterations = 0
    t_lo: "float | None" = None
    t_hi: "float | None" = None
    for event in events:
        phase = event.get("ph")
        if phase not in ("X", "i"):
            continue
        ts = float(event.get("ts", 0.0))
        end = ts + float(event.get("dur", 0.0))
        t_lo = ts if t_lo is None else min(t_lo, ts)
        t_hi = end if t_hi is None else max(t_hi, end)
        name = event.get("name")
        if phase == "X" and name == "worker.iteration":
            track = track_names.get(event.get("tid"), str(event.get("tid")))
            busy_us[track] = busy_us.get(track, 0.0) + float(
                event.get("dur", 0.0)
            )
            iterations += 1
        elif phase == "i" and name in _INSTANT_COUNTS:
            counts[_INSTANT_COUNTS[name]] += 1
    wall = (t_hi - t_lo) / 1e6 if t_lo is not None else 0.0
    busy = sum(busy_us.values()) / 1e6
    workers = len(busy_us)
    goodput = busy / (wall * workers) if wall > 0 and workers else 0.0

    recoveries = counts.get("condemned", 0)
    mean_mttr = max_mttr = mean_detection = None
    if metrics:
        mttr = metrics.get("failure.mttr_seconds") or {}
        detection = metrics.get("failure.detection_latency_seconds") or {}
        if mttr.get("count"):
            recoveries = int(mttr["count"])
            mean_mttr = mttr.get("mean")
            max_mttr = mttr.get("max")
        if detection.get("count"):
            mean_detection = detection.get("mean")
    return GoodputReport(
        goodput=goodput,
        busy_seconds=busy,
        wall_seconds=wall,
        iterations=iterations,
        workers=workers,
        recoveries=recoveries,
        mean_mttr=mean_mttr,
        max_mttr=max_mttr,
        mean_detection=mean_detection,
        counts=counts,
    )


class ChaosSoak:
    """One elastic job soaked under a deterministic fault schedule."""

    def __init__(
        self,
        transport: str,
        spec: JobSpec,
        workers: "typing.Sequence[str]",
        schedule: "SoakSchedule | None" = None,
        tracer: "Tracer | None" = None,
        metrics: "MetricRegistry | None" = None,
        join_timeout: float = 30.0,
        timeout: float = 120.0,
    ):
        if transport not in ("memory", "tcp"):
            raise ValueError(f"unknown transport {transport!r}")
        self.transport = transport
        self.spec = spec
        self.workers = list(workers)
        self.schedule = schedule or SoakSchedule()
        self.tracer = tracer or Tracer(process=f"chaos-soak-{transport}")
        self.metrics = metrics or MetricRegistry()
        self.join_timeout = join_timeout
        self.timeout = timeout
        self.results: "dict[str, dict]" = {}
        self.errors: "dict[str, BaseException]" = {}
        self.killed: "list[str]" = []
        self.failed_over = False
        self.master: "NetworkedApplicationMaster | None" = None
        self.report: "GoodputReport | None" = None
        self._threads: "dict[str, threading.Thread]" = {}
        self._memory_transports: "dict[str, typing.Any]" = {}
        self._endpoints: "list[tuple[str, int]] | None" = None
        self._standby = None  # (socket, port) reserved for the successor
        self._mesh = None

    # -- wiring -----------------------------------------------------------------

    def _make_link(self, node_id, fault_plan=None, ack_timeout=0.5):
        if self.transport == "tcp":
            from .tcp import tcp_link

            link, transport = tcp_link(
                self._endpoints[0][0], self._endpoints[0][1], node_id,
                fault_plan=fault_plan, ack_timeout=ack_timeout,
                heartbeat_interval=0.2, tracer=self.tracer,
                metrics=self.metrics, endpoints=self._endpoints,
                connect_attempts=10,
            )
            return link
        link = memory_link(
            self.master.core, node_id, fault_plan=fault_plan,
            ack_timeout=ack_timeout, tracer=self.tracer,
            metrics=self.metrics, heartbeat_interval=0.2,
        )
        self._memory_transports[node_id] = link.transport
        return link

    def _start_worker(self, worker_id: str) -> None:
        def run():
            link = self._make_link(
                worker_id, fault_plan=self.schedule.fault_plan(worker_id)
            )
            agent = WorkerAgent(
                worker_id, link, poll_interval=0.02,
                join_timeout=self.join_timeout, tracer=self.tracer,
                metrics=self.metrics, peer_host=self._mesh,
                die_at_iteration=self.schedule.worker_kills.get(worker_id),
            )
            try:
                self.results[worker_id] = agent.run()
            except SilentCrash:
                self.killed.append(worker_id)
            except BaseException as exc:  # surfaced in the report/tests
                self.errors[worker_id] = exc
            finally:
                # The crashed process's sockets die with it: closing the
                # link here stops the TCP heartbeat thread, so nothing
                # keeps feeding the dead worker's lease.
                link.close()

        thread = threading.Thread(
            target=run, name=f"soak-{worker_id}", daemon=True
        )
        self._threads[worker_id] = thread
        thread.start()

    # -- failover ---------------------------------------------------------------

    def _fail_over(self) -> None:
        """Kill the primary AM and promote a journal-replayed successor."""
        old = self.master
        if self.tracer is not None:
            self.tracer.instant(
                "soak.am_kill", track="soak", cat="chaos", epoch=old.epoch,
            )
        old.abandon()
        successor = NetworkedApplicationMaster.from_journal(
            old.journal, tracer=self.tracer, metrics=self.metrics,
        )
        if self.transport == "tcp":
            sock, port = self._standby
            sock.close()
            host = self._endpoints[0][0]
            deadline = time.monotonic() + 5.0
            while True:
                try:
                    successor.serve_tcp(host, port)
                    break
                except OSError:
                    if time.monotonic() >= deadline:
                        raise
                    time.sleep(0.05)
        else:
            for transport in list(self._memory_transports.values()):
                transport.redirect(successor.core)
        self.master = successor
        self.failed_over = True

    # -- the soak ---------------------------------------------------------------

    def run(self) -> GoodputReport:
        """Run the job under the schedule; returns the goodput report."""
        spec = self.spec
        self.master = NetworkedApplicationMaster(
            spec, self.workers, tracer=self.tracer, metrics=self.metrics,
        )
        if self.transport == "tcp":
            from .tcp import reserve_port

            server = self.master.serve_tcp()
            self._standby = reserve_port(server.host)
            self._endpoints = [
                (server.host, server.port),
                (server.host, self._standby[1]),
            ]
            self._mesh = TcpPeerHost()
        else:
            self._mesh = MemoryPeerHost()
        try:
            return self._drive()
        finally:
            if self._standby is not None:
                try:
                    self._standby[0].close()
                except OSError:
                    pass
            if self._mesh is not None:
                self._mesh.close()
            self.master.close()

    def _drive(self) -> GoodputReport:
        for worker_id in self.workers:
            self._start_worker(worker_id)
        driver = self._make_link("soak-driver", ack_timeout=1.0)
        kill_at = self.schedule.am_kill_iteration
        deadline = time.monotonic() + self.timeout
        try:
            while any(t.is_alive() for t in self._threads.values()):
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"soak did not finish within {self.timeout}s "
                        f"(results={sorted(self.results)}, "
                        f"errors={self.errors})"
                    )
                status = self._status(driver)
                if (
                    kill_at is not None
                    and not self.failed_over
                    and status is not None
                    and status.get("iteration", 0) >= kill_at
                ):
                    self._fail_over()
                time.sleep(0.05)
        finally:
            driver.close()
        for thread in self._threads.values():
            thread.join(timeout=5.0)
        if self.errors:
            worker, error = sorted(self.errors.items())[0]
            raise RuntimeError(
                f"soak worker {worker!r} failed: {error!r}"
            ) from error
        self.report = derive_report(
            self.tracer.to_events(), self.metrics.snapshot()
        )
        self.metrics.gauge("goodput.ratio").set(self.report.goodput)
        self.metrics.gauge("goodput.busy_seconds").set(
            self.report.busy_seconds
        )
        self.metrics.gauge("goodput.wall_seconds").set(
            self.report.wall_seconds
        )
        return self.report

    def _status(self, driver) -> "dict | None":
        """One best-effort STATUS poll (None while the AM is down)."""
        try:
            return driver.request(MessageType.STATUS, ack_timeout=0.5)
        except (RequestTimeout, TransportClosed, RetryableError):
            return None
