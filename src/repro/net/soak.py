"""Goodput-SLO chaos soak for the networked control plane.

A :class:`ChaosSoak` runs one elastic job in-process (workers as
threads, AM per transport seam) while a deterministic
:class:`SoakSchedule` injects the failures this PR's failover machinery
exists for:

* **worker kills** — a thread raises
  :class:`~repro.coordination.faults.SilentCrash` mid-iteration and its
  link is torn down, so only lease expiry can notice;
* **an AM kill** — the primary is :meth:`abandoned
  <repro.net.master_service.NetworkedApplicationMaster.abandon>` and a
  successor is rebuilt from the journal
  (:meth:`~repro.net.master_service.NetworkedApplicationMaster.from_journal`),
  taking over via transport redirect (memory) or a pre-advertised
  standby endpoint (TCP);
* **connection resets / message drops** — the existing
  :class:`~repro.coordination.faults.FaultPlan` machinery.

The soak's verdict is a :class:`GoodputReport` derived from the Chrome
trace (busy ``worker.iteration`` span time over wall time) and the
:class:`~repro.observability.MetricRegistry` (detection latency and
MTTR histograms fed by the lease evictor), with
:meth:`GoodputReport.assert_slo` turning the floors into a hard
pass/fail.  The same schedule replays identically over the in-memory
transport and loopback TCP — recovery *counts* must match even though
timings differ.
"""

from __future__ import annotations

import threading
import time
import typing

from ..coordination.faults import FaultPlan, SilentCrash
from ..coordination.messages import MessageType
from ..observability import MetricRegistry, Tracer

# GoodputReport, derive_report and SLOViolation moved to
# repro.observability.fleet (they are fleet accounting, not soak
# machinery); re-exported here so existing imports keep working.
from ..observability.fleet import (  # noqa: F401  (re-exports)
    _INSTANT_COUNTS,
    GoodputReport,
    SLOViolation,
    derive_report,
)
from .agent import WorkerAgent
from .master_service import JobSpec, NetworkedApplicationMaster
from .peers import MemoryPeerHost, TcpPeerHost
from .transport import (
    RequestTimeout,
    RetryableError,
    TransportClosed,
    memory_link,
)


class SoakSchedule:
    """One soak's complete, deterministic failure schedule.

    Everything is keyed by *iteration* (the job's logical clock), never
    by wall time, which is what makes the schedule replayable across
    transports and machines.
    """

    def __init__(
        self,
        worker_kills: "typing.Mapping[str, int] | None" = None,
        am_kill_iteration: "int | None" = None,
        connection_resets: "typing.Mapping[str, typing.Sequence[int]] | None" = None,
        drop_every: "typing.Mapping[str, int] | None" = None,
    ):
        #: worker id -> iteration at which its thread silently dies.
        self.worker_kills = dict(worker_kills or {})
        #: AM is killed once training reaches this iteration (None: never).
        self.am_kill_iteration = am_kill_iteration
        #: worker id -> message indices at which its connection resets.
        self.connection_resets = {
            w: tuple(r) for w, r in (connection_resets or {}).items()
        }
        #: worker id -> drop each n-th control-plane message.
        self.drop_every = dict(drop_every or {})

    def fault_plan(self, worker_id: str) -> "FaultPlan | None":
        resets = self.connection_resets.get(worker_id, ())
        drops = self.drop_every.get(worker_id, 0)
        if not resets and not drops:
            return None
        return FaultPlan(connection_resets=tuple(resets), drop_every=drops)

    def describe(self) -> dict:
        return {
            "worker_kills": dict(self.worker_kills),
            "am_kill_iteration": self.am_kill_iteration,
            "connection_resets": {
                w: list(r) for w, r in self.connection_resets.items()
            },
            "drop_every": dict(self.drop_every),
        }


class ChaosSoak:
    """One elastic job soaked under a deterministic fault schedule."""

    def __init__(
        self,
        transport: str,
        spec: JobSpec,
        workers: "typing.Sequence[str]",
        schedule: "SoakSchedule | None" = None,
        tracer: "Tracer | None" = None,
        metrics: "MetricRegistry | None" = None,
        join_timeout: float = 30.0,
        timeout: float = 120.0,
    ):
        if transport not in ("memory", "tcp"):
            raise ValueError(f"unknown transport {transport!r}")
        self.transport = transport
        self.spec = spec
        self.workers = list(workers)
        self.schedule = schedule or SoakSchedule()
        self.tracer = tracer or Tracer(process=f"chaos-soak-{transport}")
        self.metrics = metrics or MetricRegistry()
        self.join_timeout = join_timeout
        self.timeout = timeout
        self.results: "dict[str, dict]" = {}
        self.errors: "dict[str, BaseException]" = {}
        self.killed: "list[str]" = []
        self.failed_over = False
        self.master: "NetworkedApplicationMaster | None" = None
        self.report: "GoodputReport | None" = None
        self._threads: "dict[str, threading.Thread]" = {}
        self._memory_transports: "dict[str, typing.Any]" = {}
        self._endpoints: "list[tuple[str, int]] | None" = None
        self._standby = None  # (socket, port) reserved for the successor
        self._mesh = None

    # -- wiring -----------------------------------------------------------------

    def _make_link(self, node_id, fault_plan=None, ack_timeout=0.5):
        if self.transport == "tcp":
            from .tcp import tcp_link

            link, transport = tcp_link(
                self._endpoints[0][0], self._endpoints[0][1], node_id,
                fault_plan=fault_plan, ack_timeout=ack_timeout,
                heartbeat_interval=0.2, tracer=self.tracer,
                metrics=self.metrics, endpoints=self._endpoints,
                connect_attempts=10,
            )
            return link
        link = memory_link(
            self.master.core, node_id, fault_plan=fault_plan,
            ack_timeout=ack_timeout, tracer=self.tracer,
            metrics=self.metrics, heartbeat_interval=0.2,
        )
        self._memory_transports[node_id] = link.transport
        return link

    def _start_worker(self, worker_id: str) -> None:
        def run():
            link = self._make_link(
                worker_id, fault_plan=self.schedule.fault_plan(worker_id)
            )
            agent = WorkerAgent(
                worker_id, link, poll_interval=0.02,
                join_timeout=self.join_timeout, tracer=self.tracer,
                metrics=self.metrics, peer_host=self._mesh,
                die_at_iteration=self.schedule.worker_kills.get(worker_id),
            )
            try:
                self.results[worker_id] = agent.run()
            except SilentCrash:
                self.killed.append(worker_id)
            except BaseException as exc:  # surfaced in the report/tests
                self.errors[worker_id] = exc
            finally:
                # The crashed process's sockets die with it: closing the
                # link here stops the TCP heartbeat thread, so nothing
                # keeps feeding the dead worker's lease.
                link.close()

        thread = threading.Thread(
            target=run, name=f"soak-{worker_id}", daemon=True
        )
        self._threads[worker_id] = thread
        thread.start()

    # -- failover ---------------------------------------------------------------

    def _fail_over(self) -> None:
        """Kill the primary AM and promote a journal-replayed successor."""
        old = self.master
        if self.tracer is not None:
            self.tracer.instant(
                "soak.am_kill", track="soak", cat="chaos", epoch=old.epoch,
            )
        old.abandon()
        successor = NetworkedApplicationMaster.from_journal(
            old.journal, tracer=self.tracer, metrics=self.metrics,
        )
        if self.transport == "tcp":
            sock, port = self._standby
            sock.close()
            host = self._endpoints[0][0]
            deadline = time.monotonic() + 5.0
            while True:
                try:
                    successor.serve_tcp(host, port)
                    break
                except OSError:
                    if time.monotonic() >= deadline:
                        raise
                    time.sleep(0.05)
        else:
            for transport in list(self._memory_transports.values()):
                transport.redirect(successor.core)
        self.master = successor
        self.failed_over = True

    # -- the soak ---------------------------------------------------------------

    def run(self) -> GoodputReport:
        """Run the job under the schedule; returns the goodput report."""
        spec = self.spec
        self.master = NetworkedApplicationMaster(
            spec, self.workers, tracer=self.tracer, metrics=self.metrics,
        )
        if self.transport == "tcp":
            from .tcp import reserve_port

            server = self.master.serve_tcp()
            self._standby = reserve_port(server.host)
            self._endpoints = [
                (server.host, server.port),
                (server.host, self._standby[1]),
            ]
            self._mesh = TcpPeerHost()
        else:
            self._mesh = MemoryPeerHost()
        try:
            return self._drive()
        finally:
            if self._standby is not None:
                try:
                    self._standby[0].close()
                except OSError:
                    pass
            if self._mesh is not None:
                self._mesh.close()
            self.master.close()

    def _drive(self) -> GoodputReport:
        for worker_id in self.workers:
            self._start_worker(worker_id)
        driver = self._make_link("soak-driver", ack_timeout=1.0)
        kill_at = self.schedule.am_kill_iteration
        deadline = time.monotonic() + self.timeout
        try:
            while any(t.is_alive() for t in self._threads.values()):
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"soak did not finish within {self.timeout}s "
                        f"(results={sorted(self.results)}, "
                        f"errors={self.errors})"
                    )
                status = self._status(driver)
                if (
                    kill_at is not None
                    and not self.failed_over
                    and status is not None
                    and status.get("iteration", 0) >= kill_at
                ):
                    self._fail_over()
                time.sleep(0.05)
        finally:
            driver.close()
        for thread in self._threads.values():
            thread.join(timeout=5.0)
        if self.errors:
            worker, error = sorted(self.errors.items())[0]
            raise RuntimeError(
                f"soak worker {worker!r} failed: {error!r}"
            ) from error
        self.report = derive_report(
            self.tracer.to_events(), self.metrics.snapshot()
        )
        self.metrics.gauge("goodput.ratio").set(self.report.goodput)
        self.metrics.gauge("goodput.busy_seconds").set(
            self.report.busy_seconds
        )
        self.metrics.gauge("goodput.wall_seconds").set(
            self.report.wall_seconds
        )
        return self.report

    def _status(self, driver) -> "dict | None":
        """One best-effort STATUS poll (None while the AM is down)."""
        try:
            return driver.request(MessageType.STATUS, ack_timeout=0.5)
        except (RequestTimeout, TransportClosed, RetryableError):
            return None
