"""Gradient compression codecs for the ring plane: fp16 / int8 + EF.

The ring gradient plane ships raw full-precision buckets by default —
bit-identical to the star path, the determinism anchor of the whole
system.  This module is the opt-in codec seam on top: per ring epoch
the AM negotiates one codec for every member (``JobSpec.ring_codec``
rides the ring payload), and each shipped bucket is quantized with
**error feedback**: the quantization error of every element is kept in
a full-size per-parameter residual and added back into the *next*
iteration's value before quantizing — so the error is fed forward, not
lost, and the long-run drift stays bounded instead of accumulating.

* ``fp16`` — IEEE half-precision cast (4× on float64 gradients, 2× on
  float32).
* ``int8`` — per-array symmetric linear quantization: one float scale
  (``max|x| / 127``) per shipped array, values rounded to int8.

Determinism contract (see docs/PROTOCOL.md, "Codec negotiation"):

* ``none`` takes *exactly* the uncompressed code path — zero new ufunc
  calls — so every existing bit-identity guarantee is untouched.
* With a codec active, replicas remain bit-identical **to each other**:
  the all-gather relays received quantized bytes verbatim and the
  partition owner applies ``decode(encode(x))`` to its own copy, so
  every rank ends the iteration holding the same bytes.  Only the
  distance to the exact mean changes, and it is bounded by the codec's
  per-element error (asserted in tests).

Residuals are stored per parameter at full size, independent of ring
geometry — they survive re-partitioning across adjustments, and
:meth:`RingNode.capture_residuals` / ``restore_residuals`` move them
with the worker's state.
"""

from __future__ import annotations

import typing

import numpy as np

from .wire import WireError

#: Codecs a ring epoch can negotiate.
RING_CODECS = ("none", "fp16", "int8")


def validate_codec(name: "str | None") -> str:
    """Clamp/validate a configured ring codec name."""
    codec = str(name or "none")
    if codec not in RING_CODECS:
        raise ValueError(
            f"unknown ring codec {codec!r}; expected one of {RING_CODECS}"
        )
    return codec


class BucketEncoding(typing.NamedTuple):
    """One encoded bucket: shipped arrays + the metadata to invert them."""

    data: "list[np.ndarray]"
    meta: "dict"
    raw_bytes: int
    compressed_bytes: int
    fallbacks: int
    residual_sq: float


def _quantize(
    codec: str, values: np.ndarray
) -> "tuple[np.ndarray, dict, np.ndarray]":
    """Quantize one float array; returns (shipped, meta, dequantized)."""
    if codec == "fp16":
        shipped = values.astype(np.float16)
        return shipped, {"dtype": str(values.dtype)}, shipped.astype(values.dtype)
    if codec == "int8":
        peak = float(np.max(np.abs(values))) if values.size else 0.0
        scale = peak / 127.0 if peak > 0.0 else 1.0
        shipped = np.clip(
            np.rint(values / scale), -127, 127
        ).astype(np.int8)
        dequantized = (shipped.astype(values.dtype)) * values.dtype.type(scale)
        return shipped, {"dtype": str(values.dtype), "scale": scale}, dequantized
    raise WireError(f"unknown ring codec {codec!r}")


def dequantize(array: np.ndarray, meta: dict) -> np.ndarray:
    """Invert :func:`_quantize` for one shipped array."""
    dtype = np.dtype(meta["dtype"])
    if "scale" in meta:
        return array.astype(dtype) * dtype.type(meta["scale"])
    return array.astype(dtype)


def encode_bucket(
    codec: str,
    views: "typing.Sequence[np.ndarray]",
    residuals: "typing.Sequence[np.ndarray] | None" = None,
) -> BucketEncoding:
    """Quantize one bucket's views for shipping.

    ``residuals``, when given, must be flat views aligned with
    ``views`` (same slices of the full-size residual arrays): each view
    is quantized as ``Q(x + r)`` and the new error ``(x + r) - dq``
    is written back into the residual in place — classic error
    feedback.  When ``residuals`` is None (the all-gather), values are
    quantized as-is and the caller decides what to do with ``dq``.

    Non-float arrays fall back to raw shipping (counted, not fatal):
    integer parameters carry exact values that quantization would
    corrupt.
    """
    data: "list[np.ndarray]" = []
    metas: "list[dict]" = []
    raw = compressed = fallbacks = 0
    residual_sq = 0.0
    for index, view in enumerate(views):
        raw += view.nbytes
        if view.dtype.kind != "f":
            data.append(view)
            metas.append({"raw": True})
            compressed += view.nbytes
            fallbacks += 1
            continue
        residual = residuals[index] if residuals is not None else None
        values = view if residual is None else view + residual
        shipped, meta, dequantized = _quantize(codec, values)
        if residual is not None:
            np.subtract(values, dequantized, out=residual)
            residual_sq += float(np.dot(residual, residual))
        data.append(shipped)
        metas.append(meta)
        compressed += shipped.nbytes
    return BucketEncoding(
        data=data,
        meta={"name": codec, "arrays": metas},
        raw_bytes=raw,
        compressed_bytes=compressed,
        fallbacks=fallbacks,
        residual_sq=residual_sq,
    )


def decode_bucket(
    data: "typing.Sequence[np.ndarray]", meta: dict
) -> "list[np.ndarray]":
    """Invert :func:`encode_bucket` on the receiving rank."""
    metas = meta.get("arrays")
    if not isinstance(metas, list) or len(metas) != len(data):
        raise WireError("codec metadata disagrees with the bucket")
    decoded: "list[np.ndarray]" = []
    for array, array_meta in zip(data, metas):
        if array_meta.get("raw"):
            decoded.append(np.asarray(array))
        else:
            decoded.append(dequantize(np.asarray(array), array_meta))
    return decoded
