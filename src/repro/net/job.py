"""Driver for an elastic job running as N separate OS processes.

:class:`MultiprocessElasticJob` hosts the networked AM in-process,
spawns each worker as ``python -m repro.cli join`` talking to it over
loopback TCP, and exposes the scheduler-side controls (scale-out /
scale-in / status) over its own TCP control link — so the driver
exercises exactly the same wire protocol the workers do.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
import typing

import repro

from ..coordination.messages import MessageType
from .journal import Journal
from .master_service import JobSpec, NetworkedApplicationMaster
from .tcp import tcp_link


class JobFailed(RuntimeError):
    """A worker process died or the job missed a progress deadline."""


class MultiprocessElasticJob:
    """An elastic training job whose workers are real OS processes."""

    def __init__(
        self,
        spec: JobSpec,
        initial_workers: typing.Sequence[str],
        host: str = "127.0.0.1",
        tracer: "typing.Any | None" = None,
        worker_trace_dir: "str | None" = None,
        journal_path: "str | None" = None,
        peer_transport: "str | None" = None,
    ):
        self.spec = spec
        self.host = host
        self.tracer = tracer
        self.worker_trace_dir = worker_trace_dir
        #: peer mesh transport for the ring plane ("tcp" | "shm" |
        #: "auto"); None defers to each worker's $ELAN_PEER_TRANSPORT.
        #: Co-located processes (this whole class) benefit from "shm";
        #: ShmPeerHost falls back to TCP per-peer for remote addresses.
        self.peer_transport = peer_transport
        #: with a path the AM journal is file-backed, so :meth:`fail_over`
        #: recovers from disk exactly like an out-of-process standby would.
        self.journal_path = journal_path
        journal = Journal(journal_path) if journal_path else None
        self.master = NetworkedApplicationMaster(
            spec, initial_workers, tracer=tracer, journal=journal
        )
        self.server = self.master.serve_tcp(host=host, port=0)
        self.port = self.server.port
        self.processes: "dict[str, subprocess.Popen]" = {}
        #: workers we killed on purpose — their nonzero exits are chaos,
        #: not failure, and :meth:`_poll` must not abort the job on them.
        self._expected_dead: "set[str]" = set()
        self._control = None
        self.failovers = 0

    # -- worker processes -------------------------------------------------------

    def worker_trace_path(self, worker_id: str) -> "str | None":
        """Where ``worker_id``'s Chrome trace lands (if collecting)."""
        if self.worker_trace_dir is None:
            return None
        return os.path.join(self.worker_trace_dir, f"{worker_id}.json")

    def _worker_command(
        self,
        worker_id: str,
        reset_at: typing.Sequence[int] = (),
        drop_every: int = 0,
        peer_reset_at: typing.Sequence[int] = (),
        ring_fail_at: typing.Sequence[int] = (),
        shard_die_after: "int | None" = None,
    ) -> "list[str]":
        command = [
            sys.executable, "-m", "repro.cli", "join",
            "--host", self.host, "--port", str(self.port),
            "--worker", worker_id,
        ]
        for send_index in reset_at:
            command += ["--reset-at", str(send_index)]
        if drop_every:
            command += ["--drop-every", str(drop_every)]
        for send_index in peer_reset_at:
            command += ["--peer-reset-at", str(send_index)]
        for iteration in ring_fail_at:
            command += ["--ring-fail-at", str(iteration)]
        if shard_die_after is not None:
            command += ["--shard-die-after", str(shard_die_after)]
        if not self.spec.ring_enabled:
            command += ["--no-ring"]
        if self.peer_transport:
            command += ["--peer-transport", self.peer_transport]
        trace_path = self.worker_trace_path(worker_id)
        if trace_path:
            command += ["--trace", trace_path]
        return command

    def spawn(
        self,
        worker_id: str,
        reset_at: typing.Sequence[int] = (),
        drop_every: int = 0,
        peer_reset_at: typing.Sequence[int] = (),
        ring_fail_at: typing.Sequence[int] = (),
        shard_die_after: "int | None" = None,
    ) -> subprocess.Popen:
        """Start one worker process pointed at this job's AM.

        ``reset_at``/``drop_every`` inject that worker's deterministic
        :class:`~repro.coordination.faults.FaultPlan` via CLI flags
        (``peer_reset_at`` afflicts its ring peer links instead of the
        AM link; ``ring_fail_at`` aborts its ring at those iterations;
        ``shard_die_after`` hard-kills the process after it served that
        many shard chunks, injecting a shard-owner death mid-fetch),
        so chaos runs exercise a real process's real connections.
        """
        if shard_die_after is not None:
            # The owner dies by design (os._exit); its nonzero exit is
            # the chaos, not a job failure.
            self._expected_dead.add(worker_id)
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(repro.__file__))
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing
            else os.pathsep.join([src_root, existing])
        )
        process = subprocess.Popen(
            self._worker_command(
                worker_id, reset_at=reset_at, drop_every=drop_every,
                peer_reset_at=peer_reset_at, ring_fail_at=ring_fail_at,
                shard_die_after=shard_die_after,
            ),
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        self.processes[worker_id] = process
        return process

    def start(
        self, faults: "dict[str, dict] | None" = None
    ) -> "MultiprocessElasticJob":
        """Spawn every initial worker.

        ``faults`` optionally maps a worker id to :meth:`spawn` fault
        kwargs (``reset_at``, ``drop_every``).
        """
        for worker_id in self.master.am.group:
            self.spawn(worker_id, **(faults or {}).get(worker_id, {}))
        return self

    # -- chaos controls ----------------------------------------------------------

    def kill_worker(self, worker_id: str) -> None:
        """SIGKILL one worker process (simulated machine loss).

        The worker gets no chance to say goodbye: the AM only learns of
        the death when its heartbeat lease expires, which is exactly the
        detection path the lease supervisor exists to exercise.
        """
        process = self.processes.get(worker_id)
        if process is None:
            raise KeyError(f"no such worker process: {worker_id!r}")
        self._expected_dead.add(worker_id)
        if process.poll() is None:
            process.kill()
        process.wait(timeout=10.0)

    def fail_over(self) -> NetworkedApplicationMaster:
        """Kill the AM and promote a journal-replayed successor.

        The old incarnation is fenced out (:meth:`abandon`), a successor
        is rebuilt from the same journal — re-read from disk when
        ``journal_path`` is set, handed the live object otherwise — and
        rebound to the *same* port so the worker processes' links
        reconnect and retransmit without any endpoint change.
        """
        old = self.master
        old.abandon()
        self.server.close()
        journal = (
            Journal(self.journal_path) if self.journal_path
            else old.journal
        )
        self.master = NetworkedApplicationMaster.from_journal(
            journal, tracer=self.tracer, metrics=old.metrics
        )
        deadline = time.monotonic() + 5.0
        while True:
            try:
                self.server = self.master.serve_tcp(
                    host=self.host, port=self.port
                )
                break
            except OSError:
                # The old listener's port can linger briefly in
                # TIME_WAIT; the workers are retrying against it, so
                # we must win the bind, not pick a fresh port.
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)
        self.failovers += 1
        return self.master

    # -- the scheduler-side control link ----------------------------------------

    @property
    def control(self):
        """Lazy TCP link used for adjustment requests and status polls."""
        if self._control is None:
            self._control, _ = tcp_link(
                self.host, self.port, "driver", ack_timeout=2.0
            )
        return self._control

    def scale_out(self, new_workers: typing.Sequence[str]) -> bool:
        """Request a scale-out and spawn the joining processes."""
        reply = self.control.request(
            MessageType.ADJUSTMENT_REQUEST,
            {"kind": "scale_out", "add": list(new_workers)},
        )
        if reply.get("accepted"):
            for worker_id in new_workers:
                self.spawn(worker_id)
        return bool(reply.get("accepted"))

    def scale_in(self, remove_workers: typing.Sequence[str]) -> bool:
        """Request a scale-in (the removed workers exit by themselves)."""
        reply = self.control.request(
            MessageType.ADJUSTMENT_REQUEST,
            {"kind": "scale_in", "remove": list(remove_workers)},
        )
        return bool(reply.get("accepted"))

    def status(self) -> dict:
        """One STATUS round-trip."""
        return self.control.request(MessageType.STATUS)

    # -- fleet observability -----------------------------------------------------

    def fleet_report(self) -> dict:
        """Per-job + fleet goodput reports from the live fleet collector.

        After a :meth:`fail_over` this reads the *successor's* collector,
        which the surviving workers repopulated with full re-ships at
        re-enrollment — exercising exactly the rebuild path a real
        monitoring stack would depend on.
        """
        return self.master.fleet.report(
            am_events=(
                self.tracer.to_events() if self.tracer is not None else None
            ),
            am_metrics=self.master.metrics.snapshot(),
        )

    def export_fleet_trace(self, path: str) -> int:
        """Write the merged, clock-aligned fleet trace; returns event count."""
        from ..observability import write_trace_events

        events = self.master.fleet.merged_events(
            am_events=(
                self.tracer.to_events() if self.tracer is not None else None
            ),
        )
        return write_trace_events(path, events)

    # -- progress ----------------------------------------------------------------

    def _poll(
        self,
        predicate: typing.Callable[[dict], bool],
        timeout: float,
        what: str,
    ) -> dict:
        deadline = time.monotonic() + timeout
        while True:
            status = self.status()
            if predicate(status):
                return status
            for worker_id, process in self.processes.items():
                if worker_id in self._expected_dead:
                    continue
                code = process.poll()
                if code is not None and code != 0:
                    output = (process.stdout.read() or "").strip()
                    raise JobFailed(
                        f"worker {worker_id!r} exited with {code} while "
                        f"waiting for {what}:\n{output}"
                    )
            if time.monotonic() >= deadline:
                raise JobFailed(f"timed out waiting for {what}: {status}")
            time.sleep(0.05)

    def wait_until_iteration(self, iteration: int, timeout: float = 30.0) -> dict:
        """Block until training progress reaches ``iteration``."""
        return self._poll(
            lambda s: s["iteration"] >= iteration, timeout,
            f"iteration {iteration}",
        )

    def wait_for_adjustments(self, count: int, timeout: float = 30.0) -> dict:
        """Block until ``count`` adjustments have committed."""
        return self._poll(
            lambda s: s["adjustments_committed"] >= count, timeout,
            f"{count} committed adjustments",
        )

    def wait_complete(self, timeout: float = 60.0) -> dict:
        """Block until every current-group worker finished and reported."""
        status = self._poll(lambda s: s["complete"], timeout, "completion")
        for process in self.processes.values():
            process.wait(timeout=10.0)
        return status

    def shutdown(self) -> None:
        """Stop everything: control link, worker processes, server."""
        if self._control is not None:
            self._control.close()
            self._control = None
        for process in self.processes.values():
            if process.poll() is None:
                process.terminate()
        for process in self.processes.values():
            try:
                process.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                process.kill()
        self.master.close()
