"""Length-prefixed TCP transport: reconnecting clients, threaded server.

The socket layer under the :class:`~repro.net.transport.Transport` seam.
Client side, :class:`TcpTransport` owns one connection to the server and
keeps it alive: a failed or reset send marks the link down, and the next
send pays an exponential-backoff reconnect (re-handshaking from scratch)
before any further traffic flows — all invisible to
:class:`~repro.net.transport.ReliableLink`, which only ever sees "send
and wait for the reply".  A heartbeat thread exchanges
``heartbeat``/``heartbeat_ack`` frames on an idle link so half-dead
connections are noticed before a request needs them.

Server side, :class:`TcpServer` accepts connections, handshakes them
(version check), and feeds every inbound message to a shared
:class:`~repro.net.transport.ServerCore` — dedup and reply caching are
therefore identical to the in-memory path.  Handlers run on the
connection's reader thread; a reply to a request whose connection died
mid-execution is kept in the core's cache and served to the
retransmission arriving on the replacement connection.
"""

from __future__ import annotations

import socket
import threading
import time
import typing

from ..coordination.faults import ExponentialBackoff, FaultPlan
from ..coordination.messages import FaultyChannel, Message
from . import wire
from .transport import (
    TRACE_CTX_KEY,
    FaultAction,
    ServerCore,
    TransportFaults,
)

#: Default cadence of client keep-alive heartbeats (seconds).
HEARTBEAT_INTERVAL = 0.5


class TcpTransport:
    """One reconnecting client connection (satisfies ``Transport``)."""

    def __init__(
        self,
        host: str,
        port: int,
        node_id: str,
        on_reply: typing.Callable[[int, dict], None],
        codec: str = "json",
        fault_plan: "FaultPlan | None" = None,
        backoff: "ExponentialBackoff | None" = None,
        tracer: "typing.Any | None" = None,
        heartbeat_interval: "float | None" = HEARTBEAT_INTERVAL,
        connect_timeout: float = 5.0,
        max_reconnect_attempts: int = 8,
        binary: bool = True,
        metrics: "typing.Any | None" = None,
        endpoints: "typing.Sequence[tuple[str, int]] | None" = None,
    ):
        #: Candidate AM endpoints, primary first.  A failed reconnect
        #: attempt rotates to the next one, so a worker given the
        #: standby AM's address keeps retrying *somewhere* useful while
        #: the primary is dead.
        self.endpoints: "list[tuple[str, int]]" = (
            [(str(h), int(p)) for h, p in endpoints]
            if endpoints else [(host, port)]
        )
        self._endpoint_index = 0
        self.endpoint_rotations = 0
        self.host, self.port = self.endpoints[0]
        self.node_id = node_id
        # Never request a codec this process cannot decode: the server
        # would agree to it and the two ends would silently speak
        # different formats.
        self.codec = wire.negotiate_codec(codec)
        self.tracer = tracer
        self.metrics = metrics
        #: Whether this side is willing to speak binary frames; the
        #: per-connection decision lands in :attr:`binary` after the
        #: handshake (AND of both sides).
        self._binary_wanted = binary
        self.binary = False
        self.bytes_sent = 0
        self.binary_frames_sent = 0
        self._on_reply = on_reply
        self._faults = TransportFaults.from_plan(fault_plan)
        #: The shared loss/duplication stage — the same FaultyChannel the
        #: in-memory transport is built from, here wrapping the socket
        #: write so drop/duplicate schedules behave identically.
        self._channel = FaultyChannel(
            deliver=self._write_message,
            drop_every=fault_plan.drop_every if fault_plan else 0,
            duplicate_every=fault_plan.duplicate_every if fault_plan else 0,
            node_id=node_id,
        )
        self._backoff = backoff or ExponentialBackoff(
            base=0.005, max_delay=0.25
        )
        self._connect_timeout = connect_timeout
        self._max_reconnect_attempts = max_reconnect_attempts
        self._sock: "socket.socket | None" = None
        self._send_lock = threading.RLock()
        self._closed = threading.Event()
        self._reader: "threading.Thread | None" = None
        self._heartbeat_interval = heartbeat_interval
        self._heartbeat_thread: "threading.Thread | None" = None
        self._heartbeat_seq = 0
        self._heartbeat_sent_at: "dict[int, float]" = {}
        self.reconnects = 0
        self.heartbeats_acked = 0
        self.last_heartbeat_rtt: "float | None" = None
        self.server_node: "str | None" = None
        #: Fencing epoch from the most recent welcome; a change across a
        #: reconnect means a successor AM answered and the agent must
        #: re-enroll.
        self.server_epoch: "int | None" = None

    # -- connection management -------------------------------------------------

    @property
    def connected(self) -> bool:
        """True while a handshaken socket is up."""
        return self._sock is not None and not self._closed.is_set()

    def connect(self) -> None:
        """Dial and handshake; raises on version rejection."""
        with self._send_lock:
            if self._closed.is_set():
                raise wire.WireError("transport is closed")
            if self._sock is not None:
                return
            sock = socket.create_connection(
                (self.host, self.port), timeout=self._connect_timeout
            )
            sock.settimeout(None)
            try:
                wire.write_frame(
                    sock,
                    wire.hello_frame(
                        self.node_id, self.codec, binary=self._binary_wanted
                    ),
                    "json",
                )
                answer = wire.read_frame(sock, "json")
                if answer is None or answer.get("kind") == "reject":
                    reason = (answer or {}).get("reason", "connection closed")
                    raise wire.WireError(f"handshake rejected: {reason}")
                if answer.get("kind") != "welcome":
                    raise wire.WireError(
                        f"expected welcome, got {answer.get('kind')!r}"
                    )
            except BaseException:
                sock.close()
                raise
            self.codec = answer.get("codec", self.codec)
            self.binary = self._binary_wanted and bool(answer.get("bin"))
            self.server_node = answer.get("node")
            if answer.get("epoch") is not None:
                self.server_epoch = int(answer["epoch"])
            self._sock = sock
            self._reader = threading.Thread(
                target=self._read_loop, args=(sock,),
                name=f"net-read-{self.node_id}", daemon=True,
            )
            self._reader.start()
            if (
                self._heartbeat_interval
                and self._heartbeat_thread is None
            ):
                self._heartbeat_thread = threading.Thread(
                    target=self._heartbeat_loop,
                    name=f"net-hb-{self.node_id}", daemon=True,
                )
                self._heartbeat_thread.start()

    def _advance_endpoint(self) -> None:
        """Rotate to the next candidate endpoint (no-op with one)."""
        if len(self.endpoints) < 2:
            return
        self._endpoint_index = (
            (self._endpoint_index + 1) % len(self.endpoints)
        )
        self.host, self.port = self.endpoints[self._endpoint_index]
        self.endpoint_rotations += 1

    def dial(self, attempts: int = 1) -> None:
        """Connect with bounded retries, rotating endpoints on refusal.

        The startup analogue of :meth:`_reconnect`: a worker launched
        while the AM is restarting backs off and retries instead of
        dying on the first ``ECONNREFUSED``.
        """
        last_error: "Exception | None" = None
        for attempt in range(max(1, attempts)):
            if self._closed.is_set():
                raise wire.WireError("transport is closed")
            try:
                self.connect()
                return
            except (OSError, wire.WireError) as exc:
                last_error = exc
                self._advance_endpoint()
                self._backoff.wait(attempt)
        raise last_error if last_error is not None else wire.WireError(
            f"{self.node_id}: could not dial {self.endpoints}"
        )

    def _drop_connection(self) -> None:
        with self._send_lock:
            sock, self._sock = self._sock, None
            # In-flight heartbeats died with the connection; their acks
            # will never arrive, so their timestamps must not linger.
            self._heartbeat_sent_at.clear()
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def _reconnect(self) -> None:
        """Bounded-backoff redial; traced as ``net.reconnect``."""
        span = None
        if self.tracer is not None:
            span = self.tracer.begin(
                "net.reconnect", track=self.node_id, cat="net"
            )
        for attempt in range(self._max_reconnect_attempts):
            if self._closed.is_set():
                break
            try:
                self.connect()
            except (OSError, wire.WireError):
                self._advance_endpoint()
                self._backoff.wait(attempt)
                continue
            self.reconnects += 1
            if self.tracer is not None:
                self.tracer.end(span, attempts=attempt + 1, ok=True)
            return
        if self.tracer is not None:
            self.tracer.end(
                span, attempts=self._max_reconnect_attempts, ok=False
            )
        raise wire.WireError(
            f"{self.node_id}: could not reconnect to "
            f"{self.host}:{self.port}"
        )

    def close(self) -> None:
        """Tear the connection down for good."""
        self._closed.set()
        self._drop_connection()
        self._channel.close()

    # -- sending ---------------------------------------------------------------

    def send(self, message: Message) -> bool:
        """One delivery attempt; False when the send is known-lost.

        Resets from the fault schedule (and real socket errors) kill the
        connection along with the in-flight frame; the *next* send pays
        the reconnect.  The reliability layer's timeout-resend turns
        either case into a retransmission.
        """
        if self._closed.is_set():
            return False
        with self._send_lock:
            action = (
                self._faults.next_send() if self._faults is not None
                else FaultAction()
            )
            if action.reset:
                self._drop_connection()
                return False
            if self._sock is None:
                try:
                    self._reconnect()
                except (OSError, wire.WireError):
                    return False
            if action.delay:
                time.sleep(action.delay)
            try:
                return self._channel.send(message)
            except (OSError, wire.WireError):
                # A real broken pipe / reset surfaced mid-write.
                # _write_message already dropped the connection; report
                # the send as lost so the reliability layer resends and
                # the next attempt pays the reconnect — the same path a
                # scheduled fault-plan reset takes.
                return False

    def _write_message(self, message: Message) -> None:
        """The channel's deliver hook: frame and write, or die trying."""
        sock = self._sock
        if sock is None:
            raise OSError("not connected")
        binary = self.binary
        try:
            n = wire.write_frame(
                sock, wire.message_frame(message, raw=binary),
                self.codec, binary=binary,
            )
        except OSError:
            self._drop_connection()
            raise
        self.bytes_sent += n
        if binary and wire.payload_nbytes(message.payload):
            self.binary_frames_sent += 1
        if self.metrics is not None:
            self.metrics.counter("net.wire_bytes_sent").inc(n)

    # -- receiving -------------------------------------------------------------

    def _read_loop(self, sock: socket.socket) -> None:
        while not self._closed.is_set():
            try:
                frame = wire.read_frame(sock, self.codec)
            except (OSError, wire.WireError):
                break
            if frame is None:
                break
            kind = frame.get("kind")
            if kind == "reply":
                payload = wire.decode_payload(frame.get("payload") or {})
                # The frame-level transmission context (server node,
                # epoch, recv/send timestamps) rides into the link as a
                # payload key the link pops before anyone else looks —
                # fresh per decode, so a cached-reply retransmission
                # still carries this transmission's timestamps.
                ctx = frame.get("ctx")
                if isinstance(ctx, dict):
                    payload[TRACE_CTX_KEY] = ctx
                self._on_reply(int(frame["in_reply_to"]), payload)
            elif kind == "heartbeat_ack":
                self.heartbeats_acked += 1
                sent_at = self._heartbeat_sent_at.pop(frame.get("seq"), None)
                if sent_at is not None:
                    self.last_heartbeat_rtt = time.perf_counter() - sent_at
        # EOF or error: if this is still the current socket, drop it so
        # the next send reconnects.
        with self._send_lock:
            if self._sock is sock:
                self._sock = None
        try:
            sock.close()
        except OSError:
            pass

    def _heartbeat_loop(self) -> None:
        while not self._closed.wait(self._heartbeat_interval):
            with self._send_lock:
                sock = self._sock
                if sock is None:
                    continue  # reconnect is the sender's job
                self._heartbeat_seq += 1
                seq = self._heartbeat_seq
                self._heartbeat_sent_at[seq] = time.perf_counter()
                try:
                    wire.write_frame(
                        sock, wire.heartbeat_frame(self.node_id, seq),
                        self.codec,
                    )
                except OSError:
                    self._drop_connection()


class TcpServer:
    """Accepts connections and feeds messages to a shared ServerCore."""

    def __init__(
        self,
        core: ServerCore,
        host: str = "127.0.0.1",
        port: int = 0,
        tracer: "typing.Any | None" = None,
        binary: bool = True,
        metrics: "typing.Any | None" = None,
    ):
        self.core = core
        self.tracer = tracer
        self.metrics = metrics
        #: Whether this server is willing to speak binary frames; each
        #: connection uses them only if its client advertised ``bin``.
        self.binary = binary
        self.bytes_sent = 0
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(64)
        self.host, self.port = self._listener.getsockname()[:2]
        self._closed = threading.Event()
        self._accept_thread: "threading.Thread | None" = None
        self._connections: "list[socket.socket]" = []
        self._conn_lock = threading.Lock()
        self.connections_accepted = 0
        self.handshakes_rejected = 0
        self.heartbeats_received = 0
        self.last_seen: "dict[str, float]" = {}

    @property
    def address(self) -> typing.Tuple[str, int]:
        """The (host, port) the server is listening on."""
        return self.host, self.port

    def start(self) -> "TcpServer":
        """Begin accepting connections."""
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="net-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                break
            with self._conn_lock:
                self._connections.append(conn)
            threading.Thread(
                target=self._serve_connection, args=(conn,),
                name="net-serve", daemon=True,
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        codec = "json"
        try:
            try:
                node, codec, binary = wire.check_handshake(
                    wire.read_frame(conn, "json"), binary=self.binary
                )
            except wire.WireError as exc:
                self.handshakes_rejected += 1
                try:
                    wire.write_frame(conn, wire.reject_frame(str(exc)), "json")
                except OSError:
                    pass
                return
            wire.write_frame(
                conn,
                wire.welcome_frame(
                    self.core.node_id, codec, binary=binary,
                    epoch=getattr(self.core, "epoch", None),
                ),
                "json",
            )
            self.connections_accepted += 1
            if self.tracer is not None:
                self.tracer.instant(
                    "net.accept", track=self.core.node_id, cat="net",
                    peer=node, codec=codec, binary=binary,
                )
            write_lock = threading.Lock()
            while not self._closed.is_set():
                frame = wire.read_frame(conn, codec)
                if frame is None:
                    break
                self._handle_frame(conn, frame, codec, binary, write_lock)
        except (OSError, wire.WireError):
            pass
        finally:
            with self._conn_lock:
                if conn in self._connections:
                    self._connections.remove(conn)
            try:
                conn.close()
            except OSError:
                pass

    def _handle_frame(
        self,
        conn: socket.socket,
        frame: dict,
        codec: str,
        binary: bool,
        write_lock: threading.Lock,
    ) -> None:
        kind = frame.get("kind")
        if kind == "heartbeat":
            self.heartbeats_received += 1
            node = frame.get("node", "?")
            self.last_seen[node] = time.perf_counter()
            # Heartbeats are a liveness signal for the lease layer too:
            # a worker blocked in a long barrier sends no messages but
            # is still very much alive.
            if self.core.on_activity is not None:
                self.core.on_activity(node)
            with write_lock:
                wire.write_frame(
                    conn, wire.heartbeat_ack_frame(frame.get("seq", 0)),
                    codec,
                )
            return
        if kind != "msg":
            raise wire.WireError(f"unexpected frame kind {kind!r}")
        t_recv = time.perf_counter()
        message = wire.decode_message(frame)
        self.last_seen[message.sender] = t_recv
        reply = self.core.dispatch(message)
        try:
            with write_lock:
                n = wire.write_frame(
                    conn,
                    wire.reply_frame(
                        self.core.node_id, message.msg_id, reply,
                        raw=binary,
                        # Per-transmission clock context: recv/sent are
                        # stamped here, at the wire, so cached replies
                        # to retransmissions never reuse stale times.
                        ctx={
                            "node": self.core.node_id,
                            "epoch": self.core.epoch,
                            "recv": t_recv,
                            "sent": time.perf_counter(),
                        },
                    ),
                    codec,
                    binary=binary,
                )
        except OSError:
            # The connection died while the handler ran; the reply stays
            # in the core's cache for the retransmission to collect.
            raise
        self.bytes_sent += n
        if self.metrics is not None:
            self.metrics.counter("net.wire_bytes_sent").inc(n)

    def close(self) -> None:
        """Stop accepting, drop every connection, release the port."""
        self._closed.set()
        # shutdown() first: close() alone does not wake a thread blocked
        # in accept(), and the kernel keeps the port bound until it wakes.
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        with self._conn_lock:
            connections, self._connections = self._connections, []
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)


def reserve_port(host: str = "127.0.0.1") -> "tuple[socket.socket, int]":
    """Reserve a loopback port without listening on it.

    Returns ``(sock, port)``: the socket is *bound but not listening*,
    so clients dialing the port get ``ECONNREFUSED`` (and rotate to
    another endpoint) until the holder closes the socket and a real
    server binds it.  This is how failover tests pre-advertise a
    standby AM endpoint before the standby exists.
    """
    sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    sock.bind((host, 0))
    return sock, sock.getsockname()[1]


def tcp_link(
    host: str,
    port: int,
    node_id: str,
    fault_plan: "FaultPlan | None" = None,
    ack_timeout: float = 1.0,
    max_attempts: int = 10,
    codec: str = "json",
    tracer: "typing.Any | None" = None,
    heartbeat_interval: "float | None" = HEARTBEAT_INTERVAL,
    binary: bool = True,
    metrics: "typing.Any | None" = None,
    endpoints: "typing.Sequence[tuple[str, int]] | None" = None,
    connect_attempts: int = 1,
    max_reconnect_attempts: int = 8,
) -> "tuple":
    """A connected reliable TCP client; returns ``(link, transport)``.

    ``endpoints`` lists every candidate AM address (primary first;
    overrides ``host``/``port``); ``connect_attempts`` bounds the
    initial dial's retry-with-rotation loop.
    ``max_reconnect_attempts`` bounds each *mid-run* redial cycle —
    links to an AM keep the default (it may be failing over), links to
    a peer should use a small budget (a refused peer is simply dead).
    """
    from .transport import ReliableLink

    link = ReliableLink(
        node_id, ack_timeout=ack_timeout, max_attempts=max_attempts,
        tracer=tracer, metrics=metrics,
    )
    transport = TcpTransport(
        host, port, node_id, on_reply=link.on_reply, codec=codec,
        fault_plan=fault_plan, tracer=tracer,
        heartbeat_interval=heartbeat_interval, binary=binary,
        metrics=metrics, endpoints=endpoints,
        max_reconnect_attempts=max_reconnect_attempts,
    )
    transport.dial(connect_attempts)
    return link.attach(transport), transport
