"""The worker-peer mesh: lightweight per-worker servers + links.

Every :class:`~repro.net.agent.WorkerAgent` in a ring-enabled job runs
one peer server (a plain :class:`~repro.net.transport.ServerCore`
behind the shared dedup/resend recipe) and dials its ring successor
through a :class:`~repro.net.transport.ReliableLink` — so the gradient
plane inherits exactly the control plane's exactly-once guarantees:
timeout-resend on the sender, ``(sender, msg_id)`` dedup on the
receiver, reconnect-and-retransmit across connection resets, and the
zero-copy binary frame path over TCP.

A :class:`PeerHost` abstracts where peers live:

* :class:`MemoryPeerHost` — one shared registry per job; addresses are
  ``mem://<worker>`` and connecting builds an
  :func:`~repro.net.transport.memory_link` to the registered core.
  Threads-in-one-process tests use this.
* :class:`TcpPeerHost` — each ``serve`` starts a
  :class:`~repro.net.tcp.TcpServer` on an ephemeral loopback port;
  addresses are ``tcp://host:port`` and connecting dials a
  :func:`~repro.net.tcp.tcp_link` (binary frames negotiated, no
  heartbeat thread — ring traffic is its own liveness signal).
* :class:`~repro.net.shm.ShmPeerHost` — each ``serve`` starts a
  shared-memory ring-buffer server bootstrapped over a Unix socket;
  addresses are ``shm://<uds-path>`` and connecting to a ``tcp://``
  peer transparently falls back to the TCP link (remote peers).

Addresses travel through the AM: a worker advertises its address in the
``JOIN`` payload and the AM distributes the full ring (order + peer
addresses + activation boundary) with the commit directive — see
:mod:`repro.net.master_service`.  :func:`peer_scheme` is the one place
address schemes are recognized; hosts dispatch on it instead of
string-matching prefixes.
"""

from __future__ import annotations

import threading
import typing

from .transport import ServerCore, TransportClosed, memory_link

#: Address schemes a peer mesh can advertise.
PEER_SCHEMES = ("mem", "tcp", "shm")


def peer_scheme(addr: str) -> str:
    """The scheme of a peer address (``mem`` | ``tcp`` | ``shm``).

    The single scheme-recognition point: hosts dispatch on this instead
    of each string-matching ``addr.startswith(...)``, so a new scheme
    lands in exactly one place.  Unknown schemes raise ``ValueError``.
    """
    scheme, sep, rest = addr.partition("://")
    if not sep or scheme not in PEER_SCHEMES:
        raise ValueError(f"unknown peer address scheme: {addr!r}")
    if not rest:
        raise ValueError(f"peer address names no endpoint: {addr!r}")
    return scheme


class PeerHost(typing.Protocol):
    """Where a worker serves its peer endpoint and dials others."""

    def serve(self, core: ServerCore, worker_id: str) -> str:
        """Start serving ``core``; returns the advertised address."""

    def connect(self, addr: str, node_id: str, **kwargs):
        """A :class:`ReliableLink` to the peer at ``addr``."""

    def release(self, addr: str) -> None:
        """Stop serving ``addr`` (worker shutdown)."""

    def close(self) -> None:
        """Tear down every endpoint this host started."""


class MemoryPeerHost:
    """In-process peer mesh: one shared instance per (test) job."""

    def __init__(self):
        self._registry: "dict[str, ServerCore]" = {}
        #: links handed out per address — release/close sever them, so
        #: in-process lifecycle matches TCP/SHM (where closing the
        #: server kills the connection).
        self._issued: "dict[str, list]" = {}
        self._lock = threading.Lock()
        self._closed = False

    def serve(self, core: ServerCore, worker_id: str) -> str:
        addr = f"mem://{worker_id}"
        with self._lock:
            if self._closed:
                raise TransportClosed("peer host is closed")
            # A restarted worker re-registers under the same address.
            self._registry[addr] = core
        return addr

    def connect(
        self,
        addr: str,
        node_id: str,
        fault_plan=None,
        ack_timeout: float = 0.5,
        max_attempts: int = 10,
        tracer=None,
        metrics=None,
    ):
        if peer_scheme(addr) != "mem":
            raise ValueError(
                f"MemoryPeerHost cannot connect to {addr!r} "
                f"(only mem:// addresses live in this registry)"
            )
        with self._lock:
            if self._closed:
                raise TransportClosed("peer host is closed")
            core = self._registry.get(addr)
        if core is None:
            raise TransportClosed(f"no peer serving {addr!r}")
        link = memory_link(
            core, node_id, fault_plan=fault_plan, ack_timeout=ack_timeout,
            max_attempts=max_attempts, tracer=tracer, metrics=metrics,
        )
        # Re-check under the lock: a concurrent release/close may have
        # retired (or replaced) the core while the link was being built
        # — handing that link out would pin a server that is gone.
        with self._lock:
            if self._closed or self._registry.get(addr) is not core:
                link.close()
                raise TransportClosed(
                    f"peer at {addr!r} released during connect"
                )
            self._issued.setdefault(addr, []).append(link)
        return link

    def release(self, addr: str) -> None:
        # Idempotent, including under concurrent close: pop tolerates a
        # missing key and a cleared registry alike.
        with self._lock:
            self._registry.pop(addr, None)
            links = self._issued.pop(addr, [])
        for link in links:
            link.close()

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._registry.clear()
            issued, self._issued = self._issued, {}
        for links in issued.values():
            for link in links:
                link.close()


class TcpPeerHost:
    """Loopback-TCP peer mesh: one ephemeral listener per worker."""

    def __init__(self, host: str = "127.0.0.1"):
        self.host = host
        self._servers: "dict[str, typing.Any]" = {}
        self._lock = threading.Lock()

    def serve(self, core: ServerCore, worker_id: str) -> str:
        from .tcp import TcpServer

        server = TcpServer(
            core, host=self.host, port=0, tracer=core.tracer,
            metrics=core.metrics,
        ).start()
        addr = f"tcp://{server.host}:{server.port}"
        with self._lock:
            self._servers[addr] = server
        return addr

    def connect(
        self,
        addr: str,
        node_id: str,
        fault_plan=None,
        ack_timeout: float = 0.5,
        max_attempts: int = 10,
        tracer=None,
        metrics=None,
    ):
        from .tcp import tcp_link

        if peer_scheme(addr) != "tcp":
            raise ValueError(
                f"TcpPeerHost cannot connect to {addr!r} "
                f"(only tcp:// peers are dialable from here)"
            )
        host, port = parse_peer_addr(addr)
        try:
            link, _transport = tcp_link(
                host, port, node_id, fault_plan=fault_plan,
                ack_timeout=ack_timeout, max_attempts=max_attempts,
                tracer=tracer, metrics=metrics,
                # Segment traffic is constant while the ring is healthy;
                # a keep-alive thread per peer link would be pure
                # overhead.
                heartbeat_interval=None,
                # A refused peer is dead, not failing over: burn two
                # redial attempts, not a multi-second backoff cycle per
                # send.
                max_reconnect_attempts=2,
            )
        except OSError as exc:
            # A released/dead endpoint raises the same TransportClosed
            # every PeerHost raises — callers see one lifecycle error.
            raise TransportClosed(f"no peer serving {addr!r}: {exc}") from exc
        return link

    def release(self, addr: str) -> None:
        with self._lock:
            server = self._servers.pop(addr, None)
        if server is not None:
            server.close()

    def close(self) -> None:
        with self._lock:
            servers, self._servers = list(self._servers.values()), {}
        for server in servers:
            server.close()


def parse_peer_addr(addr: str) -> "tuple[str, int]":
    """``tcp://host:port`` -> ``(host, port)``, validated.

    Rejects missing/empty hosts, non-numeric ports and ports outside
    1–65535 — a malformed address from a corrupt ring payload must fail
    here, loudly, not inside a connect timeout.
    """
    if peer_scheme(addr) != "tcp":
        raise ValueError(f"not a tcp peer address: {addr!r}")
    host, _, port = addr[len("tcp://"):].rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"malformed tcp peer address: {addr!r}")
    port_number = int(port)
    if not 1 <= port_number <= 65535:
        raise ValueError(f"tcp peer port out of range: {addr!r}")
    return host, port_number
