"""Shared-memory peer transport: ring-buffer links for co-located workers.

Co-located workers exchanging ring buckets over loopback TCP pay the
full serialization + kernel socket copy tax on every segment.  This
module moves that traffic into ``multiprocessing.shared_memory``: each
link is a pair of single-producer/single-consumer ring buffers (one per
direction) carrying the **existing binary frame format** — ndarray
payloads are memcpy'd once into the shared segment and the receiver
rebuilds them as ``np.frombuffer`` views directly over it.  Zero
serialization, zero socket copies; the only data movement left is the
one write into shared memory.

Connection bootstrap rides a tiny Unix-domain-socket handshake (the
same ``hello``/``welcome`` frames as TCP): the connector creates the
two segments, names them in its hello, and the server attaches.  The
UDS then stays open as the link's **doorbell**: after publishing a
record the producer sends one byte, so the consumer blocks in
``select()`` exactly like a TCP reader instead of spin-polling the ring
— bulk data never touches the socket, only wakeups do.  EOF on the
doorbell doubles as the liveness signal.  Reliability is unchanged: :class:`ShmTransport` satisfies the
same :class:`~repro.net.transport.Transport` protocol, so
:class:`~repro.net.transport.ReliableLink` /
:class:`~repro.net.transport.ServerCore` provide exactly-once, dedup
and resend on top, and :class:`~repro.coordination.faults.FaultPlan`
faults (drops, duplicates, delays, resets) inject through the same
:class:`~repro.coordination.messages.FaultyChannel` /
:class:`~repro.net.transport.TransportFaults` stages as TCP.

Crash cleanup: segments are registered with multiprocessing's resource
tracker in *both* processes, so a SIGKILL'd worker's tracker unlinks
them; clean paths unlink eagerly (either side may win — double unlinks
are tolerated) and unregister so no tracker warns at exit.  The ring
layout and cleanup guarantees are documented in docs/PROTOCOL.md
("The shm:// peer transport").
"""

from __future__ import annotations

import os
import select
import socket
import struct
import tempfile
import threading
import time
import typing
import uuid

import numpy as np

from ..coordination.faults import ExponentialBackoff, FaultPlan
from ..coordination.messages import FaultyChannel, Message
from . import wire
from .transport import (
    TRACE_CTX_KEY,
    FaultAction,
    ServerCore,
    TransportClosed,
    TransportFaults,
)

#: Default per-direction ring capacity.  Must hold the largest frame a
#: peer link ships (ring buckets are small, but degraded-path
#: ``RING_FETCH`` replies carry a whole gradient dict).
DEFAULT_SHM_CAPACITY = 16 * 1024 * 1024

#: Shared-memory segment name prefix — also what the leak checks (CI,
#: chaos tests) grep ``/dev/shm`` for.
SHM_NAME_PREFIX = "elanshm_"

#: Ring header: head (u64, producer-owned), tail (u64, consumer-owned),
#: closed flag (u8, either side).  Both counters are absolute
#: (monotonic), so ``head - tail`` is the used byte count without any
#: wrap ambiguity; aligned 8-byte loads/stores are atomic on every
#: platform CPython runs on.
_HEADER_BYTES = 64
_HEAD = struct.Struct("<Q")
_RECORD = struct.Struct("<I")
#: Record-length sentinel: "no record here — skip to the next ring lap".
_SKIP = 0xFFFFFFFF


#: Segments this process already told its resource tracker to forget.
#: Attaching registers a name just like creating does, so a process
#: holding both ends of a pair (tests, loopback rings) would otherwise
#: unregister the same name twice and the tracker would log a KeyError.
_unregistered: "set[str]" = set()
_unregistered_lock = threading.Lock()


def _tracker_call(action: str, name: str) -> None:
    """Raw best-effort resource_tracker register/unregister of a segment."""
    try:  # pragma: no cover - depends on resource_tracker internals
        from multiprocessing import resource_tracker

        getattr(resource_tracker, action)(
            "/" + name.lstrip("/"), "shared_memory"
        )
    except Exception:
        pass


def _unregister_segment(name: str) -> None:
    """Drop a segment from this process's resource tracker, once."""
    with _unregistered_lock:
        if name in _unregistered:
            return
        _unregistered.add(name)
    _tracker_call("unregister", name)


class ShmRing:
    """One direction of a link: an SPSC byte ring in shared memory.

    Records are ``[u32 length][frame bytes]`` and **never wrap**: a
    record that does not fit in the space before the end of the buffer
    is preceded by a :data:`_SKIP` marker and starts at the next lap —
    so the consumer always sees each frame as one contiguous region and
    can hand out ``np.frombuffer`` views into it with no reassembly.
    The consumer owns a frame's region until :meth:`advance`; the
    producer cannot overwrite it before then.
    """

    def __init__(self, name: "str | None" = None, capacity: int = DEFAULT_SHM_CAPACITY):
        from multiprocessing import shared_memory

        self.capacity = int(capacity)
        if name is None:
            self.name = SHM_NAME_PREFIX + uuid.uuid4().hex[:12]
            self._shm = shared_memory.SharedMemory(
                name=self.name, create=True,
                size=_HEADER_BYTES + self.capacity,
            )
            self.created = True
        else:
            self.name = name
            self._shm = shared_memory.SharedMemory(name=name)
            self.capacity = self._shm.size - _HEADER_BYTES
            self.created = False
        self._buf = self._shm.buf
        self._data = self._buf[_HEADER_BYTES:_HEADER_BYTES + self.capacity]
        self._pending: "int | None" = None
        self._gone = False

    # -- cursor accessors ------------------------------------------------------

    @property
    def _head(self) -> int:
        return _HEAD.unpack_from(self._buf, 0)[0]

    @_head.setter
    def _head(self, value: int) -> None:
        _HEAD.pack_into(self._buf, 0, value)

    @property
    def _tail(self) -> int:
        return _HEAD.unpack_from(self._buf, 8)[0]

    @_tail.setter
    def _tail(self, value: int) -> None:
        _HEAD.pack_into(self._buf, 8, value)

    @property
    def closed(self) -> bool:
        return self._gone or self._buf[16] != 0

    def mark_closed(self) -> None:
        """Signal the other side; both directions observe one flag each."""
        if not self._gone:
            self._buf[16] = 1

    # -- producer side ---------------------------------------------------------

    def write(self, buffers: typing.Sequence, timeout: float = 10.0) -> int:
        """Append one record built from ``buffers``; returns bytes written.

        Blocks (spin-then-sleep) while the ring is full; returns 0 if
        the ring closed or the wait timed out — the transport reports
        the send as lost and the reliability layer resends.
        """
        try:
            return self._write(buffers, timeout)
        except (TypeError, ValueError):
            # close() released the buffers under a concurrent writer.
            if self._gone:
                return 0
            raise

    def _write(self, buffers: typing.Sequence, timeout: float) -> int:
        views = [wire._flat_view(buffer) for buffer in buffers]
        length = sum(view.nbytes for view in views)
        record = _RECORD.size + length
        # Half the capacity, not all of it: a no-wrap record must fit in
        # the space before the lap end *plus* a fresh lap in the worst
        # alignment, and only record <= capacity/2 guarantees that at
        # every position.  Anything bigger could park the producer at an
        # unsatisfiable offset forever — fail loudly instead.
        if record > self.capacity // 2:
            raise wire.WireError(
                f"frame of {length} bytes exceeds half the shm ring "
                f"capacity ({self.capacity}); raise the link's capacity"
            )
        deadline = time.monotonic() + timeout
        spins = 0
        while True:
            if self.closed:
                return 0
            head, tail = self._head, self._tail
            pos = head % self.capacity
            room_to_end = self.capacity - pos
            # The skip marker (when needed) consumes the rest of the lap.
            need = record if record <= room_to_end else room_to_end + record
            if self.capacity - (head - tail) >= need:
                break
            spins += 1
            if spins > 100:
                time.sleep(0.0002)
            if time.monotonic() >= deadline:
                return 0
        if record > room_to_end:
            if room_to_end >= _RECORD.size:
                _RECORD.pack_into(self._data, pos, _SKIP)
            head += room_to_end
            pos = 0
        _RECORD.pack_into(self._data, pos, length)
        offset = pos + _RECORD.size
        for view in views:
            n = view.nbytes
            self._data[offset:offset + n] = view
            offset += n
        # Publish after the payload is fully in place: the consumer only
        # reads bytes below head.
        self._head = head + record
        return record

    # -- consumer side ---------------------------------------------------------

    def read(self, timeout: float = 0.2) -> "memoryview | None":
        """The next record's payload as a view into the ring, or None.

        The view stays valid until :meth:`advance` — process (or copy)
        before advancing.  Returns None on timeout or when the ring is
        closed and drained.
        """
        try:
            return self._read(timeout)
        except (TypeError, ValueError):
            # close() released the buffers under a concurrent reader.
            if self._gone:
                return None
            raise

    def _read(self, timeout: float) -> "memoryview | None":
        if self._pending is not None:
            raise RuntimeError("previous record not advanced")
        deadline = time.monotonic() + timeout
        spins = 0
        while True:
            head, tail = self._head, self._tail
            if head != tail:
                break
            if self.closed:
                return None
            spins += 1
            if spins > 100:
                time.sleep(0.0002)
            if time.monotonic() >= deadline:
                return None
        pos = tail % self.capacity
        room_to_end = self.capacity - pos
        if room_to_end < _RECORD.size:
            # Lap remainder too small even for a marker: implicit skip.
            tail += room_to_end
            pos = 0
        else:
            (length,) = _RECORD.unpack_from(self._data, pos)
            if length == _SKIP:
                tail += room_to_end
                pos = 0
            else:
                self._pending = tail + _RECORD.size + length
                return self._data[pos + _RECORD.size:pos + _RECORD.size + length]
        (length,) = _RECORD.unpack_from(self._data, pos)
        self._pending = tail + _RECORD.size + length
        return self._data[pos + _RECORD.size:pos + _RECORD.size + length]

    def advance(self) -> None:
        """Release the last :meth:`read` record back to the producer."""
        if self._pending is not None:
            self._tail = self._pending
            self._pending = None

    # -- lifecycle -------------------------------------------------------------

    def close(self, unlink: bool = False) -> None:
        """Detach; with ``unlink`` also remove the segment name.

        Either side may unlink first — ``FileNotFoundError`` is the
        normal outcome for the second closer (and for a crash where the
        dead process's resource tracker won the race).
        """
        if self._gone:
            return
        self.mark_closed()
        self._gone = True
        self._pending = None
        self._data.release()
        self._buf = None
        try:
            self._shm.close()
        except (OSError, BufferError):  # pragma: no cover - platform noise
            pass
        if unlink:
            # A successful unlink unregisters internally, consuming this
            # process's tracker entry.  If the other end of a
            # same-process pair already consumed it, restore the entry
            # first so the internal unregister has one to eat; if the
            # remote side won the unlink race, eat ours by hand.
            with _unregistered_lock:
                reregister = self.name in _unregistered
                _unregistered.add(self.name)
            if reregister:
                _tracker_call("register", self.name)
            try:
                self._shm.unlink()
            except FileNotFoundError:
                _tracker_call("unregister", self.name)
        else:
            _unregister_segment(self.name)


# -- frame codec over a ring ---------------------------------------------------


def shm_frame_buffers(frame: dict, codec: str = "json") -> "list":
    """The buffer list one ring record carries for ``frame``.

    Binary frames reuse :func:`wire.binary_frame_buffers` verbatim
    (prefix + header + raw segments); array-free frames are one plain
    codec frame.  Either way the receiver parses it with
    :func:`decode_shm_frame`.
    """
    buffers, _total = wire.binary_frame_buffers(frame, codec)
    if buffers is not None:
        return buffers
    return [wire.frame_bytes(frame, codec)]


def decode_shm_frame(view: memoryview, codec: str = "json") -> dict:
    """Parse one ring record back into a frame dict.

    Array segments come back as ``np.frombuffer`` views **into the
    ring** — valid until the caller advances the ring, so handlers
    retaining data must copy (the ring mailbox already does).
    """
    if view.nbytes < wire._LENGTH.size:
        raise wire.WireError("shm record shorter than a frame prefix")
    (length,) = wire._LENGTH.unpack_from(view, 0)
    body = view[wire._LENGTH.size:]
    if not length & wire.BINARY_FLAG:
        if body.nbytes != length:
            raise wire.WireError("shm record length mismatch")
        return wire.decode_frame(bytes(body), codec)
    header_len = length & ~wire.BINARY_FLAG
    if header_len > body.nbytes:
        raise wire.WireError("shm binary header overruns the record")
    frame = wire.decode_frame(bytes(body[:header_len]), codec)
    seg_lens = frame.pop("__segs__", None)
    if not isinstance(seg_lens, list) or not all(
        isinstance(n, int) and n >= 0 for n in seg_lens
    ):
        raise wire.WireError("shm binary frame carries no valid segment table")
    if header_len + sum(seg_lens) != body.nbytes:
        raise wire.WireError("shm segment table disagrees with the record")
    segments, offset = [], header_len
    for seg_len in seg_lens:
        segments.append(body[offset:offset + seg_len])
        offset += seg_len
    return wire.join_buffers(frame, segments)


def _own_arrays(obj):
    """Deep-copy ndarrays out of ring-backed views (reply retention)."""
    if isinstance(obj, np.ndarray):
        return np.array(obj)
    if isinstance(obj, memoryview):
        return bytes(obj)
    if isinstance(obj, dict):
        return {key: _own_arrays(value) for key, value in obj.items()}
    if isinstance(obj, list):
        return [_own_arrays(item) for item in obj]
    return obj


def _ring_doorbell(sock: "socket.socket | None") -> None:
    """One wakeup byte after a publish (best effort, never blocks).

    A full socket buffer means the consumer already has unread wakeups
    queued — dropping this one is harmless.
    """
    if sock is None:
        return
    try:
        sock.send(b"\x01")
    except (BlockingIOError, OSError):
        pass


def _await_doorbell(sock: socket.socket, timeout: float = 0.2) -> bool:
    """Block until the peer rings (or ``timeout``); False when the peer
    is gone.  Drains queued wakeup bytes; EOF means the peer died.

    No missed-wakeup race: the byte a producer sends before we enter
    ``select`` stays queued in the socket buffer, so the select returns
    immediately.
    """
    try:
        ready, _, _ = select.select([sock], [], [], timeout)
    except (OSError, ValueError):
        return False
    if not ready:
        return True
    try:
        return sock.recv(4096) != b""
    except BlockingIOError:
        return True
    except OSError:
        return False


# -- the client transport ------------------------------------------------------


class ShmTransport:
    """One shared-memory connection (satisfies ``Transport``).

    Mirrors :class:`~repro.net.tcp.TcpTransport`'s shape exactly — the
    same FaultyChannel loss/duplication stage, the same
    :class:`TransportFaults` delay/reset schedule, the same
    drop-and-redial reset semantics (a reset tears the segment pair
    down; the next send bootstraps a fresh pair over the UDS) — so a
    chaos schedule replays identically over memory, TCP and SHM.
    """

    def __init__(
        self,
        path: str,
        node_id: str,
        on_reply: typing.Callable[[int, dict], None],
        codec: str = "json",
        fault_plan: "FaultPlan | None" = None,
        backoff: "ExponentialBackoff | None" = None,
        tracer: "typing.Any | None" = None,
        capacity: int = DEFAULT_SHM_CAPACITY,
        connect_timeout: float = 5.0,
        max_reconnect_attempts: int = 2,
        metrics: "typing.Any | None" = None,
    ):
        self.path = path
        self.node_id = node_id
        self.codec = wire.negotiate_codec(codec)
        self.capacity = capacity
        self.tracer = tracer
        self.metrics = metrics
        self.bytes_sent = 0
        self.frames_sent = 0
        self._on_reply = on_reply
        self._faults = TransportFaults.from_plan(fault_plan)
        self._channel = FaultyChannel(
            deliver=self._write_message,
            drop_every=fault_plan.drop_every if fault_plan else 0,
            duplicate_every=fault_plan.duplicate_every if fault_plan else 0,
            node_id=node_id,
        )
        self._backoff = backoff or ExponentialBackoff(base=0.005, max_delay=0.25)
        self._connect_timeout = connect_timeout
        self._max_reconnect_attempts = max_reconnect_attempts
        self._send_lock = threading.RLock()
        self._closed = threading.Event()
        self._sock: "socket.socket | None" = None
        self._out: "ShmRing | None" = None
        self._in: "ShmRing | None" = None
        self._reader: "threading.Thread | None" = None
        self.reconnects = 0
        self.server_node: "str | None" = None
        self.server_epoch: "int | None" = None

    # -- connection management -------------------------------------------------

    @property
    def connected(self) -> bool:
        return self._out is not None and not self._closed.is_set()

    def connect(self) -> None:
        """Dial the UDS, hand over fresh segments, handshake."""
        with self._send_lock:
            if self._closed.is_set():
                raise wire.WireError("transport is closed")
            if self._out is not None:
                return
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self._connect_timeout)
            out_ring = in_ring = None
            try:
                sock.connect(self.path)
                sock.settimeout(None)
                out_ring = ShmRing(capacity=self.capacity)
                in_ring = ShmRing(capacity=self.capacity)
                hello = wire.hello_frame(self.node_id, self.codec, binary=True)
                hello["shm"] = {
                    "c2s": out_ring.name, "s2c": in_ring.name,
                }
                wire.write_frame(sock, hello, "json")
                answer = wire.read_frame(sock, "json")
                if answer is None or answer.get("kind") == "reject":
                    reason = (answer or {}).get("reason", "connection closed")
                    raise wire.WireError(f"handshake rejected: {reason}")
                if answer.get("kind") != "welcome":
                    raise wire.WireError(
                        f"expected welcome, got {answer.get('kind')!r}"
                    )
            except BaseException:
                sock.close()
                for ring in (out_ring, in_ring):
                    if ring is not None:
                        ring.close(unlink=True)
                raise
            self.codec = answer.get("codec", self.codec)
            self.server_node = answer.get("node")
            if answer.get("epoch") is not None:
                self.server_epoch = int(answer["epoch"])
            # Handshake done: from here the socket is the non-blocking
            # doorbell (wakeup bytes only, never frames).
            sock.setblocking(False)
            self._sock, self._out, self._in = sock, out_ring, in_ring
            self._reader = threading.Thread(
                target=self._read_loop, args=(in_ring, sock),
                name=f"shm-read-{self.node_id}", daemon=True,
            )
            self._reader.start()

    def _drop_connection(self) -> None:
        with self._send_lock:
            sock, self._sock = self._sock, None
            out_ring, self._out = self._out, None
            in_ring, self._in = self._in, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
        for ring in (out_ring, in_ring):
            if ring is not None:
                ring.close(unlink=True)

    def _reconnect(self) -> None:
        span = None
        if self.tracer is not None:
            span = self.tracer.begin(
                "net.reconnect", track=self.node_id, cat="net"
            )
        for attempt in range(self._max_reconnect_attempts):
            if self._closed.is_set():
                break
            try:
                self.connect()
            except (OSError, wire.WireError):
                self._backoff.wait(attempt)
                continue
            self.reconnects += 1
            if self.metrics is not None:
                self.metrics.counter("net.shm.reconnects").inc()
            if self.tracer is not None:
                self.tracer.end(span, attempts=attempt + 1, ok=True)
            return
        if self.tracer is not None:
            self.tracer.end(
                span, attempts=self._max_reconnect_attempts, ok=False
            )
        raise wire.WireError(
            f"{self.node_id}: could not reconnect to {self.path}"
        )

    def close(self) -> None:
        self._closed.set()
        self._drop_connection()
        self._channel.close()

    # -- sending ---------------------------------------------------------------

    def send(self, message: Message) -> bool:
        if self._closed.is_set():
            return False
        with self._send_lock:
            action = (
                self._faults.next_send() if self._faults is not None
                else FaultAction()
            )
            if action.reset:
                self._drop_connection()
                return False
            if self._out is None:
                try:
                    self._reconnect()
                except (OSError, wire.WireError):
                    return False
            if action.delay:
                time.sleep(action.delay)
            try:
                return self._channel.send(message)
            except (OSError, wire.WireError):
                return False

    def _write_message(self, message: Message) -> None:
        out_ring = self._out
        if out_ring is None:
            raise OSError("not connected")
        buffers = shm_frame_buffers(
            wire.message_frame(message, raw=True), self.codec
        )
        n = out_ring.write(buffers)
        if n == 0:
            self._drop_connection()
            raise OSError("shm ring closed under the send")
        _ring_doorbell(self._sock)
        self.bytes_sent += n
        self.frames_sent += 1
        if self.metrics is not None:
            self.metrics.counter("net.shm.bytes_sent").inc(n)
            self.metrics.counter("net.shm.frames_sent").inc()

    # -- receiving -------------------------------------------------------------

    def _read_loop(self, in_ring: ShmRing, sock: socket.socket) -> None:
        peer_gone = False
        while not self._closed.is_set() and self._in is in_ring:
            view = in_ring.read(timeout=0)
            if view is None:
                # A dead server's last replies are still drained above
                # before the hangup ends the loop.
                if in_ring.closed or peer_gone:
                    break
                peer_gone = not _await_doorbell(sock)
                continue
            try:
                frame = decode_shm_frame(view, self.codec)
                if frame.get("kind") == "reply":
                    # Replies outlive the ring slot (the requesting
                    # thread reads them later): copy arrays out now.
                    payload = _own_arrays(frame.get("payload") or {})
                    ctx = frame.get("ctx")
                    if isinstance(ctx, dict):
                        payload[TRACE_CTX_KEY] = ctx
                    self._on_reply(int(frame["in_reply_to"]), payload)
            except wire.WireError:
                break
            finally:
                in_ring.advance()
        with self._send_lock:
            if self._in is in_ring:
                self._sock = None


# -- the server ----------------------------------------------------------------


class ShmServer:
    """Accepts shm links over a Unix socket; feeds a shared ServerCore."""

    def __init__(
        self,
        core: ServerCore,
        path: "str | None" = None,
        tracer: "typing.Any | None" = None,
        metrics: "typing.Any | None" = None,
    ):
        self.core = core
        self.tracer = tracer
        self.metrics = metrics
        self.bytes_sent = 0
        self.path = path or os.path.join(
            tempfile.gettempdir(),
            f"elan-peer-{os.getpid()}-{uuid.uuid4().hex[:8]}.sock",
        )
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            self._listener.bind(self.path)
        except OSError:
            try:
                os.unlink(self.path)
            except FileNotFoundError:
                pass
            self._listener.bind(self.path)
        self._listener.listen(16)
        self._closed = threading.Event()
        self._accept_thread: "threading.Thread | None" = None
        self._connections: "list[tuple[socket.socket, ShmRing, ShmRing]]" = []
        self._conn_lock = threading.Lock()
        self.connections_accepted = 0
        self.handshakes_rejected = 0

    def start(self) -> "ShmServer":
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="shm-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                break
            threading.Thread(
                target=self._serve_connection, args=(conn,),
                name="shm-serve", daemon=True,
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        in_ring = out_ring = None
        try:
            frame = wire.read_frame(conn, "json")
            try:
                handshake = wire.check_handshake(frame, binary=True)
                names = (frame or {}).get("shm")
                if not isinstance(names, dict):
                    raise wire.WireError("shm hello names no segments")
                in_ring = ShmRing(name=str(names["c2s"]))
                out_ring = ShmRing(name=str(names["s2c"]))
            except (KeyError, FileNotFoundError) as exc:
                raise wire.WireError(f"bad shm bootstrap: {exc}") from exc
            except wire.WireError:
                raise
        except wire.WireError as exc:
            self.handshakes_rejected += 1
            try:
                wire.write_frame(conn, wire.reject_frame(str(exc)), "json")
            except OSError:
                pass
            conn.close()
            for ring in (in_ring, out_ring):
                if ring is not None:
                    ring.close(unlink=True)
            return
        except OSError:
            conn.close()
            return
        try:
            wire.write_frame(
                conn,
                wire.welcome_frame(
                    self.core.node_id, handshake.codec, binary=True,
                    epoch=getattr(self.core, "epoch", None),
                ),
                "json",
            )
        except OSError:
            conn.close()
            for ring in (in_ring, out_ring):
                ring.close(unlink=True)
            return
        self.connections_accepted += 1
        if self.tracer is not None:
            self.tracer.instant(
                "net.accept", track=self.core.node_id, cat="net",
                peer=handshake.node, codec=handshake.codec, binary=True,
                transport="shm",
            )
        with self._conn_lock:
            self._connections.append((conn, in_ring, out_ring))
        conn.setblocking(False)
        try:
            self._serve_rings(conn, in_ring, out_ring, handshake.codec)
        finally:
            with self._conn_lock:
                entry = (conn, in_ring, out_ring)
                if entry in self._connections:
                    self._connections.remove(entry)
            try:
                conn.close()
            except OSError:
                pass
            # The server unlinks too: if the client crashed between
            # creating and unlinking, this (or the client's resource
            # tracker) removes the name — never both successfully.
            in_ring.close(unlink=True)
            out_ring.close(unlink=True)

    def _serve_rings(
        self, conn: socket.socket, in_ring: ShmRing, out_ring: ShmRing,
        codec: str,
    ) -> None:
        client_gone = False
        while not self._closed.is_set():
            view = in_ring.read(timeout=0)
            if view is None:
                # A crashed client's in-flight requests drain above
                # before the doorbell EOF ends the connection.
                if in_ring.closed or client_gone:
                    return
                client_gone = not _await_doorbell(conn)
                continue
            try:
                frame = decode_shm_frame(view, codec)
                t_recv = time.perf_counter()
                if frame.get("kind") != "msg":
                    continue
                message = wire.decode_message(frame)
                # Dispatch while the views are live; the mailbox copies
                # what it keeps.  Advance only after the handler ran.
                reply = self.core.dispatch(message)
            except wire.WireError:
                return
            finally:
                in_ring.advance()
            reply_buffers = shm_frame_buffers(
                wire.reply_frame(
                    self.core.node_id, message.msg_id, reply, raw=True,
                    ctx={
                        "node": self.core.node_id,
                        "epoch": self.core.epoch,
                        "recv": t_recv,
                        "sent": time.perf_counter(),
                    },
                ),
                codec,
            )
            n = out_ring.write(reply_buffers)
            if n == 0:
                return
            _ring_doorbell(conn)
            self.bytes_sent += n
            if self.metrics is not None:
                self.metrics.counter("net.shm.bytes_sent").inc(n)
                self.metrics.counter("net.shm.frames_sent").inc()

    def close(self) -> None:
        self._closed.set()
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass
        with self._conn_lock:
            connections, self._connections = self._connections, []
        for conn, in_ring, out_ring in connections:
            in_ring.mark_closed()
            out_ring.mark_closed()
            try:
                conn.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)


def shm_link(
    path: str,
    node_id: str,
    fault_plan: "FaultPlan | None" = None,
    ack_timeout: float = 0.5,
    max_attempts: int = 10,
    codec: str = "json",
    tracer: "typing.Any | None" = None,
    metrics: "typing.Any | None" = None,
    capacity: int = DEFAULT_SHM_CAPACITY,
    max_reconnect_attempts: int = 2,
) -> "tuple":
    """A connected reliable shm client; returns ``(link, transport)``."""
    from .transport import ReliableLink

    link = ReliableLink(
        node_id, ack_timeout=ack_timeout, max_attempts=max_attempts,
        tracer=tracer, metrics=metrics,
    )
    transport = ShmTransport(
        path, node_id, on_reply=link.on_reply, codec=codec,
        fault_plan=fault_plan, tracer=tracer, metrics=metrics,
        capacity=capacity, max_reconnect_attempts=max_reconnect_attempts,
    )
    transport.connect()
    return link.attach(transport), transport


class ShmPeerHost:
    """Shared-memory peer mesh with TCP fallback for remote peers.

    ``serve`` starts one :class:`ShmServer` per worker; addresses are
    ``shm://<uds-path>``.  ``connect`` dispatches on the address scheme:
    ``shm://`` dials the ring-buffer link, ``tcp://`` (a peer on
    another host, or one that opted out) falls back to exactly the
    :class:`~repro.net.peers.TcpPeerHost` link — so mixed meshes
    degrade per-link, never per-job.
    """

    def __init__(self, capacity: int = DEFAULT_SHM_CAPACITY):
        self.capacity = capacity
        self._servers: "dict[str, ShmServer]" = {}
        self._lock = threading.Lock()

    def serve(self, core: ServerCore, worker_id: str) -> str:
        server = ShmServer(
            core, tracer=core.tracer, metrics=core.metrics
        ).start()
        addr = f"shm://{server.path}"
        with self._lock:
            self._servers[addr] = server
        return addr

    def connect(
        self,
        addr: str,
        node_id: str,
        fault_plan=None,
        ack_timeout: float = 0.5,
        max_attempts: int = 10,
        tracer=None,
        metrics=None,
    ):
        from .peers import peer_scheme

        scheme = peer_scheme(addr)
        if scheme == "tcp":
            from .peers import TcpPeerHost

            return TcpPeerHost().connect(
                addr, node_id, fault_plan=fault_plan,
                ack_timeout=ack_timeout, max_attempts=max_attempts,
                tracer=tracer, metrics=metrics,
            )
        if scheme != "shm":
            raise ValueError(
                f"ShmPeerHost cannot connect to {addr!r} "
                f"(scheme {scheme!r} has no shm or tcp path)"
            )
        path = addr[len("shm://"):]
        if not path:
            raise ValueError(f"malformed shm peer address: {addr!r}")
        if not os.path.exists(path):
            raise TransportClosed(f"no peer serving {addr!r}")
        try:
            link, _transport = shm_link(
                path, node_id, fault_plan=fault_plan,
                ack_timeout=ack_timeout, max_attempts=max_attempts,
                tracer=tracer, metrics=metrics, capacity=self.capacity,
            )
        except (OSError, wire.WireError) as exc:
            raise TransportClosed(f"no peer serving {addr!r}: {exc}") from exc
        return link

    def release(self, addr: str) -> None:
        with self._lock:
            server = self._servers.pop(addr, None)
        if server is not None:
            server.close()

    def close(self) -> None:
        with self._lock:
            servers, self._servers = list(self._servers.values()), {}
        for server in servers:
            server.close()
