"""Chunked, pipelined state replication over the reliable message layer.

The monolithic ``STATE_UPLOAD`` path serializes a whole snapshot into a
single message — one giant frame, one giant resend on any fault.  This
module streams the same snapshot as a *blob* cut into fixed-size chunks:

* :class:`StateBlob` — the sender side.  Encodes a state dict once into
  a gather list of byte views (``[4B header_len][header][segments...]``,
  arrays contributing their buffers directly — no base64, no flattening
  copy) and slices chunks across it on demand.
* :class:`ChunkAssembler` — the receiver side.  One preallocated
  buffer, per-chunk digest verification, duplicate accounting, and a
  whole-blob digest check before anything is decoded.
* :class:`ChunkStore` — server-side bookkeeping: one in-flight
  assembler per sender, plus the reply shapes for ``STATE_CHUNK`` /
  ``STATE_DONE``.
* :class:`ChunkedUploader` / :class:`ChunkedFetcher` — client loops
  that push (or pull) chunks through a :class:`~repro.net.ReliableLink`
  with a small pipeline window.

Because every chunk rides an ordinary reliable request, resume after a
connection reset is free: acked chunks are never resent — the link
retries only the in-flight message ids — and the assembler keeps what
it has, so an upload continues from the last acked chunk rather than
restarting.  The same property holds verbatim on ``InMemoryTransport``
and ``TcpTransport``; chunking happens *above* the transport seam.

Sharded migration
-----------------

On top of the chunk geometry sits a deterministic *shard plan*
(:func:`shard_ranges` / :meth:`StateBlob.shard_plan`): the blob is
partitioned into ``k`` contiguous, chunk-aligned, digest-addressed
shards.  Because every healthy worker holds a bit-identical replica,
any of them can encode the same blob and serve any shard of it —
:class:`ShardStore` is that owner-side registry (frozen bytes, TTL
eviction, chunk serving), and :class:`ShardedFetcher` is the joiner
side: one pipelined fetch loop per source peer concurrently (fan-in
bandwidth instead of the single-uploader bottleneck), per-shard
digests for delta rejoin (matching shards are adopted from a stale
local blob instead of fetched), and re-planning onto surviving owners
— or the AM's full copy — when a shard owner dies mid-fetch.
"""

from __future__ import annotations

import hashlib
import math
import secrets
import threading
import time
import typing

from ..coordination.faults import ExponentialBackoff
from ..coordination.messages import MessageType
from . import wire
from .transport import RetryableError
from .wire import WireError, _flat_view

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..observability import MetricRegistry, Tracer
    from .transport import ReliableLink

#: Default chunk size.  Small enough that even test-scale snapshots cut
#: into several chunks (exercising resume paths), large enough that the
#: per-chunk request overhead is noise against the copy it avoids.
DEFAULT_CHUNK_BYTES = 256 * 1024

_LENGTH = wire._LENGTH


def _digest(data) -> str:
    return hashlib.sha256(_flat_view(data)).hexdigest()


def shard_ranges(
    total_chunks: int, chunk_bytes: int, total_bytes: int, count: int,
) -> "list[dict]":
    """The deterministic shard plan for one blob geometry.

    The chunk sequence space is partitioned into ``count`` contiguous,
    chunk-aligned ranges (never more shards than chunks); remainder
    chunks go to the lowest-indexed shards, so the partition is a pure
    function of the geometry — every party (AM, shard owners, joiners)
    derives the identical plan without exchanging it.  Each shard is a
    dict of ``index`` plus half-open chunk/byte ranges; digests are
    added by whoever holds the bytes (:meth:`StateBlob.shard_plan`).
    """
    total_chunks = int(total_chunks)
    total_bytes = int(total_bytes)
    chunk_bytes = int(chunk_bytes)
    if count < 1:
        raise ValueError(f"shard count must be positive, got {count}")
    if total_chunks != max(1, math.ceil(max(0, total_bytes) / chunk_bytes)):
        raise WireError(
            f"shard plan claims {total_chunks} chunks for {total_bytes} "
            f"bytes at {chunk_bytes} bytes/chunk"
        )
    count = min(int(count), total_chunks)
    base, extra = divmod(total_chunks, count)
    shards: "list[dict]" = []
    start_chunk = 0
    for index in range(count):
        end_chunk = start_chunk + base + (1 if index < extra else 0)
        start_byte = start_chunk * chunk_bytes
        end_byte = min(end_chunk * chunk_bytes, total_bytes)
        shards.append({
            "index": index,
            "start_chunk": start_chunk,
            "end_chunk": end_chunk,
            "start_byte": start_byte,
            "end_byte": end_byte,
        })
        start_chunk = end_chunk
    return shards


class StateBlob:
    """An encoded snapshot: a gather list of byte views plus digests.

    The encode is zero-copy for every contiguous array — segments are
    ``memoryview``\\ s over the live buffers — so the blob must be
    consumed (uploaded or copied) before those arrays are mutated.
    Uploads happen at commit boundaries while training is paused, which
    gives exactly that window.
    """

    def __init__(self, buffers: "list[memoryview | bytes]", codec: str,
                 chunk_bytes: int = DEFAULT_CHUNK_BYTES):
        if chunk_bytes < 1:
            raise ValueError("chunk_bytes must be positive")
        self.codec = codec
        self.chunk_bytes = int(chunk_bytes)
        self._views = [_flat_view(buffer) for buffer in buffers]
        self._starts: "list[int]" = []
        offset = 0
        for view in self._views:
            self._starts.append(offset)
            offset += view.nbytes
        self.total_bytes = offset
        self.total_chunks = max(1, math.ceil(self.total_bytes / self.chunk_bytes))
        hasher = hashlib.sha256()
        for view in self._views:
            hasher.update(view)
        self.digest = hasher.hexdigest()

    @classmethod
    def encode(cls, state: dict, codec: str = "json",
               chunk_bytes: int = DEFAULT_CHUNK_BYTES) -> "StateBlob":
        """Encode a state dict into a blob without flattening it."""
        header_obj, segments = wire.split_buffers(state)
        header_obj = {"state": header_obj,
                      "__segs__": [seg.nbytes for seg in segments]}
        header = wire.encode_frame(header_obj, codec)
        buffers = [_LENGTH.pack(len(header)), header, *segments]
        return cls(buffers, codec, chunk_bytes)

    def chunk(self, seq: int) -> "memoryview | bytes":
        """Bytes of chunk ``seq`` — a view when it lies inside one
        segment, a joined copy when it straddles segment boundaries."""
        if not 0 <= seq < self.total_chunks:
            raise IndexError(f"chunk {seq} of {self.total_chunks}")
        start = seq * self.chunk_bytes
        end = min(start + self.chunk_bytes, self.total_bytes)
        parts = []
        for view, vstart in zip(self._views, self._starts):
            vend = vstart + view.nbytes
            if vend <= start or vstart >= end:
                continue
            parts.append(view[max(start, vstart) - vstart:min(end, vend) - vstart])
        if len(parts) == 1:
            return parts[0]
        return b"".join(bytes(part) for part in parts)

    def chunk_digest(self, seq: int) -> str:
        return _digest(self.chunk(seq))

    def byte_range(self, start: int, end: int) -> bytes:
        """A copy of the blob's bytes in ``[start, end)``."""
        if not 0 <= start <= end <= self.total_bytes:
            raise IndexError(f"byte range [{start}, {end}) of {self.total_bytes}")
        parts = []
        for view, vstart in zip(self._views, self._starts):
            vend = vstart + view.nbytes
            if vend <= start or vstart >= end:
                continue
            parts.append(view[max(start, vstart) - vstart:min(end, vend) - vstart])
        return b"".join(bytes(part) for part in parts)

    def tobytes(self) -> bytes:
        """A frozen copy of the whole blob (shard owners freeze this
        at the commit boundary; the views themselves alias live
        tensors that mutate once training resumes)."""
        return self.byte_range(0, self.total_bytes)

    def shard_plan(self, count: int) -> "list[dict]":
        """:func:`shard_ranges` for this blob, digests filled in.

        Each shard's sha256 covers exactly its byte range, and the
        ranges tile the blob — so hashing the shards' bytes in index
        order reproduces :attr:`digest` (the composition property the
        delta-rejoin digest exchange relies on).
        """
        shards = shard_ranges(
            self.total_chunks, self.chunk_bytes, self.total_bytes, count
        )
        for shard in shards:
            shard["digest"] = _digest(
                self.byte_range(shard["start_byte"], shard["end_byte"])
            )
        return shards

    def describe(self, transfer_id: str) -> dict:
        """The transfer descriptor shipped inside join offers."""
        return {
            "transfer_id": transfer_id,
            "total_bytes": self.total_bytes,
            "total_chunks": self.total_chunks,
            "chunk_bytes": self.chunk_bytes,
            "codec": self.codec,
            "digest": self.digest,
        }


def decode_state_blob(data, codec: "str | None" = None) -> dict:
    """Decode a reassembled blob back into a state dict (zero-copy:
    arrays are ``np.frombuffer`` views over ``data``)."""
    view = _flat_view(data)
    if view.nbytes < _LENGTH.size:
        raise WireError("state blob shorter than its header prefix")
    (header_len,) = _LENGTH.unpack(view[:_LENGTH.size])
    if _LENGTH.size + header_len > view.nbytes:
        raise WireError("state blob header overruns the blob")
    header = wire.decode_frame(
        bytes(view[_LENGTH.size:_LENGTH.size + header_len]), codec or "json"
    )
    seg_lens = header.get("__segs__")
    if not isinstance(seg_lens, list) or not all(
        isinstance(n, int) and n >= 0 for n in seg_lens
    ):
        raise WireError("state blob carries no valid segment table")
    expected = _LENGTH.size + header_len + sum(seg_lens)
    if expected != view.nbytes:
        raise WireError(
            f"state blob is {view.nbytes} bytes but segments need {expected}"
        )
    segments, offset = [], _LENGTH.size + header_len
    for length in seg_lens:
        segments.append(view[offset:offset + length])
        offset += length
    return wire.join_buffers(header.get("state"), segments)


class ChunkAssembler:
    """Receiver half: collect verified chunks into one buffer.

    Duplicate chunks (retransmissions that raced their ack) are counted
    and dropped; a corrupt chunk — wrong length or failed digest —
    raises :class:`WireError` so the sender's request errors instead of
    silently poisoning the snapshot.
    """

    def __init__(self, transfer_id: str, total_bytes: int, total_chunks: int,
                 chunk_bytes: int, codec: str = "json",
                 clock: "typing.Callable[[], float]" = time.monotonic):
        total_bytes = int(total_bytes)
        total_chunks = int(total_chunks)
        chunk_bytes = int(chunk_bytes)
        if total_bytes < 0 or chunk_bytes < 1:
            raise WireError("invalid transfer geometry")
        if total_chunks != max(1, math.ceil(total_bytes / chunk_bytes)):
            raise WireError(
                f"transfer claims {total_chunks} chunks for {total_bytes} "
                f"bytes at {chunk_bytes} bytes/chunk"
            )
        self.transfer_id = transfer_id
        self.total_bytes = total_bytes
        self.total_chunks = total_chunks
        self.chunk_bytes = chunk_bytes
        self.codec = codec
        self.buffer = bytearray(total_bytes)
        self.received: "set[int]" = set()
        self.duplicates = 0
        self._clock = clock
        self.started_at = clock()
        self.last_activity = self.started_at

    def _expected_len(self, seq: int) -> int:
        start = seq * self.chunk_bytes
        return min(start + self.chunk_bytes, self.total_bytes) - start

    def add(self, seq: int, data, digest: "str | None" = None) -> bool:
        """Verify and store one chunk; True if it was fresh."""
        if not isinstance(seq, int) or not 0 <= seq < self.total_chunks:
            raise WireError(f"chunk seq {seq!r} out of range")
        view = _flat_view(data)
        if view.nbytes != self._expected_len(seq):
            raise WireError(
                f"chunk {seq} is {view.nbytes} bytes, "
                f"expected {self._expected_len(seq)}"
            )
        if digest is not None and _digest(view) != digest:
            raise WireError(f"chunk {seq} failed its digest check")
        self.last_activity = self._clock()
        if seq in self.received:
            self.duplicates += 1
            return False
        start = seq * self.chunk_bytes
        self.buffer[start:start + view.nbytes] = view
        self.received.add(seq)
        return True

    def adopt_shard(self, shard: dict, data, digest: "str | None" = None) -> int:
        """Install one whole shard's bytes (delta rejoin / sub-blob path).

        ``shard`` is a :func:`shard_ranges` entry; ``data`` must span
        exactly its byte range and (when given) match ``digest``.  All
        chunks the shard covers are marked received, so a transfer can
        be completed from a mix of adopted shards and fetched chunks.
        Returns the number of bytes adopted.
        """
        start_byte, end_byte = int(shard["start_byte"]), int(shard["end_byte"])
        start_chunk, end_chunk = int(shard["start_chunk"]), int(shard["end_chunk"])
        if not (
            0 <= start_byte <= end_byte <= self.total_bytes
            and 0 <= start_chunk <= end_chunk <= self.total_chunks
        ):
            raise WireError(f"shard out of range: {shard}")
        view = _flat_view(data)
        if view.nbytes != end_byte - start_byte:
            raise WireError(
                f"shard {shard.get('index')} is {view.nbytes} bytes, "
                f"expected {end_byte - start_byte}"
            )
        if digest is not None and _digest(view) != digest:
            raise WireError(
                f"shard {shard.get('index')} failed its digest check"
            )
        self.last_activity = self._clock()
        self.buffer[start_byte:end_byte] = view
        self.received.update(range(start_chunk, end_chunk))
        return view.nbytes

    def shard_view(self, shard: dict) -> memoryview:
        """The assembled bytes of one shard (its chunks must all be in)."""
        missing = [
            seq for seq in range(int(shard["start_chunk"]), int(shard["end_chunk"]))
            if seq not in self.received
        ]
        if missing:
            raise WireError(
                f"shard {shard.get('index')} incomplete: "
                f"{len(missing)} chunks missing"
            )
        return memoryview(self.buffer)[
            int(shard["start_byte"]):int(shard["end_byte"])
        ]

    @property
    def complete(self) -> bool:
        return len(self.received) == self.total_chunks

    @property
    def missing(self) -> int:
        return self.total_chunks - len(self.received)

    def finish(self, digest: "str | None" = None) -> memoryview:
        """Verify completeness (and the whole-blob digest) and return a
        view of the assembled blob."""
        if not self.complete:
            raise WireError(f"transfer incomplete: {self.missing} chunks missing")
        if digest is not None and _digest(self.buffer) != digest:
            raise WireError("assembled blob failed its digest check")
        return memoryview(self.buffer)

    def decode(self, digest: "str | None" = None) -> dict:
        return decode_state_blob(self.finish(digest), self.codec)


class ChunkStore:
    """Server-side chunk bookkeeping: one in-flight transfer per sender.

    This is deliberately transport- and policy-free — the application
    master wraps it with its own gating (only the planned uploader may
    upload; fetches follow the replication plan's rounds) while chaos
    and property tests drive it bare behind a ``ServerCore``.

    ``ttl`` bounds how long an idle assembler (a sender that died
    mid-upload, or a finished sub-blob nobody finalized) is retained —
    mirroring ``ServerCore.dedup_ttl`` — so a long-lived AM does not
    accumulate dead sub-blob state until the next plan mint.  The sweep
    runs inline on every handled message; evictions are counted under
    ``net.transfers.evicted``.
    """

    #: default idle TTL; deliberately the same bound as
    #: ``ServerCore.dedup_ttl`` — a transfer idle longer than the reply
    #: cache's memory of it cannot be resumed exactly-once anyway.
    DEFAULT_TTL = 120.0

    def __init__(self, metrics: "MetricRegistry | None" = None,
                 ttl: "float | None" = DEFAULT_TTL,
                 clock: "typing.Callable[[], float]" = time.monotonic):
        self._inflight: "dict[str, ChunkAssembler]" = {}
        self.metrics = metrics
        self.ttl = ttl
        self._clock = clock
        self.completed = 0
        self.evicted = 0

    def assembler(self, sender: str) -> "ChunkAssembler | None":
        return self._inflight.get(sender)

    def evict_expired(self, now: "float | None" = None) -> "list[str]":
        """Drop assemblers idle past the TTL; returns evicted senders."""
        if self.ttl is None or self.ttl <= 0:
            return []
        if now is None:
            now = self._clock()
        stale = [
            sender for sender, assembler in self._inflight.items()
            if now - assembler.last_activity > self.ttl
        ]
        for sender in stale:
            del self._inflight[sender]
            self.evicted += 1
            if self.metrics is not None:
                self.metrics.counter("net.transfers.evicted").inc()
        return stale

    def handle_chunk(self, sender: str, payload: dict) -> dict:
        """Apply one ``STATE_CHUNK``; returns the ack payload."""
        self.evict_expired()
        transfer_id = payload.get("transfer_id")
        if not transfer_id:
            raise WireError("chunk carries no transfer id")
        assembler = self._inflight.get(sender)
        if assembler is None or assembler.transfer_id != transfer_id:
            assembler = ChunkAssembler(
                transfer_id=str(transfer_id),
                total_bytes=payload.get("total_bytes", -1),
                total_chunks=payload.get("total_chunks", -1),
                chunk_bytes=payload.get("chunk_bytes", 0),
                codec=str(payload.get("codec", "json")),
                clock=self._clock,
            )
            self._inflight[sender] = assembler
        fresh = assembler.add(
            payload.get("seq"), payload.get("data", b""), payload.get("digest")
        )
        if self.metrics is not None:
            self.metrics.counter(
                "net.chunks.received" if fresh else "net.chunks.duplicate"
            ).inc()
            if fresh:
                self.metrics.counter("net.chunks.bytes_received").inc(
                    assembler._expected_len(payload["seq"])
                )
        return {
            "ok": True,
            "seq": payload.get("seq"),
            "have": len(assembler.received),
            "missing": assembler.missing,
        }

    def handle_done(
        self, sender: str, payload: dict
    ) -> "tuple[dict, ChunkAssembler | None]":
        """Apply a ``STATE_DONE``; returns ``(reply, assembler)``.

        The assembler is returned (and retired from the in-flight map)
        only when the transfer is complete and its whole-blob digest
        verifies; otherwise the reply says what is wrong and the
        transfer stays resumable.
        """
        self.evict_expired()
        transfer_id = payload.get("transfer_id")
        assembler = self._inflight.get(sender)
        if assembler is None or assembler.transfer_id != transfer_id:
            return {"ok": False, "reason": "unknown transfer"}, None
        if not assembler.complete:
            return {"ok": False, "reason": "incomplete",
                    "missing": assembler.missing}, None
        assembler.finish(payload.get("digest"))  # raises WireError on corruption
        del self._inflight[sender]
        self.completed += 1
        if self.metrics is not None:
            self.metrics.counter("net.transfers.completed").inc()
            self.metrics.histogram("net.transfer_seconds").observe(
                time.monotonic() - assembler.started_at
            )
        return {
            "ok": True,
            "chunks": assembler.total_chunks,
            "payload_bytes": assembler.total_bytes,
            "duplicates": assembler.duplicates,
        }, assembler

    def abandon(self, sender: "str | None" = None) -> None:
        """Drop in-flight state for one sender (or everyone)."""
        if sender is None:
            self._inflight.clear()
        else:
            self._inflight.pop(sender, None)


class _ShardEntry:
    """One frozen blob a shard owner serves (registered per transfer)."""

    __slots__ = (
        "data", "total_bytes", "total_chunks", "chunk_bytes",
        "registered_at", "last_served", "_chunk_digests",
    )

    def __init__(self, data: bytes, chunk_bytes: int, now: float):
        self.data = data
        self.total_bytes = len(data)
        self.chunk_bytes = int(chunk_bytes)
        self.total_chunks = max(1, math.ceil(self.total_bytes / self.chunk_bytes))
        self.registered_at = now
        self.last_served = now
        self._chunk_digests: "dict[int, str]" = {}

    def chunk(self, seq: int) -> memoryview:
        start = seq * self.chunk_bytes
        return memoryview(self.data)[
            start:min(start + self.chunk_bytes, self.total_bytes)
        ]

    def chunk_digest(self, seq: int) -> str:
        digest = self._chunk_digests.get(seq)
        if digest is None:
            digest = self._chunk_digests[seq] = _digest(self.chunk(seq))
        return digest


class ShardStore:
    """Owner-side shard serving: frozen blobs answered chunk by chunk.

    Every healthy replica holds the full training state, so at a commit
    boundary each elected shard owner encodes the (bit-identical) blob,
    freezes its bytes here, and keeps training — the peer server thread
    then answers joiners' ``STATE_FETCH`` requests for *any* chunk of
    it.  Serving the whole frozen blob (not just the owned shards) is
    what makes failover re-planning real: when a shard owner dies
    mid-fetch, any surviving owner can serve the dead owner's shards.

    Entries are evicted on a TTL (mirroring :class:`ChunkStore`) and
    replaced on re-registration, so long-lived workers hold at most a
    few adjustment snapshots transiently.

    ``on_serve`` is a chaos seam: called with the running count of
    served chunks *before* each reply, so a fault plan can kill the
    owner mid-fetch at a deterministic serve index.
    """

    def __init__(self, metrics: "MetricRegistry | None" = None,
                 ttl: "float | None" = ChunkStore.DEFAULT_TTL,
                 clock: "typing.Callable[[], float]" = time.monotonic,
                 on_serve: "typing.Callable[[int], None] | None" = None):
        self._entries: "dict[str, _ShardEntry]" = {}
        self._lock = threading.Lock()
        self.metrics = metrics
        self.ttl = ttl
        self._clock = clock
        self.on_serve = on_serve
        self.served = 0
        self.bytes_served = 0
        self.evicted = 0

    def register(self, transfer_id: str, blob: "StateBlob") -> int:
        """Freeze ``blob`` under ``transfer_id``; returns frozen bytes."""
        data = blob.tobytes()
        now = self._clock()
        with self._lock:
            self._evict_expired_locked(now)
            self._entries[str(transfer_id)] = _ShardEntry(
                data, blob.chunk_bytes, now
            )
        if self.metrics is not None:
            self.metrics.counter("net.shards.registered").inc()
            self.metrics.counter("net.shards.bytes_frozen").inc(len(data))
        return len(data)

    def release(self, transfer_id: str) -> None:
        with self._lock:
            self._entries.pop(str(transfer_id), None)

    def holds(self, transfer_id: str) -> bool:
        with self._lock:
            return str(transfer_id) in self._entries

    def _evict_expired_locked(self, now: float) -> None:
        if self.ttl is None or self.ttl <= 0:
            return
        for transfer_id in [
            t for t, e in self._entries.items()
            if now - e.last_served > self.ttl
        ]:
            del self._entries[transfer_id]
            self.evicted += 1
            if self.metrics is not None:
                self.metrics.counter("net.shards.evicted").inc()

    def handle_fetch(self, sender: str, payload: dict) -> dict:
        """Serve one chunk of a frozen blob (the peer-server handler)."""
        transfer_id = str(payload.get("transfer_id"))
        now = self._clock()
        with self._lock:
            self._evict_expired_locked(now)
            entry = self._entries.get(transfer_id)
            if entry is None:
                return {"ok": False, "reason": "unknown transfer"}
            entry.last_served = now
            seq = payload.get("seq")
            if not isinstance(seq, int) or not 0 <= seq < entry.total_chunks:
                return {"ok": False, "reason": f"bad seq {seq!r}"}
            if self.on_serve is not None:
                self.on_serve(self.served)
            chunk = entry.chunk(seq)
            digest = entry.chunk_digest(seq)
            self.served += 1
            self.bytes_served += chunk.nbytes
        if self.metrics is not None:
            self.metrics.counter("net.shards.served").inc()
            self.metrics.counter("net.shards.bytes_served").inc(chunk.nbytes)
        return {"ok": True, "seq": seq, "data": chunk, "digest": digest}


class TransferError(ConnectionError):
    """A chunked transfer failed permanently (digest, geometry, refusal)."""


class _RestartNeeded(Exception):
    """The receiver lost this transfer; start over with a fresh id."""


class _SeqFeed:
    """Thread-safe dispenser of chunk sequence numbers."""

    def __init__(self, total: int):
        self._next = 0
        self._total = total
        self._lock = threading.Lock()

    def take(self) -> "int | None":
        with self._lock:
            if self._next >= self._total:
                return None
            seq = self._next
            self._next += 1
            return seq


def _run_window(window: int, total: int, pump) -> None:
    """Run ``pump`` across a small thread pool (or inline for window 1).

    ``pump`` is called with a :class:`_SeqFeed`; the first exception any
    worker raises is re-raised here after all workers stop.
    """
    feed = _SeqFeed(total)
    errors: "list[BaseException]" = []

    def runner():
        try:
            pump(feed, errors)
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            errors.append(exc)

    workers = max(1, min(window, total))
    if workers == 1:
        runner()
    else:
        threads = [
            threading.Thread(target=runner, daemon=True) for _ in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    if errors:
        raise errors[0]


class ChunkedUploader:
    """Push a snapshot to the server as pipelined ``STATE_CHUNK`` s.

    ``window`` requests ride the link concurrently, so chunk ``k+1`` is
    being sliced and framed while ``k`` is still in flight — the
    pipelining half of the data plane.  ``window=1`` degrades to a
    deterministic serial upload, which chaos tests use to aim faults at
    exact chunk indices.
    """

    def __init__(self, link: "ReliableLink", chunk_bytes: int = DEFAULT_CHUNK_BYTES,
                 window: int = 4, codec: str = "json",
                 tracer: "Tracer | None" = None,
                 metrics: "MetricRegistry | None" = None):
        self.link = link
        self.chunk_bytes = int(chunk_bytes)
        self.window = max(1, int(window))
        self.codec = codec
        self.tracer = tracer
        self.metrics = metrics

    #: how many times a single ``upload`` restarts a transfer whose
    #: receiver lost the assembler (an AM failover mid-stream) before
    #: giving up with :class:`TransferError`.
    MAX_RESTARTS = 3
    #: how many fenced (``am_superseded``) rejections a single
    #: ``upload`` rides out while the transport is being redirected to
    #: the successor AM.
    MAX_FENCED = 5

    def upload(self, state: dict, transfer_id: "str | None" = None,
               context: "dict | None" = None) -> dict:
        """Encode, stream, and finalize one snapshot; returns a summary.

        A receiver that lost the transfer (an AM failover dropped the
        half-built assembler) answers ``{"restart": True}``; the upload
        then starts over under a *fresh* transfer id — the successor
        has no chunks, so resume is impossible but a clean restart is
        cheap and bounded.
        """
        blob = StateBlob.encode(state, self.codec, self.chunk_bytes)
        fixed_id = transfer_id is not None
        restarts = 0
        fenced = 0
        while True:
            try:
                return self._upload_once(blob, transfer_id, context)
            except _RestartNeeded as exc:
                restarts += 1
                if restarts > self.MAX_RESTARTS:
                    raise TransferError(
                        f"upload abandoned after {restarts - 1} restarts: "
                        f"{exc}"
                    ) from exc
                if self.metrics is not None:
                    self.metrics.counter("net.transfers.restarted").inc()
                if self.tracer is not None:
                    self.tracer.instant(
                        "net.transfer_restart", track=self.link.node_id,
                        cat="net", attempt=restarts, reason=str(exc),
                    )
                # A caller-fixed id (the sharded plan's deterministic
                # ``shard/g{generation}``) is kept across restarts: the
                # receiver that answered ``restart`` has no assembler, so
                # re-sending from seq 0 under the same id simply creates
                # a fresh one — and every party that derived the id from
                # the plan keeps agreeing on it.  Auto-generated ids are
                # refreshed as before.
                if not fixed_id:
                    transfer_id = None
            except RetryableError as exc:
                if exc.reason != "am_superseded":
                    raise
                fenced += 1
                if fenced > self.MAX_FENCED:
                    raise
                time.sleep(0.05 * fenced)

    def _upload_once(self, blob: "StateBlob",
                     transfer_id: "str | None",
                     context: "dict | None") -> dict:
        transfer_id = transfer_id or f"{self.link.node_id}/{secrets.token_hex(4)}"
        base = blob.describe(transfer_id)

        def send_chunks():
            def pump(feed, errors):
                while not errors:
                    seq = feed.take()
                    if seq is None:
                        return
                    payload = dict(base)
                    payload.update(
                        seq=seq,
                        digest=blob.chunk_digest(seq),
                        data=blob.chunk(seq),
                    )
                    reply = self.link.request(MessageType.STATE_CHUNK, payload)
                    if reply.get("restart"):
                        raise _RestartNeeded(f"chunk {seq}: {reply}")
                    if not reply.get("ok"):
                        raise TransferError(f"chunk {seq} refused: {reply}")
                    if self.metrics is not None:
                        self.metrics.counter("net.chunks.sent").inc()

            _run_window(self.window, blob.total_chunks, pump)
            done = dict(base, **(context or {}))
            done.pop("chunk_bytes", None)
            reply = self.link.request(MessageType.STATE_DONE, done)
            if reply.get("restart"):
                raise _RestartNeeded(f"finalize: {reply}")
            if not reply.get("ok"):
                raise TransferError(f"transfer {transfer_id} refused: {reply}")
            return reply

        if self.tracer is not None:
            with self.tracer.span(
                "net.state_upload", track=self.link.node_id, cat="net",
                transfer_id=transfer_id, payload_bytes=blob.total_bytes,
                chunks=blob.total_chunks,
            ):
                reply = send_chunks()
        else:
            reply = send_chunks()
        if self.metrics is not None:
            self.metrics.counter("net.chunks.bytes_sent").inc(blob.total_bytes)
        return {
            "transfer_id": transfer_id,
            "chunks": blob.total_chunks,
            "payload_bytes": blob.total_bytes,
            "digest": blob.digest,
            "reply": reply,
        }


class ChunkedFetcher:
    """Pull a described snapshot from the server chunk by chunk.

    The server answers ``{"status": "pending"}`` while the fetcher's
    replication round has not opened yet (earlier rounds still copying);
    the fetcher backs off exponentially (``poll_interval`` doubling up
    to ``max_poll_interval``) until its round opens or ``timeout``
    passes — queued joiners stop hammering the AM while earlier fan-out
    rounds drain.
    """

    def __init__(self, link: "ReliableLink", window: int = 4,
                 poll_interval: float = 0.05, timeout: float = 30.0,
                 max_poll_interval: float = 1.0,
                 tracer: "Tracer | None" = None,
                 metrics: "MetricRegistry | None" = None):
        self.link = link
        self.window = max(1, int(window))
        self.poll_interval = poll_interval
        self.timeout = timeout
        self.max_poll_interval = max(poll_interval, max_poll_interval)
        self.tracer = tracer
        self.metrics = metrics

    def _backoff(self) -> "ExponentialBackoff":
        return ExponentialBackoff(
            base=self.poll_interval, factor=2.0,
            max_delay=self.max_poll_interval,
        )

    def fetch(self, descriptor: dict) -> dict:
        """Fetch, verify, and decode the snapshot named by ``descriptor``."""
        transfer_id = descriptor["transfer_id"]
        assembler = ChunkAssembler(
            transfer_id=transfer_id,
            total_bytes=descriptor["total_bytes"],
            total_chunks=descriptor["total_chunks"],
            chunk_bytes=descriptor["chunk_bytes"],
            codec=str(descriptor.get("codec", "json")),
        )
        deadline = time.monotonic() + self.timeout
        lock = threading.Lock()

        def pump(feed, errors):
            backoff = self._backoff()
            while not errors:
                seq = feed.take()
                if seq is None:
                    return
                attempt = 0
                while True:
                    reply = self.link.request(
                        MessageType.STATE_FETCH,
                        {"transfer_id": transfer_id, "seq": seq},
                    )
                    if reply.get("status") == "pending":
                        if time.monotonic() > deadline:
                            raise TransferError(
                                f"transfer {transfer_id} never opened: "
                                f"round still pending after {self.timeout}s"
                            )
                        backoff.wait(attempt)
                        attempt += 1
                        continue
                    if not reply.get("ok"):
                        raise TransferError(f"fetch of chunk {seq} refused: {reply}")
                    break
                with lock:
                    assembler.add(seq, reply.get("data", b""), reply.get("digest"))
                if self.metrics is not None:
                    self.metrics.counter("net.chunks.fetched").inc()

        def run():
            _run_window(self.window, assembler.total_chunks, pump)
            return assembler.decode(descriptor.get("digest"))

        if self.tracer is not None:
            with self.tracer.span(
                "net.state_fetch", track=self.link.node_id, cat="net",
                transfer_id=transfer_id,
                payload_bytes=assembler.total_bytes,
                chunks=assembler.total_chunks,
            ):
                state = run()
        else:
            state = run()
        if self.metrics is not None:
            self.metrics.counter("net.chunks.bytes_fetched").inc(
                assembler.total_bytes
            )
        return state


class ShardedFetcher:
    """Pull a snapshot as shards, one pipelined loop per source peer.

    The descriptor (minted by the AM) extends the monolithic shape with
    a ``shards`` list — each entry a :func:`shard_ranges` range plus its
    ground-truth ``digest`` (from the uploaded blob), the ``owner``
    worker elected to serve it, and that owner's peer ``addr``.  The
    fetch then proceeds in three stages:

    1. **Delta rejoin** — when the caller still holds a stale snapshot,
       it is encoded with the descriptor's geometry and shards whose
       digests already match are adopted locally, never fetched.
    2. **Fan-in** — remaining shards are grouped by owner and fetched
       concurrently, one thread (each running a ``window``-wide pipeline)
       per owner, after a round-gate probe against the AM.  Fan-in
       bandwidth replaces the single-uploader bottleneck.
    3. **Recovery** — a shard whose owner died mid-fetch (or whose bytes
       fail the digest check: a divergent replica) is re-planned onto
       the surviving owners in turn and finally onto the AM's own full
       copy, so one owner death never fails the join.

    Completion is reported to the AM (``{"complete": True}``) so its
    round gating can admit the next fan-in round — in sharded mode the
    chunks themselves never cross the AM link.
    """

    def __init__(self, link: "ReliableLink", connect=None, window: int = 4,
                 poll_interval: float = 0.05, timeout: float = 30.0,
                 max_poll_interval: float = 1.0,
                 tracer: "Tracer | None" = None,
                 metrics: "MetricRegistry | None" = None):
        #: the AM link — round gating, completion report, last-resort source
        self.link = link
        #: ``connect(addr) -> ReliableLink`` onto a peer; None disables
        #: peer fan-in entirely (every shard is fetched from the AM).
        self.connect = connect
        self.window = max(1, int(window))
        self.poll_interval = poll_interval
        self.timeout = timeout
        self.max_poll_interval = max(poll_interval, max_poll_interval)
        self.tracer = tracer
        self.metrics = metrics
        self.stats: "dict[str, int]" = {}

    def _backoff(self) -> "ExponentialBackoff":
        return ExponentialBackoff(
            base=self.poll_interval, factor=2.0,
            max_delay=self.max_poll_interval,
        )

    def _count(self, name: str, value: int = 1) -> None:
        self.stats[name] = self.stats.get(name, 0) + value
        if self.metrics is not None:
            self.metrics.counter(name).inc(value)

    # ------------------------------------------------------------------
    # stage 1: delta rejoin

    def _adopt_delta(self, assembler: "ChunkAssembler", shards: "list[dict]",
                     descriptor: dict, stale_state: "dict | None") -> "set[int]":
        """Adopt shards whose digests match a stale local snapshot."""
        if stale_state is None or not shards:
            return set()
        try:
            stale = StateBlob.encode(
                stale_state, str(descriptor.get("codec", "json")),
                int(descriptor["chunk_bytes"]),
            )
        except (WireError, ValueError, TypeError):
            return set()
        if (stale.total_bytes != assembler.total_bytes
                or stale.total_chunks != assembler.total_chunks):
            return set()  # geometry changed; nothing is adoptable
        local = {s["index"]: s for s in stale.shard_plan(len(shards))}
        adopted: "set[int]" = set()
        for shard in shards:
            mine = local.get(shard["index"])
            if mine is None or mine.get("digest") != shard.get("digest"):
                continue
            assembler.adopt_shard(
                shard,
                stale.byte_range(shard["start_byte"], shard["end_byte"]),
                shard.get("digest"),
            )
            adopted.add(shard["index"])
            self._count("net.shards.delta_skipped")
            self._count(
                "net.shards.delta_bytes_skipped",
                shard["end_byte"] - shard["start_byte"],
            )
        return adopted

    # ------------------------------------------------------------------
    # stage 2: AM round gate + per-owner fan-in

    def _await_round(self, transfer_id: str) -> None:
        deadline = time.monotonic() + self.timeout
        backoff = self._backoff()
        attempt = 0
        while True:
            reply = self.link.request(
                MessageType.STATE_FETCH,
                {"transfer_id": transfer_id, "probe": True},
            )
            if reply.get("status") != "pending":
                if not reply.get("ok"):
                    raise TransferError(f"round probe refused: {reply}")
                return
            if time.monotonic() > deadline:
                raise TransferError(
                    f"transfer {transfer_id} never opened: "
                    f"round still pending after {self.timeout}s"
                )
            backoff.wait(attempt)
            attempt += 1

    def _fetch_shard(self, peer, assembler: "ChunkAssembler",
                     transfer_id: str, shard: dict, source: str) -> None:
        """Fetch one shard's chunks through ``peer`` and adopt it."""
        start_chunk = int(shard["start_chunk"])
        nchunks = int(shard["end_chunk"]) - start_chunk
        length = int(shard["end_byte"]) - int(shard["start_byte"])
        buffer = bytearray(length)
        base_byte = int(shard["start_byte"])
        deadline = time.monotonic() + self.timeout
        lock = threading.Lock()
        backoff = self._backoff()

        def pump(feed, errors):
            while not errors:
                local = feed.take()
                if local is None:
                    return
                seq = start_chunk + local
                attempt = 0
                while True:
                    reply = peer.request(
                        MessageType.STATE_FETCH,
                        {"transfer_id": transfer_id, "seq": seq},
                    )
                    if reply.get("status") == "pending":
                        if time.monotonic() > deadline:
                            raise TransferError(
                                f"shard {shard['index']} chunk {seq} still "
                                f"pending after {self.timeout}s"
                            )
                        backoff.wait(attempt)
                        attempt += 1
                        continue
                    if not reply.get("ok"):
                        raise TransferError(
                            f"fetch of shard chunk {seq} refused: {reply}"
                        )
                    break
                data = _flat_view(reply.get("data", b""))
                digest = reply.get("digest")
                if digest is not None and _digest(data) != digest:
                    raise WireError(f"shard chunk {seq} failed its digest check")
                offset = seq * assembler.chunk_bytes - base_byte
                with lock:
                    buffer[offset:offset + data.nbytes] = data

        def run():
            _run_window(self.window, nchunks, pump)
            # the plan digest is ground truth from the uploaded blob: a
            # divergent owner replica fails here and triggers a re-plan
            assembler.adopt_shard(shard, buffer, shard.get("digest"))

        if self.tracer is not None:
            with self.tracer.span(
                "replicate.shard_fetch", track=self.link.node_id,
                cat="replicate", transfer_id=transfer_id,
                shard=int(shard["index"]), source=source,
                payload_bytes=length, chunks=nchunks,
            ):
                run()
        else:
            run()
        self._count("net.shards.fetched")
        self._count("net.shards.bytes_fetched", length)

    def _fan_in(self, assembler: "ChunkAssembler", transfer_id: str,
                pending: "list[dict]") -> "tuple[list[dict], set[str]]":
        """First pass: one thread per owner; returns (failed, dead_owners)."""
        by_owner: "dict[tuple, list[dict]]" = {}
        for shard in pending:
            by_owner.setdefault(
                (shard.get("owner"), shard.get("addr")), []
            ).append(shard)
        failed: "list[dict]" = []
        dead: "set[str]" = set()
        results_lock = threading.Lock()

        def owner_loop(owner, addr, shards):
            peer = None
            try:
                peer = self.connect(addr)
                for pos, shard in enumerate(shards):
                    try:
                        self._fetch_shard(
                            peer, assembler, transfer_id, shard, str(owner)
                        )
                    except (WireError, TransferError, ConnectionError, OSError):
                        with results_lock:
                            dead.add(str(owner))
                            failed.extend(shards[pos:])
                        return
            except (ConnectionError, OSError):
                with results_lock:
                    dead.add(str(owner))
                    failed.extend(shards)
            finally:
                if peer is not None:
                    try:
                        peer.close()
                    except Exception:  # noqa: BLE001 - best-effort teardown
                        pass

        threads = []
        for (owner, addr), shards in by_owner.items():
            if self.connect is None or addr is None:
                failed.extend(shards)  # no peer route: AM serves these
                continue
            threads.append(threading.Thread(
                target=owner_loop, args=(owner, addr, shards), daemon=True,
            ))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        return failed, dead

    # ------------------------------------------------------------------
    # stage 3: recovery onto surviving owners, then the AM

    def _recover(self, assembler: "ChunkAssembler", transfer_id: str,
                 shards: "list[dict]", all_shards: "list[dict]",
                 dead: "set[str]") -> None:
        survivors: "list[tuple[str, str]]" = []
        seen: "set[tuple]" = set()
        for shard in all_shards:
            owner, addr = shard.get("owner"), shard.get("addr")
            key = (owner, addr)
            if (addr is None or str(owner) in dead or key in seen):
                continue
            seen.add(key)
            survivors.append((str(owner), addr))
        for shard in shards:
            placed = False
            if self.connect is not None:
                for owner, addr in survivors:
                    if str(shard.get("owner")) == owner:
                        continue  # that owner already failed this shard
                    peer = None
                    try:
                        peer = self.connect(addr)
                        self._fetch_shard(
                            peer, assembler, transfer_id, shard, owner
                        )
                        placed = True
                    except (WireError, TransferError, ConnectionError, OSError):
                        dead.add(owner)
                        continue
                    finally:
                        if peer is not None:
                            try:
                                peer.close()
                            except Exception:  # noqa: BLE001
                                pass
                    break
            if not placed:
                # last resort: the AM's own full copy over the control link
                self._fetch_shard(
                    self.link, assembler, transfer_id, shard, "am"
                )
            self._count("net.shards.replans")
            survivors = [(o, a) for o, a in survivors if o not in dead]

    def _report_complete(self, transfer_id: str) -> None:
        reply = self.link.request(
            MessageType.STATE_FETCH,
            {"transfer_id": transfer_id, "complete": True},
        )
        if not reply.get("ok"):
            raise TransferError(f"completion report refused: {reply}")

    # ------------------------------------------------------------------

    def fetch(self, descriptor: dict, stale_state: "dict | None" = None) -> dict:
        """Fetch, verify, and decode the sharded snapshot ``descriptor``."""
        transfer_id = descriptor["transfer_id"]
        assembler = ChunkAssembler(
            transfer_id=transfer_id,
            total_bytes=descriptor["total_bytes"],
            total_chunks=descriptor["total_chunks"],
            chunk_bytes=descriptor["chunk_bytes"],
            codec=str(descriptor.get("codec", "json")),
        )
        shards = [dict(shard) for shard in descriptor.get("shards", [])]

        def run():
            adopted = self._adopt_delta(assembler, shards, descriptor,
                                        stale_state)
            pending = [s for s in shards if s["index"] not in adopted]
            self._await_round(transfer_id)
            if pending:
                failed, dead = self._fan_in(assembler, transfer_id, pending)
                if failed:
                    self._recover(assembler, transfer_id, failed, shards, dead)
            self._report_complete(transfer_id)
            return assembler.decode(descriptor.get("digest"))

        if self.tracer is not None:
            with self.tracer.span(
                "net.state_fetch", track=self.link.node_id, cat="net",
                transfer_id=transfer_id,
                payload_bytes=assembler.total_bytes,
                chunks=assembler.total_chunks, sharded=True,
                shards=len(shards),
            ):
                state = run()
        else:
            state = run()
        if self.metrics is not None:
            self.metrics.counter("net.chunks.bytes_fetched").inc(
                assembler.total_bytes
            )
        return state
