"""Chunked, pipelined state replication over the reliable message layer.

The monolithic ``STATE_UPLOAD`` path serializes a whole snapshot into a
single message — one giant frame, one giant resend on any fault.  This
module streams the same snapshot as a *blob* cut into fixed-size chunks:

* :class:`StateBlob` — the sender side.  Encodes a state dict once into
  a gather list of byte views (``[4B header_len][header][segments...]``,
  arrays contributing their buffers directly — no base64, no flattening
  copy) and slices chunks across it on demand.
* :class:`ChunkAssembler` — the receiver side.  One preallocated
  buffer, per-chunk digest verification, duplicate accounting, and a
  whole-blob digest check before anything is decoded.
* :class:`ChunkStore` — server-side bookkeeping: one in-flight
  assembler per sender, plus the reply shapes for ``STATE_CHUNK`` /
  ``STATE_DONE``.
* :class:`ChunkedUploader` / :class:`ChunkedFetcher` — client loops
  that push (or pull) chunks through a :class:`~repro.net.ReliableLink`
  with a small pipeline window.

Because every chunk rides an ordinary reliable request, resume after a
connection reset is free: acked chunks are never resent — the link
retries only the in-flight message ids — and the assembler keeps what
it has, so an upload continues from the last acked chunk rather than
restarting.  The same property holds verbatim on ``InMemoryTransport``
and ``TcpTransport``; chunking happens *above* the transport seam.
"""

from __future__ import annotations

import hashlib
import math
import secrets
import threading
import time
import typing

from ..coordination.messages import MessageType
from . import wire
from .transport import RetryableError
from .wire import WireError, _flat_view

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..observability import MetricRegistry, Tracer
    from .transport import ReliableLink

#: Default chunk size.  Small enough that even test-scale snapshots cut
#: into several chunks (exercising resume paths), large enough that the
#: per-chunk request overhead is noise against the copy it avoids.
DEFAULT_CHUNK_BYTES = 256 * 1024

_LENGTH = wire._LENGTH


def _digest(data) -> str:
    return hashlib.sha256(_flat_view(data)).hexdigest()


class StateBlob:
    """An encoded snapshot: a gather list of byte views plus digests.

    The encode is zero-copy for every contiguous array — segments are
    ``memoryview``\\ s over the live buffers — so the blob must be
    consumed (uploaded or copied) before those arrays are mutated.
    Uploads happen at commit boundaries while training is paused, which
    gives exactly that window.
    """

    def __init__(self, buffers: "list[memoryview | bytes]", codec: str,
                 chunk_bytes: int = DEFAULT_CHUNK_BYTES):
        if chunk_bytes < 1:
            raise ValueError("chunk_bytes must be positive")
        self.codec = codec
        self.chunk_bytes = int(chunk_bytes)
        self._views = [_flat_view(buffer) for buffer in buffers]
        self._starts: "list[int]" = []
        offset = 0
        for view in self._views:
            self._starts.append(offset)
            offset += view.nbytes
        self.total_bytes = offset
        self.total_chunks = max(1, math.ceil(self.total_bytes / self.chunk_bytes))
        hasher = hashlib.sha256()
        for view in self._views:
            hasher.update(view)
        self.digest = hasher.hexdigest()

    @classmethod
    def encode(cls, state: dict, codec: str = "json",
               chunk_bytes: int = DEFAULT_CHUNK_BYTES) -> "StateBlob":
        """Encode a state dict into a blob without flattening it."""
        header_obj, segments = wire.split_buffers(state)
        header_obj = {"state": header_obj,
                      "__segs__": [seg.nbytes for seg in segments]}
        header = wire.encode_frame(header_obj, codec)
        buffers = [_LENGTH.pack(len(header)), header, *segments]
        return cls(buffers, codec, chunk_bytes)

    def chunk(self, seq: int) -> "memoryview | bytes":
        """Bytes of chunk ``seq`` — a view when it lies inside one
        segment, a joined copy when it straddles segment boundaries."""
        if not 0 <= seq < self.total_chunks:
            raise IndexError(f"chunk {seq} of {self.total_chunks}")
        start = seq * self.chunk_bytes
        end = min(start + self.chunk_bytes, self.total_bytes)
        parts = []
        for view, vstart in zip(self._views, self._starts):
            vend = vstart + view.nbytes
            if vend <= start or vstart >= end:
                continue
            parts.append(view[max(start, vstart) - vstart:min(end, vend) - vstart])
        if len(parts) == 1:
            return parts[0]
        return b"".join(bytes(part) for part in parts)

    def chunk_digest(self, seq: int) -> str:
        return _digest(self.chunk(seq))

    def describe(self, transfer_id: str) -> dict:
        """The transfer descriptor shipped inside join offers."""
        return {
            "transfer_id": transfer_id,
            "total_bytes": self.total_bytes,
            "total_chunks": self.total_chunks,
            "chunk_bytes": self.chunk_bytes,
            "codec": self.codec,
            "digest": self.digest,
        }


def decode_state_blob(data, codec: "str | None" = None) -> dict:
    """Decode a reassembled blob back into a state dict (zero-copy:
    arrays are ``np.frombuffer`` views over ``data``)."""
    view = _flat_view(data)
    if view.nbytes < _LENGTH.size:
        raise WireError("state blob shorter than its header prefix")
    (header_len,) = _LENGTH.unpack(view[:_LENGTH.size])
    if _LENGTH.size + header_len > view.nbytes:
        raise WireError("state blob header overruns the blob")
    header = wire.decode_frame(
        bytes(view[_LENGTH.size:_LENGTH.size + header_len]), codec or "json"
    )
    seg_lens = header.get("__segs__")
    if not isinstance(seg_lens, list) or not all(
        isinstance(n, int) and n >= 0 for n in seg_lens
    ):
        raise WireError("state blob carries no valid segment table")
    expected = _LENGTH.size + header_len + sum(seg_lens)
    if expected != view.nbytes:
        raise WireError(
            f"state blob is {view.nbytes} bytes but segments need {expected}"
        )
    segments, offset = [], _LENGTH.size + header_len
    for length in seg_lens:
        segments.append(view[offset:offset + length])
        offset += length
    return wire.join_buffers(header.get("state"), segments)


class ChunkAssembler:
    """Receiver half: collect verified chunks into one buffer.

    Duplicate chunks (retransmissions that raced their ack) are counted
    and dropped; a corrupt chunk — wrong length or failed digest —
    raises :class:`WireError` so the sender's request errors instead of
    silently poisoning the snapshot.
    """

    def __init__(self, transfer_id: str, total_bytes: int, total_chunks: int,
                 chunk_bytes: int, codec: str = "json"):
        total_bytes = int(total_bytes)
        total_chunks = int(total_chunks)
        chunk_bytes = int(chunk_bytes)
        if total_bytes < 0 or chunk_bytes < 1:
            raise WireError("invalid transfer geometry")
        if total_chunks != max(1, math.ceil(total_bytes / chunk_bytes)):
            raise WireError(
                f"transfer claims {total_chunks} chunks for {total_bytes} "
                f"bytes at {chunk_bytes} bytes/chunk"
            )
        self.transfer_id = transfer_id
        self.total_bytes = total_bytes
        self.total_chunks = total_chunks
        self.chunk_bytes = chunk_bytes
        self.codec = codec
        self.buffer = bytearray(total_bytes)
        self.received: "set[int]" = set()
        self.duplicates = 0
        self.started_at = time.monotonic()

    def _expected_len(self, seq: int) -> int:
        start = seq * self.chunk_bytes
        return min(start + self.chunk_bytes, self.total_bytes) - start

    def add(self, seq: int, data, digest: "str | None" = None) -> bool:
        """Verify and store one chunk; True if it was fresh."""
        if not isinstance(seq, int) or not 0 <= seq < self.total_chunks:
            raise WireError(f"chunk seq {seq!r} out of range")
        view = _flat_view(data)
        if view.nbytes != self._expected_len(seq):
            raise WireError(
                f"chunk {seq} is {view.nbytes} bytes, "
                f"expected {self._expected_len(seq)}"
            )
        if digest is not None and _digest(view) != digest:
            raise WireError(f"chunk {seq} failed its digest check")
        if seq in self.received:
            self.duplicates += 1
            return False
        start = seq * self.chunk_bytes
        self.buffer[start:start + view.nbytes] = view
        self.received.add(seq)
        return True

    @property
    def complete(self) -> bool:
        return len(self.received) == self.total_chunks

    @property
    def missing(self) -> int:
        return self.total_chunks - len(self.received)

    def finish(self, digest: "str | None" = None) -> memoryview:
        """Verify completeness (and the whole-blob digest) and return a
        view of the assembled blob."""
        if not self.complete:
            raise WireError(f"transfer incomplete: {self.missing} chunks missing")
        if digest is not None and _digest(self.buffer) != digest:
            raise WireError("assembled blob failed its digest check")
        return memoryview(self.buffer)

    def decode(self, digest: "str | None" = None) -> dict:
        return decode_state_blob(self.finish(digest), self.codec)


class ChunkStore:
    """Server-side chunk bookkeeping: one in-flight transfer per sender.

    This is deliberately transport- and policy-free — the application
    master wraps it with its own gating (only the planned uploader may
    upload; fetches follow the replication plan's rounds) while chaos
    and property tests drive it bare behind a ``ServerCore``.
    """

    def __init__(self, metrics: "MetricRegistry | None" = None):
        self._inflight: "dict[str, ChunkAssembler]" = {}
        self.metrics = metrics
        self.completed = 0

    def assembler(self, sender: str) -> "ChunkAssembler | None":
        return self._inflight.get(sender)

    def handle_chunk(self, sender: str, payload: dict) -> dict:
        """Apply one ``STATE_CHUNK``; returns the ack payload."""
        transfer_id = payload.get("transfer_id")
        if not transfer_id:
            raise WireError("chunk carries no transfer id")
        assembler = self._inflight.get(sender)
        if assembler is None or assembler.transfer_id != transfer_id:
            assembler = ChunkAssembler(
                transfer_id=str(transfer_id),
                total_bytes=payload.get("total_bytes", -1),
                total_chunks=payload.get("total_chunks", -1),
                chunk_bytes=payload.get("chunk_bytes", 0),
                codec=str(payload.get("codec", "json")),
            )
            self._inflight[sender] = assembler
        fresh = assembler.add(
            payload.get("seq"), payload.get("data", b""), payload.get("digest")
        )
        if self.metrics is not None:
            self.metrics.counter(
                "net.chunks.received" if fresh else "net.chunks.duplicate"
            ).inc()
            if fresh:
                self.metrics.counter("net.chunks.bytes_received").inc(
                    assembler._expected_len(payload["seq"])
                )
        return {
            "ok": True,
            "seq": payload.get("seq"),
            "have": len(assembler.received),
            "missing": assembler.missing,
        }

    def handle_done(
        self, sender: str, payload: dict
    ) -> "tuple[dict, ChunkAssembler | None]":
        """Apply a ``STATE_DONE``; returns ``(reply, assembler)``.

        The assembler is returned (and retired from the in-flight map)
        only when the transfer is complete and its whole-blob digest
        verifies; otherwise the reply says what is wrong and the
        transfer stays resumable.
        """
        transfer_id = payload.get("transfer_id")
        assembler = self._inflight.get(sender)
        if assembler is None or assembler.transfer_id != transfer_id:
            return {"ok": False, "reason": "unknown transfer"}, None
        if not assembler.complete:
            return {"ok": False, "reason": "incomplete",
                    "missing": assembler.missing}, None
        assembler.finish(payload.get("digest"))  # raises WireError on corruption
        del self._inflight[sender]
        self.completed += 1
        if self.metrics is not None:
            self.metrics.counter("net.transfers.completed").inc()
            self.metrics.histogram("net.transfer_seconds").observe(
                time.monotonic() - assembler.started_at
            )
        return {
            "ok": True,
            "chunks": assembler.total_chunks,
            "payload_bytes": assembler.total_bytes,
            "duplicates": assembler.duplicates,
        }, assembler

    def abandon(self, sender: "str | None" = None) -> None:
        """Drop in-flight state for one sender (or everyone)."""
        if sender is None:
            self._inflight.clear()
        else:
            self._inflight.pop(sender, None)


class TransferError(ConnectionError):
    """A chunked transfer failed permanently (digest, geometry, refusal)."""


class _RestartNeeded(Exception):
    """The receiver lost this transfer; start over with a fresh id."""


class _SeqFeed:
    """Thread-safe dispenser of chunk sequence numbers."""

    def __init__(self, total: int):
        self._next = 0
        self._total = total
        self._lock = threading.Lock()

    def take(self) -> "int | None":
        with self._lock:
            if self._next >= self._total:
                return None
            seq = self._next
            self._next += 1
            return seq


def _run_window(window: int, total: int, pump) -> None:
    """Run ``pump`` across a small thread pool (or inline for window 1).

    ``pump`` is called with a :class:`_SeqFeed`; the first exception any
    worker raises is re-raised here after all workers stop.
    """
    feed = _SeqFeed(total)
    errors: "list[BaseException]" = []

    def runner():
        try:
            pump(feed, errors)
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            errors.append(exc)

    workers = max(1, min(window, total))
    if workers == 1:
        runner()
    else:
        threads = [
            threading.Thread(target=runner, daemon=True) for _ in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    if errors:
        raise errors[0]


class ChunkedUploader:
    """Push a snapshot to the server as pipelined ``STATE_CHUNK`` s.

    ``window`` requests ride the link concurrently, so chunk ``k+1`` is
    being sliced and framed while ``k`` is still in flight — the
    pipelining half of the data plane.  ``window=1`` degrades to a
    deterministic serial upload, which chaos tests use to aim faults at
    exact chunk indices.
    """

    def __init__(self, link: "ReliableLink", chunk_bytes: int = DEFAULT_CHUNK_BYTES,
                 window: int = 4, codec: str = "json",
                 tracer: "Tracer | None" = None,
                 metrics: "MetricRegistry | None" = None):
        self.link = link
        self.chunk_bytes = int(chunk_bytes)
        self.window = max(1, int(window))
        self.codec = codec
        self.tracer = tracer
        self.metrics = metrics

    #: how many times a single ``upload`` restarts a transfer whose
    #: receiver lost the assembler (an AM failover mid-stream) before
    #: giving up with :class:`TransferError`.
    MAX_RESTARTS = 3
    #: how many fenced (``am_superseded``) rejections a single
    #: ``upload`` rides out while the transport is being redirected to
    #: the successor AM.
    MAX_FENCED = 5

    def upload(self, state: dict, transfer_id: "str | None" = None,
               context: "dict | None" = None) -> dict:
        """Encode, stream, and finalize one snapshot; returns a summary.

        A receiver that lost the transfer (an AM failover dropped the
        half-built assembler) answers ``{"restart": True}``; the upload
        then starts over under a *fresh* transfer id — the successor
        has no chunks, so resume is impossible but a clean restart is
        cheap and bounded.
        """
        blob = StateBlob.encode(state, self.codec, self.chunk_bytes)
        restarts = 0
        fenced = 0
        while True:
            try:
                return self._upload_once(blob, transfer_id, context)
            except _RestartNeeded as exc:
                restarts += 1
                if restarts > self.MAX_RESTARTS:
                    raise TransferError(
                        f"upload abandoned after {restarts - 1} restarts: "
                        f"{exc}"
                    ) from exc
                if self.metrics is not None:
                    self.metrics.counter("net.transfers.restarted").inc()
                if self.tracer is not None:
                    self.tracer.instant(
                        "net.transfer_restart", track=self.link.node_id,
                        cat="net", attempt=restarts, reason=str(exc),
                    )
                transfer_id = None  # force a fresh id for the retry
            except RetryableError as exc:
                if exc.reason != "am_superseded":
                    raise
                fenced += 1
                if fenced > self.MAX_FENCED:
                    raise
                time.sleep(0.05 * fenced)

    def _upload_once(self, blob: "StateBlob",
                     transfer_id: "str | None",
                     context: "dict | None") -> dict:
        transfer_id = transfer_id or f"{self.link.node_id}/{secrets.token_hex(4)}"
        base = blob.describe(transfer_id)

        def send_chunks():
            def pump(feed, errors):
                while not errors:
                    seq = feed.take()
                    if seq is None:
                        return
                    payload = dict(base)
                    payload.update(
                        seq=seq,
                        digest=blob.chunk_digest(seq),
                        data=blob.chunk(seq),
                    )
                    reply = self.link.request(MessageType.STATE_CHUNK, payload)
                    if reply.get("restart"):
                        raise _RestartNeeded(f"chunk {seq}: {reply}")
                    if not reply.get("ok"):
                        raise TransferError(f"chunk {seq} refused: {reply}")
                    if self.metrics is not None:
                        self.metrics.counter("net.chunks.sent").inc()

            _run_window(self.window, blob.total_chunks, pump)
            done = dict(base, **(context or {}))
            done.pop("chunk_bytes", None)
            reply = self.link.request(MessageType.STATE_DONE, done)
            if reply.get("restart"):
                raise _RestartNeeded(f"finalize: {reply}")
            if not reply.get("ok"):
                raise TransferError(f"transfer {transfer_id} refused: {reply}")
            return reply

        if self.tracer is not None:
            with self.tracer.span(
                "net.state_upload", track=self.link.node_id, cat="net",
                transfer_id=transfer_id, payload_bytes=blob.total_bytes,
                chunks=blob.total_chunks,
            ):
                reply = send_chunks()
        else:
            reply = send_chunks()
        if self.metrics is not None:
            self.metrics.counter("net.chunks.bytes_sent").inc(blob.total_bytes)
        return {
            "transfer_id": transfer_id,
            "chunks": blob.total_chunks,
            "payload_bytes": blob.total_bytes,
            "digest": blob.digest,
            "reply": reply,
        }


class ChunkedFetcher:
    """Pull a described snapshot from the server chunk by chunk.

    The server answers ``{"status": "pending"}`` while the fetcher's
    replication round has not opened yet (earlier rounds still copying);
    the fetcher polls until its round opens or ``timeout`` passes.
    """

    def __init__(self, link: "ReliableLink", window: int = 4,
                 poll_interval: float = 0.05, timeout: float = 30.0,
                 tracer: "Tracer | None" = None,
                 metrics: "MetricRegistry | None" = None):
        self.link = link
        self.window = max(1, int(window))
        self.poll_interval = poll_interval
        self.timeout = timeout
        self.tracer = tracer
        self.metrics = metrics

    def fetch(self, descriptor: dict) -> dict:
        """Fetch, verify, and decode the snapshot named by ``descriptor``."""
        transfer_id = descriptor["transfer_id"]
        assembler = ChunkAssembler(
            transfer_id=transfer_id,
            total_bytes=descriptor["total_bytes"],
            total_chunks=descriptor["total_chunks"],
            chunk_bytes=descriptor["chunk_bytes"],
            codec=str(descriptor.get("codec", "json")),
        )
        deadline = time.monotonic() + self.timeout
        lock = threading.Lock()

        def pump(feed, errors):
            while not errors:
                seq = feed.take()
                if seq is None:
                    return
                while True:
                    reply = self.link.request(
                        MessageType.STATE_FETCH,
                        {"transfer_id": transfer_id, "seq": seq},
                    )
                    if reply.get("status") == "pending":
                        if time.monotonic() > deadline:
                            raise TransferError(
                                f"transfer {transfer_id} never opened: "
                                f"round still pending after {self.timeout}s"
                            )
                        time.sleep(self.poll_interval)
                        continue
                    if not reply.get("ok"):
                        raise TransferError(f"fetch of chunk {seq} refused: {reply}")
                    break
                with lock:
                    assembler.add(seq, reply.get("data", b""), reply.get("digest"))
                if self.metrics is not None:
                    self.metrics.counter("net.chunks.fetched").inc()

        def run():
            _run_window(self.window, assembler.total_chunks, pump)
            return assembler.decode(descriptor.get("digest"))

        if self.tracer is not None:
            with self.tracer.span(
                "net.state_fetch", track=self.link.node_id, cat="net",
                transfer_id=transfer_id,
                payload_bytes=assembler.total_bytes,
                chunks=assembler.total_chunks,
            ):
                state = run()
        else:
            state = run()
        if self.metrics is not None:
            self.metrics.counter("net.chunks.bytes_fetched").inc(
                assembler.total_bytes
            )
        return state
