"""Decentralized bucketized ring allreduce over worker-peer links.

The star rendezvous (every worker posts its gradient to the AM and
waits for the server-computed mean) costs ``2·N·S`` bytes through the
AM per iteration and one blocked reader thread per member.  This module
moves the gradient hot path onto direct worker↔worker links: the
classic two-phase ring — reduce-scatter then all-gather — over
fixed-size, element-aligned buckets, pipelined with a bounded in-flight
window (mirroring :mod:`repro.net.chunks`).

Bit-identity with the star path
-------------------------------

IEEE float addition is commutative but *not* associative, so "the same
mean" is only bit-reproducible if both planes add contributions in the
same association order.  The ring fixes that order per partition ``p``:
its reduction arc visits ranks ``p, p+1, …, p+N-1`` (mod N), i.e.

    ((c_p + c_{p+1}) + c_{p+2}) … + c_{p+N-1}) / N

:func:`ring_reference_average` replays exactly that association on a
single node.  A ring-enabled AM uses it for every star-served iteration
(pre-activation and degraded fallback), so whichever plane an iteration
takes, every replica applies bit-identical updates.

Degradation
-----------

Any ring abort — peer timeout, connection reset exhausting the resend
budget, generation bump — surfaces as :class:`RingDegraded`.  The
degraded mark is one-way per ``(generation, iteration)``: a worker that
raised never completes that ring, so peers polling its state converge.
The caller (the worker agent) then repairs from a peer that *did*
complete (fetching its cached mean) or, when every peer degraded,
retries the iteration through the star path — exactly-once either way.
"""

from __future__ import annotations

import contextlib
import dataclasses
import threading
import time
import typing

import numpy as np

from ..coordination.messages import Message, MessageType
from .codecs import decode_bucket, encode_bucket, validate_codec
from .transport import TransportClosed
from .wire import WireError

#: default ring bucket size (bytes); small enough to pipeline, large
#: enough that per-message overhead stays negligible.
DEFAULT_RING_BUCKET_BYTES = 64 * 1024

#: consecutive degraded iterations after which a node stops attempting
#: the ring until the next install (a persistently broken mesh would
#: otherwise pay the step timeout every single iteration).
MAX_RING_STRIKES = 5


class RingDegraded(RuntimeError):
    """The ring aborted this iteration; retry via repair or star."""


@dataclasses.dataclass(frozen=True)
class Slice:
    """A contiguous element range of one (flattened) parameter."""

    name: str
    start: int
    stop: int

    @property
    def elements(self) -> int:
        return self.stop - self.start


def partition_layout(
    items: "typing.Sequence[tuple[str, int, int]]", parts: int
) -> "list[list[Slice]]":
    """Split a parameter list into ``parts`` byte-balanced partitions.

    ``items`` is an ordered ``(name, elements, itemsize)`` sequence.
    Element ``e`` of the parameter starting at global byte offset ``g``
    belongs to partition ``((g + e·itemsize) · parts) // total_bytes``
    — a monotone, element-aligned, exact partition of the flattened
    parameter space that every rank computes identically from the spec
    alone (no negotiation message needed).
    """
    partitions: "list[list[Slice]]" = [[] for _ in range(parts)]
    total = sum(elements * itemsize for _, elements, itemsize in items)
    if total == 0:
        return partitions
    offset = 0  # global byte offset of the current parameter
    for name, elements, itemsize in items:
        start = 0
        while start < elements:
            part = ((offset + start * itemsize) * parts) // total
            # Smallest e with (offset + e·itemsize)·parts >= (part+1)·total
            # is the first element of the next partition.
            numer = (part + 1) * total - offset * parts
            denom = itemsize * parts
            stop = min(elements, (numer + denom - 1) // denom)
            partitions[part].append(Slice(name, start, stop))
            start = stop
        offset += elements * itemsize
    return partitions


def bucketize(
    slices: "typing.Sequence[Slice]",
    itemsizes: "typing.Mapping[str, int]",
    bucket_bytes: int,
) -> "list[list[Slice]]":
    """Cut one partition's slices into element-aligned buckets.

    Greedy fill up to ``bucket_bytes`` per bucket; a slice larger than
    the budget is split, and an element wider than the whole budget
    still travels (one element per bucket) rather than failing.
    """
    buckets: "list[list[Slice]]" = []
    current: "list[Slice]" = []
    used = 0
    for piece in slices:
        itemsize = itemsizes[piece.name]
        start = piece.start
        while start < piece.stop:
            room = (bucket_bytes - used) // itemsize
            if room <= 0:
                if current:
                    buckets.append(current)
                    current, used = [], 0
                room = max(1, bucket_bytes // itemsize)
            take = min(piece.stop - start, room)
            current.append(Slice(piece.name, start, start + take))
            start += take
            used += take * itemsize
    if current:
        buckets.append(current)
    return buckets


class RingLayout:
    """Deterministic partition/bucket geometry shared by every rank.

    Derived purely from the parameter shapes (sorted by name), the ring
    size and the bucket budget — so N processes compute identical
    layouts without exchanging a byte.
    """

    def __init__(
        self,
        params: "typing.Mapping[str, np.ndarray]",
        members: int,
        bucket_bytes: int = DEFAULT_RING_BUCKET_BYTES,
    ):
        self.members = members
        self.names = sorted(params)
        self.items = [
            (name, int(params[name].size), int(params[name].dtype.itemsize))
            for name in self.names
        ]
        self.itemsizes = {name: size for name, _, size in self.items}
        self.total_bytes = sum(e * i for _, e, i in self.items)
        self.partitions = partition_layout(self.items, members)
        self.buckets = [
            bucketize(slices, self.itemsizes, bucket_bytes)
            for slices in self.partitions
        ]

    @staticmethod
    def flat(array: np.ndarray) -> np.ndarray:
        """The 1-D view slices index into (copy only if non-contiguous)."""
        return array.reshape(-1)

    def views(
        self,
        arrays: "typing.Mapping[str, np.ndarray]",
        bucket: "typing.Sequence[Slice]",
    ) -> "list[np.ndarray]":
        """Zero-copy flat views of one bucket's slices."""
        return [
            self.flat(arrays[piece.name])[piece.start:piece.stop]
            for piece in bucket
        ]

    def partition_bytes(self, part: int) -> int:
        return sum(
            piece.elements * self.itemsizes[piece.name]
            for piece in self.partitions[part]
        )


def ring_reference_average(
    contributions: "typing.Sequence[typing.Mapping[str, np.ndarray]]",
) -> "dict[str, np.ndarray]":
    """The mean a healthy ring over ``contributions`` would compute.

    ``contributions`` must be ordered by ring rank (the group order the
    AM distributes).  Partition ``p``'s arc starts at rank ``p`` and
    accumulates one hop at a time — the same ufunc calls, operand order
    and division the distributed path performs, so the result is
    bit-identical to every ring member's.  The divisor is always the
    member count (absent members contribute zeros upstream).
    """
    members = len(contributions)
    if members == 0:
        raise ValueError("no gradients to average")
    base = contributions[0]
    # One bucket per partition: only the partition geometry matters here.
    layout = RingLayout(base, members, bucket_bytes=2**62)
    out = {name: np.empty_like(np.asarray(base[name])) for name in base}
    for part, slices in enumerate(layout.partitions):
        for piece in slices:
            acc = np.array(
                RingLayout.flat(np.asarray(contributions[part][piece.name]))[
                    piece.start:piece.stop
                ]
            )
            for hop in range(1, members):
                contribution = RingLayout.flat(
                    np.asarray(
                        contributions[(part + hop) % members][piece.name]
                    )
                )[piece.start:piece.stop]
                # The ring accumulates np.add(received, local): the
                # partial arc is the left operand at every hop.
                acc = np.add(acc, contribution)
            RingLayout.flat(out[piece.name])[piece.start:piece.stop] = (
                np.true_divide(acc, members)
            )
    return out


class RingMailbox:
    """Thread-safe segment inbox + per-iteration ring state machine.

    Peer server threads deposit ``RING_SEGMENT`` payloads; the compute
    thread collects them by key.  The mailbox also answers peers'
    ``RING_FETCH`` probes: per ``(generation, iteration)`` a ring run is
    ``running``, ``done`` (mean cached) or ``degraded`` — ``done`` and
    ``degraded`` are terminal, which is what makes the fallback protocol
    converge.  Only the *latest* completed mean is cached: lockstep
    bounds the spread to one iteration, and a peer cannot finish
    iteration ``k+1`` (overwriting the cache) until every repairing
    member of iteration ``k`` has caught up.
    """

    def __init__(self, metrics: "typing.Any | None" = None):
        self.metrics = metrics
        self._cond = threading.Condition()
        self._deposits: "dict[tuple, list]" = {}
        self._status: "dict[tuple, str]" = {}
        self._floor: "tuple | None" = None
        self._mean_key: "tuple | None" = None
        self._mean: "dict[str, np.ndarray] | None" = None

    # -- compute-thread side ---------------------------------------------------

    def begin(self, generation: int, iteration: int) -> None:
        """Open a ring run; GC segments/states this rank moved past."""
        key = (generation, iteration)
        with self._cond:
            self._floor = key
            self._status[key] = "running"
            self._deposits = {
                k: v for k, v in self._deposits.items() if k[:2] >= key
            }
            self._status = {
                k: v
                for k, v in self._status.items()
                if k >= (generation, iteration - 1)
            }

    def collect(self, key: tuple, timeout: float) -> "list | None":
        """Pop one deposited segment, waiting up to ``timeout``."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while key not in self._deposits:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                self._cond.wait(remaining)
            return self._deposits.pop(key)

    def complete(
        self, generation: int, iteration: int,
        mean: "dict[str, np.ndarray]",
    ) -> None:
        with self._cond:
            self._status[(generation, iteration)] = "done"
            self._mean_key = (generation, iteration)
            self._mean = mean

    def record_mean(
        self, generation: int, iteration: int,
        mean: "dict[str, np.ndarray]",
    ) -> None:
        """Cache a *star*-synced mean so peers can repair from it.

        After an AM failover a peer whose sync reply died with the old
        AM is told its barrier is stale; it fetches this cached mean
        over the direct peer link instead.  Never regresses the cache:
        ring completion may already have cached a later iteration.
        """
        key = (generation, iteration)
        with self._cond:
            if self._mean_key is not None and key < self._mean_key:
                return
            self._status[key] = "done"
            self._mean_key = key
            self._mean = mean

    def degrade(self, generation: int, iteration: int) -> None:
        with self._cond:
            self._status[(generation, iteration)] = "degraded"

    # -- peer-server side ------------------------------------------------------

    def deposit(self, key: tuple, data: "list") -> bool:
        """Store one inbound segment; False if this rank moved past it."""
        with self._cond:
            if self._floor is not None and key[:2] < self._floor:
                return False
            self._deposits[key] = data
            self._cond.notify_all()
            return True

    def peer_state(
        self, generation: int, iteration: int
    ) -> "tuple[str, dict | None]":
        """(state, cached mean) for one iteration, for ``RING_FETCH``."""
        key = (generation, iteration)
        with self._cond:
            if self._mean_key == key:
                return "done", self._mean
            return self._status.get(key, "unknown"), None

    def handle(self, message: Message) -> dict:
        """The peer ``ServerCore`` handler (dedup'd, exactly-once)."""
        payload = message.payload
        if message.msg_type is MessageType.RING_SEGMENT:
            key = (
                int(payload["generation"]),
                int(payload["iteration"]),
                str(payload["phase"]),
                int(payload["step"]),
                int(payload["bucket"]),
            )
            # Copy: over the in-memory transport the arrays alias the
            # sender's live scratch (TCP and SHM deliver read-only
            # frombuffer views into a receive buffer); the accumulate
            # step needs stable, owned data.
            data = [np.array(array) for array in payload["data"]]
            codec_meta = payload.get("codec")
            if self.metrics is not None:
                self.metrics.counter("net.allreduce.segments_received").inc()
                self.metrics.counter("net.allreduce.bytes_received").inc(
                    sum(array.nbytes for array in data)
                )
            accepted = self.deposit(key, (data, codec_meta))
            return {"ok": True, "stale": not accepted}
        if message.msg_type is MessageType.RING_FETCH:
            state, mean = self.peer_state(
                int(payload["generation"]), int(payload["iteration"])
            )
            reply: dict = {"state": state}
            if mean is not None:
                reply["grads"] = mean
            return reply
        raise ValueError(f"unexpected peer message {message.msg_type!r}")


@contextlib.contextmanager
def _maybe_span(tracer, name: str, track: str, **args):
    if tracer is None:
        yield None
        return
    with tracer.span(name, track=track, cat="net", **args) as span:
        yield span


class RingNode:
    """One rank of the ring: owns the peer links and runs the algorithm.

    ``connect`` is a callable ``addr -> ReliableLink`` (supplied by the
    peer host), so the node itself is transport-agnostic.  Links are
    cached per address and reused across generations when the address
    survives the reshuffle.
    """

    def __init__(
        self,
        worker_id: str,
        mailbox: RingMailbox,
        connect: "typing.Callable[[str], typing.Any]",
        bucket_bytes: int = DEFAULT_RING_BUCKET_BYTES,
        window: int = 4,
        step_timeout: float = 2.0,
        tracer: "typing.Any | None" = None,
        metrics: "typing.Any | None" = None,
        fail_at: "typing.Collection[int]" = (),
        codec: str = "none",
    ):
        self.worker_id = worker_id
        self.mailbox = mailbox
        self._connect = connect
        self.bucket_bytes = bucket_bytes
        self.window = max(1, window)
        self.step_timeout = step_timeout
        self.tracer = tracer
        self.metrics = metrics
        #: negotiated gradient codec — the constructor value is the
        #: default; :meth:`install` adopts whatever the ring payload
        #: carries, so the whole epoch agrees on one codec.
        self.codec = validate_codec(codec)
        #: full-size per-parameter error-feedback residuals, keyed by
        #: name — geometry-independent, so they survive re-partitioning
        #: when the ring membership changes.
        self._residuals: "dict[str, np.ndarray]" = {}
        #: per-iteration all-gather relay cache: (part, bucket) ->
        #: (quantized arrays, codec meta) exactly as received, forwarded
        #: verbatim so every rank ends up holding identical bytes.
        self._ag_relay: "dict[tuple, tuple]" = {}
        self._iter_residual_sq = 0.0
        #: test knob: iterations at which this node aborts its ring
        #: before participating (deterministic degradation injection).
        self.fail_at = frozenset(fail_at)
        self.ring: "dict | None" = None
        self.strikes = 0
        self._links: "dict[str, typing.Any]" = {}
        #: peers whose link failed outright this ring epoch.  A suspect
        #: is never dialed again until a new ring is installed: a
        #: silently dead peer otherwise costs a full redial-and-resend
        #: budget on *every* send and *every* recovery probe, stretching
        #: a 2 s degrade into tens of seconds.  The AM's lease evictor
        #: removes the corpse and the next generation's ring resets the
        #: set — a merely slow peer rejoins there.
        self._suspects: "set[str]" = set()
        self._lock = threading.Lock()

    # -- membership ------------------------------------------------------------

    def install(self, ring: "dict") -> None:
        """Adopt a generation's ring (order, peer addresses, epoch).

        The ring payload optionally carries the epoch's negotiated
        gradient ``codec``; error-feedback residuals deliberately
        survive the install — they are keyed by parameter name at full
        size, so the new geometry reuses them as-is.
        """
        self.ring = {
            "epoch": int(ring["epoch"]),
            "order": list(ring["order"]),
            "peers": dict(ring["peers"]),
            "active_from": int(ring["active_from"]),
        }
        if "codec" in ring:
            self.codec = validate_codec(ring["codec"])
        self.strikes = 0
        with self._lock:
            self._suspects.clear()

    # -- error-feedback residual state -----------------------------------------

    def capture_residuals(self) -> "dict[str, np.ndarray]":
        """Copy of the EF residual state (ships with worker snapshots)."""
        with self._lock:
            return {
                name: np.array(residual)
                for name, residual in self._residuals.items()
            }

    def restore_residuals(
        self, state: "typing.Mapping[str, np.ndarray]"
    ) -> None:
        """Adopt captured residuals (restart / migration path)."""
        with self._lock:
            self._residuals = {
                name: np.array(residual) for name, residual in state.items()
            }

    def _residual_views(
        self, scratch: "typing.Mapping[str, np.ndarray]", bucket
    ) -> "list[np.ndarray]":
        """Flat residual views aligned with one bucket's slices."""
        views = []
        for piece in bucket:
            full = scratch[piece.name]
            with self._lock:
                residual = self._residuals.get(piece.name)
                if residual is None or residual.size != full.size:
                    residual = self._residuals[piece.name] = np.zeros(
                        full.size, dtype=full.dtype
                    )
            views.append(residual[piece.start:piece.stop])
        return views

    def _suspect(self, peer: str) -> None:
        with self._lock:
            self._suspects.add(peer)
            # Drop the cached link: if the peer ever serves this address
            # again (a later ring epoch), a fresh dial is the only way in.
            link = self._links.pop(self.ring["peers"].get(peer, ""), None)
        if link is not None:
            try:
                link.close()
            except Exception:
                pass
        if self.metrics is not None:
            self.metrics.counter("net.allreduce.suspects").inc()

    def active(self, generation: int, iteration: int) -> bool:
        """Should this iteration's gradients take the ring plane?"""
        ring = self.ring
        return (
            ring is not None
            and ring["epoch"] == generation
            and iteration >= ring["active_from"]
            and len(ring["order"]) > 1
            and self.worker_id in ring["order"]
            and self.strikes < MAX_RING_STRIKES
        )

    def _link_to(self, peer: str):
        addr = self.ring["peers"][peer]
        with self._lock:
            link = self._links.get(addr)
            if link is None:
                link = self._links[addr] = self._connect(addr)
            return link

    def close(self) -> None:
        with self._lock:
            links, self._links = list(self._links.values()), {}
        for link in links:
            try:
                link.close()
            except Exception:
                pass

    # -- the collective --------------------------------------------------------

    def allreduce(
        self,
        generation: int,
        iteration: int,
        grads: "typing.Mapping[str, np.ndarray]",
    ) -> "dict[str, np.ndarray]":
        """Reduce-scatter + all-gather; returns the bit-exact mean.

        Raises :class:`RingDegraded` (after marking the iteration
        degraded, so peers' probes converge) on any abort.
        """
        ring = self.ring
        order = ring["order"]
        members = len(order)
        rank = order.index(self.worker_id)
        successor = order[(rank + 1) % members]
        layout = RingLayout(grads, members, self.bucket_bytes)
        self.mailbox.begin(generation, iteration)
        if iteration in self.fail_at:
            self.mailbox.degrade(generation, iteration)
            self.strikes += 1
            if self.metrics is not None:
                self.metrics.counter("net.allreduce.degraded").inc()
            raise RingDegraded(
                f"{self.worker_id} injected ring failure at {iteration}"
            )
        # Working copy: the pristine ``grads`` stay untouched for the
        # star fallback; ``scratch`` becomes the mean in place.
        scratch = {name: np.array(grads[name]) for name in grads}
        self._ag_relay = {}
        self._iter_residual_sq = 0.0
        started = time.perf_counter()
        try:
            with _maybe_span(
                self.tracer, "net.allreduce", self.worker_id,
                generation=generation, iteration=iteration, members=members,
                bytes=layout.total_bytes,
            ):
                with _maybe_span(
                    self.tracer, "net.allreduce.reduce_scatter",
                    self.worker_id, hops=members - 1,
                    bytes=layout.total_bytes,
                ):
                    for step in range(members - 1):
                        self._step(
                            generation, iteration, "rs", step,
                            send_part=(rank - step) % members,
                            recv_part=(rank - step - 1) % members,
                            layout=layout, scratch=scratch,
                            successor=successor, accumulate=True,
                        )
                    # This rank now owns partition (rank+1): divide it
                    # to the mean before gathering it back around.
                    for piece in layout.partitions[(rank + 1) % members]:
                        view = RingLayout.flat(scratch[piece.name])[
                            piece.start:piece.stop
                        ]
                        np.true_divide(view, members, out=view)
                with _maybe_span(
                    self.tracer, "net.allreduce.all_gather",
                    self.worker_id, hops=members - 1,
                    bytes=layout.total_bytes,
                ):
                    for step in range(members - 1):
                        self._step(
                            generation, iteration, "ag", step,
                            send_part=(rank + 1 - step) % members,
                            recv_part=(rank - step) % members,
                            layout=layout, scratch=scratch,
                            successor=successor, accumulate=False,
                        )
        except RingDegraded:
            self.mailbox.degrade(generation, iteration)
            self.strikes += 1
            if self.metrics is not None:
                self.metrics.counter("net.allreduce.degraded").inc()
            raise
        self.mailbox.complete(generation, iteration, scratch)
        self.strikes = 0
        self._ag_relay = {}
        if self.metrics is not None:
            self.metrics.counter("net.allreduce.count").inc()
            self.metrics.histogram("net.allreduce.seconds").observe(
                time.perf_counter() - started
            )
            if self.codec != "none":
                self.metrics.histogram("net.codec.residual_norm").observe(
                    float(np.sqrt(self._iter_residual_sq))
                )
        return scratch

    def _step(
        self, generation, iteration, phase, step, send_part, recv_part,
        layout, scratch, successor, accumulate,
    ) -> None:
        """One ring hop: pump this step's buckets to the successor with
        a bounded in-flight window while collecting the predecessor's.

        Send failures do *not* degrade this rank — its own result only
        depends on what it receives; a successor that missed data will
        degrade itself and repair from whoever completed.  Only a
        receive timeout aborts.
        """
        send_buckets = layout.buckets[send_part]
        recv_buckets = layout.buckets[recv_part]
        pump_done = threading.Event()
        codec_active = self.codec != "none"

        def encode_for_ship(index: int, bucket, data):
            """Quantize one outgoing bucket per the phase's rules.

            Reduce-scatter quantizes with error feedback.  The
            all-gather must leave every rank holding *identical* bytes:
            the partition owner (step 0) quantizes without EF and
            adopts the dequantized values itself, while relays
            (step ≥ 1) forward the received quantized bytes verbatim
            from the per-iteration relay cache.
            """
            if phase == "rs":
                enc = encode_bucket(
                    self.codec, data, self._residual_views(scratch, bucket)
                )
                with self._lock:
                    self._iter_residual_sq += enc.residual_sq
            elif step == 0:
                enc = encode_bucket(self.codec, data)
                for view, dequantized in zip(
                    data, decode_bucket(enc.data, enc.meta)
                ):
                    view[:] = dequantized
            else:
                relayed = self._ag_relay.get((send_part, index))
                if relayed is not None:
                    return relayed
                # A star-repaired or freshly-installed rank may lack
                # the cache; re-encoding its (already dequantized)
                # values is the best remaining approximation.
                enc = encode_bucket(self.codec, data)
            if self.metrics is not None:
                self.metrics.counter("net.codec.bytes_raw").inc(
                    enc.raw_bytes
                )
                self.metrics.counter("net.codec.bytes_compressed").inc(
                    enc.compressed_bytes
                )
                if enc.fallbacks:
                    self.metrics.counter("net.codec.fallbacks").inc(
                        enc.fallbacks
                    )
            return enc.data, enc.meta

        def ship(index: int, bucket) -> None:
            try:
                with self._lock:
                    if successor in self._suspects:
                        return  # known-dead: don't pay the dial again
                data = layout.views(scratch, bucket)
                payload = {
                    "generation": generation,
                    "iteration": iteration,
                    "phase": phase,
                    "step": step,
                    "part": send_part,
                    "bucket": index,
                    "data": data,
                }
                if codec_active:
                    shipped, meta = encode_for_ship(index, bucket, data)
                    payload["data"] = shipped
                    payload["codec"] = meta
                self._link_to(successor).request(
                    MessageType.RING_SEGMENT, payload, ack_timeout=None,
                )
                if self.metrics is not None:
                    self.metrics.counter("net.allreduce.segments_sent").inc()
                    self.metrics.counter("net.allreduce.bytes_sent").inc(
                        sum(view.nbytes for view in payload["data"])
                    )
            except (TransportClosed, WireError, OSError):
                # A connect-level failure (refused, endpoint gone) means
                # the successor is dead, not lossy: suspect it so later
                # sends and probes fail instantly.  Request timeouts do
                # NOT suspect — a lossy-but-alive peer still receives.
                self._suspect(successor)
                if self.metrics is not None:
                    self.metrics.counter(
                        "net.allreduce.send_failures"
                    ).inc()
            except Exception:
                if self.metrics is not None:
                    self.metrics.counter(
                        "net.allreduce.send_failures"
                    ).inc()
            finally:
                window.release()

        window = threading.BoundedSemaphore(self.window)

        def pump() -> None:
            try:
                for index, bucket in enumerate(send_buckets):
                    window.acquire()
                    threading.Thread(
                        target=ship, args=(index, bucket),
                        name=f"ring-send-{self.worker_id}", daemon=True,
                    ).start()
            finally:
                pump_done.set()

        pumper = threading.Thread(
            target=pump, name=f"ring-pump-{self.worker_id}", daemon=True
        )
        pumper.start()
        for index, bucket in enumerate(recv_buckets):
            deposited = self.mailbox.collect(
                (generation, iteration, phase, step, index),
                self.step_timeout,
            )
            if deposited is None:
                raise RingDegraded(
                    f"{self.worker_id} timed out waiting for "
                    f"{phase} step {step} bucket {index} of iteration "
                    f"{iteration} (generation {generation})"
                )
            data, codec_meta = (
                deposited if isinstance(deposited, tuple)
                else (deposited, None)
            )
            if codec_meta is not None:
                if not accumulate:
                    # Keep the received bytes for verbatim relay at the
                    # next all-gather step.
                    self._ag_relay[(recv_part, index)] = (data, codec_meta)
                data = decode_bucket(data, codec_meta)
            for piece, received in zip(bucket, data):
                view = RingLayout.flat(scratch[piece.name])[
                    piece.start:piece.stop
                ]
                if accumulate:
                    # np.add(received, local): the arriving partial arc
                    # is the left operand — the association the
                    # reference average replays.
                    view[:] = np.add(received, view)
                else:
                    view[:] = received
        pump_done.wait()

    # -- degraded-path probes --------------------------------------------------

    def fetch_peer_state(
        self, peer: str, generation: int, iteration: int
    ) -> dict:
        """One ``RING_FETCH`` probe of a peer's iteration state.

        A probe that fails for *any* reason suspects the peer: probes
        are tiny requests with a full resend budget, so a peer that
        cannot answer one is dead for this ring epoch — recovery loops
        must not pay the same multi-second discovery on every round.
        """
        with self._lock:
            if peer in self._suspects:
                raise TransportClosed(f"peer {peer!r} is suspect")
        try:
            return self._link_to(peer).request(
                MessageType.RING_FETCH,
                {"generation": generation, "iteration": iteration},
            )
        except Exception:
            self._suspect(peer)
            raise
