"""The paper's headline algorithms: hybrid scaling, progressive LR, AdaBatch."""

from .adabatch import AdaBatchSchedule, BatchPhase, doubling_schedule
from .elastic_training import (
    ElasticTrainingExperiment,
    PhaseExecution,
    TrainingTimeline,
)
from .lr_schedules import (
    ConstantLr,
    CosineDecay,
    LrSchedule,
    ScaledSchedule,
    StepDecay,
    WarmupSchedule,
)
from .hybrid_scaling import (
    HybridScalingPolicy,
    ScalingDecision,
    ScalingPolicy,
    StrongScalingPolicy,
    WeakScalingPolicy,
)
from .progressive_lr import (
    DEFAULT_RAMP_ITERATIONS,
    LrRamp,
    ramp_for_scale,
    ramp_from_runtime_info,
    ramp_to_runtime_info,
)

__all__ = [
    "AdaBatchSchedule",
    "BatchPhase",
    "ConstantLr",
    "CosineDecay",
    "DEFAULT_RAMP_ITERATIONS",
    "ElasticJob",
    "ElasticTrainingExperiment",
    "PhaseExecution",
    "TrainingTimeline",
    "HybridScalingPolicy",
    "LrRamp",
    "LrSchedule",
    "ScaledSchedule",
    "StepDecay",
    "ScalingDecision",
    "ScalingPolicy",
    "StrongScalingPolicy",
    "WarmupSchedule",
    "WeakScalingPolicy",
    "doubling_schedule",
    "ramp_for_scale",
    "ramp_from_runtime_info",
    "ramp_to_runtime_info",
]


def __getattr__(name: str):
    """Lazy import of :class:`ElasticJob` to break the core <-> coordination
    import cycle (the facade wraps the runtime, which uses core policies)."""
    if name == "ElasticJob":
        from .api import ElasticJob

        return ElasticJob
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
