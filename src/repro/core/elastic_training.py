"""The §VI-B elastic-training experiment: AdaBatch + Elan on ResNet-50.

Combines the throughput model (epoch durations per configuration), the
convergence model (accuracy per epoch, with the hybrid scaling mechanism
protecting model performance) and the adjustment-cost models into the
timelines behind Fig. 18 (accuracy), Fig. 19 (training efficiency) and
Table IV (time to solution).

Three configurations, exactly as the paper defines them:

* ``512 (16)`` — static: batch 512 on 16 workers for all 90 epochs
  (the accuracy and static-training baseline);
* ``512-2048 (64)`` — AdaBatch batch sizes but on a *fixed* 64 workers
  (shows that dynamic batch sizes without elasticity waste resources);
* ``512-2048 (Elastic)`` — AdaBatch with Elan scaling 16 -> 32 -> 64
  workers at the phase boundaries (guided by the Fig. 17 curves).
"""

from __future__ import annotations

import dataclasses
import typing

from ..baselines.timing import ElanAdjustmentModel
from ..perfmodel.convergence import RESNET50_IMAGENET, AccuracyModel, LrPolicy
from ..perfmodel.models import RESNET50, ModelSpec
from ..perfmodel.throughput import EVAL_CLUSTER, ClusterSpec, ThroughputModel
from .adabatch import AdaBatchSchedule, doubling_schedule


@dataclasses.dataclass(frozen=True)
class PhaseExecution:
    """One constant-configuration segment of a run's timeline."""

    start_epoch: float
    end_epoch: float
    total_batch_size: int
    workers: int
    start_time: float
    end_time: float


@dataclasses.dataclass(frozen=True)
class TrainingTimeline:
    """A full simulated run."""

    label: str
    phases: typing.Tuple[PhaseExecution, ...]
    final_accuracy: float
    accuracy_model: AccuracyModel
    accuracy_penalty: float

    @property
    def total_time(self) -> float:
        """Wall time of the whole schedule."""
        return self.phases[-1].end_time

    def time_at_epoch(self, epoch: float) -> float:
        """Wall time at which ``epoch`` epochs are complete."""
        if epoch < 0:
            raise ValueError("epoch must be >= 0")
        for phase in self.phases:
            if epoch <= phase.end_epoch:
                fraction = (epoch - phase.start_epoch) / (
                    phase.end_epoch - phase.start_epoch
                )
                return phase.start_time + fraction * (
                    phase.end_time - phase.start_time
                )
        return self.total_time

    def accuracy_at_time(self, time: float) -> float:
        """Top-1 accuracy reached by wall time ``time`` (Fig. 19's axes)."""
        low, high = 0.0, self.phases[-1].end_epoch
        for _ in range(50):
            mid = (low + high) / 2
            if self.time_at_epoch(mid) <= time:
                low = mid
            else:
                high = mid
        return self.accuracy_model.accuracy_at_epoch(
            low, penalty=self.accuracy_penalty
        )

    def time_to_accuracy(self, target: float) -> float:
        """Table IV's time to solution; raises if never reached."""
        epoch = self.accuracy_model.epoch_reaching(
            target, penalty=self.accuracy_penalty
        )
        return self.time_at_epoch(epoch)


class ElasticTrainingExperiment:
    """Builds the three §VI-B configurations."""

    def __init__(
        self,
        model: ModelSpec = RESNET50,
        schedule: "AdaBatchSchedule | None" = None,
        cluster: "ClusterSpec | None" = None,
        seed: int = 0,
    ):
        self.model = model
        self.schedule = schedule or doubling_schedule()
        # The experiment ran on the paper's 1080Ti evaluation cluster,
        # whose cross-node scaling is much weaker than the §III analysis
        # testbed — this is what bounds the elastic speedup near 20-30%.
        self.throughput = ThroughputModel(model, cluster or EVAL_CLUSTER)
        self.accuracy = AccuracyModel(RESNET50_IMAGENET)
        self.adjustment_model = ElanAdjustmentModel(seed=seed)

    def _build(
        self,
        label: str,
        phases: typing.Sequence[typing.Tuple[int, int, int, int]],
        lr_policy: LrPolicy,
        max_batch: int,
        adjustment_cost: bool,
    ) -> TrainingTimeline:
        """phases: (start_epoch, end_epoch, batch, workers)."""
        built = []
        clock = 0.0
        previous_workers: "int | None" = None
        for start, end, batch, workers in phases:
            if adjustment_cost and previous_workers is not None and (
                workers != previous_workers
            ):
                kind = "scale_out" if workers > previous_workers else "scale_in"
                clock += self.adjustment_model.adjustment_time(
                    kind, self.model, previous_workers, workers
                ).total
            epoch_time = self.throughput.epoch_time(workers, batch)
            built.append(
                PhaseExecution(
                    start_epoch=start,
                    end_epoch=end,
                    total_batch_size=batch,
                    workers=workers,
                    start_time=clock,
                    end_time=clock + (end - start) * epoch_time,
                )
            )
            clock = built[-1].end_time
            previous_workers = workers
        penalty = self.accuracy.final_accuracy_penalty(max_batch, lr_policy)
        final = self.accuracy.accuracy_at_epoch(
            self.schedule.total_epochs, penalty=penalty
        )
        return TrainingTimeline(
            label=label,
            phases=tuple(built),
            final_accuracy=final,
            accuracy_model=self.accuracy,
            accuracy_penalty=penalty,
        )

    def static_baseline(self, workers: int = 16) -> TrainingTimeline:
        """512 (16): fixed batch, fixed workers, all epochs."""
        batch = self.schedule.phases[0].total_batch_size
        end = self.schedule.total_epochs
        return self._build(
            f"{batch} ({workers})",
            [(0, end, batch, workers)],
            lr_policy=LrPolicy.PROGRESSIVE_LINEAR,
            max_batch=batch,
            adjustment_cost=False,
        )

    def dynamic_fixed_resources(self, workers: int = 64) -> TrainingTimeline:
        """512-2048 (64): AdaBatch batches on a fixed allocation."""
        phases = [
            (p.start_epoch, p.end_epoch, p.total_batch_size, workers)
            for p in self.schedule.phases
        ]
        max_batch = max(p.total_batch_size for p in self.schedule.phases)
        first, last = (
            self.schedule.phases[0].total_batch_size,
            max_batch,
        )
        return self._build(
            f"{first}-{last} ({workers})",
            phases,
            lr_policy=LrPolicy.PROGRESSIVE_LINEAR,
            max_batch=max_batch,
            adjustment_cost=False,
        )

    def elastic(
        self,
        per_worker_batch: int = 32,
        worker_plan: "typing.Sequence[int] | None" = None,
    ) -> TrainingTimeline:
        """512-2048 (Elastic): Elan scales workers with each batch phase.

        The default plan follows the paper exactly — one worker per 32
        samples of batch (16 @ 512, 32 @ 1024, 64 @ 2048), the choice
        "guided by the strong scaling curves shown in Figure 17".
        """
        if worker_plan is None:
            worker_plan = [
                min(64, max(1, p.total_batch_size // per_worker_batch))
                for p in self.schedule.phases
            ]
        phases = [
            (p.start_epoch, p.end_epoch, p.total_batch_size, workers)
            for p, workers in zip(self.schedule.phases, worker_plan)
        ]
        max_batch = max(p.total_batch_size for p in self.schedule.phases)
        first = self.schedule.phases[0].total_batch_size
        return self._build(
            f"{first}-{max_batch} (Elastic)",
            phases,
            lr_policy=LrPolicy.PROGRESSIVE_LINEAR,
            max_batch=max_batch,
            adjustment_cost=True,
        )

    def all_configurations(self) -> "list[TrainingTimeline]":
        """The three Fig. 18/19 configurations."""
        return [
            self.static_baseline(),
            self.dynamic_fixed_resources(),
            self.elastic(),
        ]
