"""The public Elan API surface (paper §V-A, Table III).

Table III lists three API groups; this module maps each onto the
reproduction:

=====================  =======================================================
Paper API              Here
=====================  =======================================================
Service API            :meth:`ElasticJob.adjust_resource` — called by the
(AdjustResource)       scheduler to scale out/in or migrate a running job.
RegisterHook           :meth:`ElasticJob.register_hook` — add framework or
                       user state to what replication carries.
Coordinate             invoked internally by every worker at iteration
                       boundaries; :attr:`ElasticJob.coordination_interval`
                       sets how often (the elasticity/efficiency knob of
                       §V-B).
=====================  =======================================================
"""

from __future__ import annotations

import typing

from ..coordination.hooks import Hook
from ..coordination.master import AdjustmentKind
from ..coordination.runtime import ElasticRuntime, GroupPlan
from ..training.datasets import Dataset
from .hybrid_scaling import ScalingPolicy


class ElasticJob:
    """A running elastic training job with the Table III API."""

    def __init__(
        self,
        dataset: Dataset,
        workers: int = 2,
        total_batch_size: int = 64,
        base_lr: float = 0.05,
        scaling_policy: "ScalingPolicy | None" = None,
        coordination_interval: int = 1,
        **runtime_kwargs: object,
    ):
        self.runtime = ElasticRuntime(
            dataset,
            initial_workers=workers,
            total_batch_size=total_batch_size,
            base_lr=base_lr,
            scaling_policy=scaling_policy,
            coordination_interval=coordination_interval,
            **runtime_kwargs,
        )
        self._started = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ElasticJob":
        """Launch the job's workers; returns self for chaining."""
        self.runtime.start()
        self._started = True
        return self

    def stop(self, timeout: float = 30.0) -> None:
        """Stop training at the next coordination boundary."""
        self.runtime.stop(timeout=timeout)

    def __enter__(self) -> "ElasticJob":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -- Service API (scheduler-facing) -----------------------------------------

    def adjust_resource(
        self,
        kind: AdjustmentKind,
        count: "int | None" = None,
        worker_ids: "list[str] | None" = None,
    ) -> "list[str]":
        """The Table III service call: request a resource adjustment.

        Returns the worker ids affected (new ids for scale-out/migration,
        removed ids for scale-in).  Non-blocking: training continues while
        new workers start; the adjustment commits at a later coordination
        point (§V-B).
        """
        if kind is AdjustmentKind.SCALE_OUT:
            if count is None:
                raise ValueError("scale-out needs a worker count")
            return self.runtime.scale_out(count)
        if kind is AdjustmentKind.SCALE_IN:
            return self.runtime.scale_in(count=count or 1, worker_ids=worker_ids)
        return self.runtime.migrate(count=count)

    def scale_out(self, count: int) -> "list[str]":
        """Convenience for ``adjust_resource(SCALE_OUT, count)``."""
        return self.runtime.scale_out(count)

    def scale_in(self, count: int = 1) -> "list[str]":
        """Convenience for ``adjust_resource(SCALE_IN, count)``."""
        return self.runtime.scale_in(count=count)

    def migrate(self) -> "list[str]":
        """Convenience for ``adjust_resource(MIGRATION)``."""
        return self.runtime.migrate()

    # -- RegisterHook -----------------------------------------------------------

    def register_hook(self, hook: Hook) -> None:
        """Attach extra state to replication (framework integration point)."""
        self.runtime.register_hook(hook)

    # -- observation ---------------------------------------------------------------

    @property
    def coordination_interval(self) -> int:
        """Iterations between Coordinate calls (elasticity granularity)."""
        return self.runtime.coordination_interval

    def status(self) -> dict:
        """Current group/iteration/batch/learning-rate snapshot."""
        return self.runtime.snapshot()

    def wait_for_adjustments(self, count: int, timeout: float = 30.0) -> bool:
        """Block until ``count`` adjustments have committed."""
        return self.runtime.wait_for_adjustments(count, timeout=timeout)

    def wait_until_iteration(self, iteration: int, timeout: float = 30.0) -> bool:
        """Block until the job completed ``iteration`` iterations."""
        return self.runtime.wait_until_iteration(iteration, timeout=timeout)

    def evaluate(self) -> float:
        """Test accuracy of the job's model (call after stop)."""
        return self.runtime.evaluate()

    @property
    def history(self) -> typing.List[GroupPlan]:
        """Committed adjustments, oldest first."""
        return self.runtime.history
