"""The progressive linear scaling rule (paper §III-3, Eqs. 1-3).

When the total batch size scales by ``k``, the SGD update equation (Eq. 1)
calls for scaling the learning rate by ``k`` as well — but a sharp change
may diverge the model, so the change is applied *progressively* over ``T``
iterations:

    lr_t = lr_0 + (t - T_0) / T * (lr_T - lr_0)   for T_0 <= t < T_0 + T
    lr_t = lr_T = k * lr_0                        afterwards
"""

from __future__ import annotations

import dataclasses

from ..training.state import RuntimeInfo

#: The paper finishes the LR adjustment in 100 iterations (§VI-B).
DEFAULT_RAMP_ITERATIONS = 100


@dataclasses.dataclass(frozen=True)
class LrRamp:
    """One progressive learning-rate adjustment."""

    start_iteration: int  # T_0
    length: int  # T
    base_lr: float  # lr_0
    target_lr: float  # lr_T = k * lr_0

    def __post_init__(self):
        if self.length < 0:
            raise ValueError(f"ramp length must be >= 0, got {self.length}")
        if self.base_lr <= 0 or self.target_lr <= 0:
            raise ValueError("learning rates must be positive")

    def lr_at(self, iteration: int) -> float:
        """Eq. 3: the learning rate at ``iteration``."""
        if iteration < self.start_iteration:
            return self.base_lr
        progressed = iteration - self.start_iteration
        if self.length == 0 or progressed >= self.length:
            return self.target_lr
        fraction = progressed / self.length
        return self.base_lr + fraction * (self.target_lr - self.base_lr)

    @property
    def scale_factor(self) -> float:
        """The ``k`` of Eq. 2."""
        return self.target_lr / self.base_lr


def ramp_for_scale(
    base_lr: float,
    scale: float,
    start_iteration: int,
    length: int = DEFAULT_RAMP_ITERATIONS,
) -> LrRamp:
    """Ramp implementing Eq. 2: target ``lr_T = lr_0 * k``."""
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    return LrRamp(
        start_iteration=start_iteration,
        length=length if scale != 1.0 else 0,
        base_lr=base_lr,
        target_lr=base_lr * scale,
    )


def ramp_to_runtime_info(info: RuntimeInfo, ramp: LrRamp) -> None:
    """Record an in-flight ramp into the replicable runtime state."""
    info.ramp_start = ramp.start_iteration
    info.ramp_length = ramp.length
    info.ramp_base_lr = ramp.base_lr
    info.ramp_target_lr = ramp.target_lr


def ramp_from_runtime_info(info: RuntimeInfo) -> "LrRamp | None":
    """Reconstruct the in-flight ramp from replicated state (if any)."""
    if info.ramp_start < 0:
        return None
    return LrRamp(
        start_iteration=info.ramp_start,
        length=info.ramp_length,
        base_lr=info.ramp_base_lr,
        target_lr=info.ramp_target_lr,
    )
