"""Learning-rate schedules and their composition with elastic scaling.

The paper's experiments run standard recipes — ResNet-50's step decay
(x0.1 at epochs 30/60, "hyperparameters from the official scripts of
Pytorch") and warmup (§VII cites the warmup scheme as a scaling
solution).  Elastic training must compose those schedules with the
progressive linear scaling rule: after a batch change by ``k`` the whole
*remaining* schedule is scaled by ``k``, reached through the ramp.

:class:`ScaledSchedule` implements exactly that composition:

    lr(t) = base_schedule(t) * ramp_factor(t)

where ``ramp_factor`` moves linearly from the pre-adjustment scale to the
new cumulative scale over T iterations — so a decay step landing *inside*
a ramp still takes effect, and repeated adjustments compound.
"""

from __future__ import annotations

import dataclasses
import math
import typing


class LrSchedule:
    """Interface: learning rate as a function of the iteration index."""

    def lr_at(self, iteration: int) -> float:
        """The base learning rate at ``iteration``."""
        raise NotImplementedError


@dataclasses.dataclass(frozen=True)
class ConstantLr(LrSchedule):
    """A flat learning rate."""

    value: float

    def __post_init__(self):
        if self.value <= 0:
            raise ValueError("learning rate must be positive")

    def lr_at(self, iteration: int) -> float:
        return self.value


@dataclasses.dataclass(frozen=True)
class StepDecay(LrSchedule):
    """Multiply by ``factor`` at each milestone (ResNet-50's recipe)."""

    base_lr: float
    milestones: typing.Tuple[int, ...]
    factor: float = 0.1

    def __post_init__(self):
        if self.base_lr <= 0:
            raise ValueError("base_lr must be positive")
        if not 0 < self.factor < 1:
            raise ValueError("factor must be in (0, 1)")
        if list(self.milestones) != sorted(set(self.milestones)):
            raise ValueError("milestones must be strictly increasing")

    def lr_at(self, iteration: int) -> float:
        decays = sum(1 for m in self.milestones if iteration >= m)
        return self.base_lr * self.factor**decays


@dataclasses.dataclass(frozen=True)
class WarmupSchedule(LrSchedule):
    """Linear warmup from ``start_lr`` into an inner schedule."""

    inner: LrSchedule
    warmup_iterations: int
    start_lr: float = 0.0

    def __post_init__(self):
        if self.warmup_iterations < 0:
            raise ValueError("warmup_iterations must be >= 0")
        if self.start_lr < 0:
            raise ValueError("start_lr must be >= 0")

    def lr_at(self, iteration: int) -> float:
        if iteration >= self.warmup_iterations or self.warmup_iterations == 0:
            return self.inner.lr_at(iteration)
        target = self.inner.lr_at(self.warmup_iterations)
        fraction = iteration / self.warmup_iterations
        return self.start_lr + fraction * (target - self.start_lr)


@dataclasses.dataclass(frozen=True)
class CosineDecay(LrSchedule):
    """Cosine annealing from ``base_lr`` to ``final_lr``."""

    base_lr: float
    total_iterations: int
    final_lr: float = 0.0

    def __post_init__(self):
        if self.base_lr <= 0 or self.total_iterations < 1:
            raise ValueError("base_lr and total_iterations must be positive")
        if not 0 <= self.final_lr <= self.base_lr:
            raise ValueError("final_lr must be in [0, base_lr]")

    def lr_at(self, iteration: int) -> float:
        progress = min(1.0, max(0, iteration) / self.total_iterations)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.final_lr + (self.base_lr - self.final_lr) * cosine


@dataclasses.dataclass(frozen=True)
class _RampSegment:
    start: int
    length: int
    from_scale: float
    to_scale: float

    def scale_at(self, iteration: int) -> float:
        if iteration < self.start:
            return self.from_scale
        if self.length == 0 or iteration >= self.start + self.length:
            return self.to_scale
        fraction = (iteration - self.start) / self.length
        return self.from_scale + fraction * (self.to_scale - self.from_scale)


class ScaledSchedule(LrSchedule):
    """A base schedule under a sequence of progressive batch-scale ramps.

    Each :meth:`add_scale` call records that the total batch changed by
    ``k`` at ``iteration``; the cumulative scale ramps to its new value
    over ``ramp_iterations``.  Earlier ramps stay in effect, so repeated
    elastic adjustments compound exactly as Eq. 1 demands.
    """

    def __init__(self, base: LrSchedule):
        self.base = base
        self._segments: typing.List[_RampSegment] = []
        self._current_scale = 1.0

    @property
    def cumulative_scale(self) -> float:
        """The product of all applied batch-scale factors."""
        return self._current_scale

    def add_scale(
        self, factor: float, iteration: int, ramp_iterations: int = 100
    ) -> None:
        """Record a batch change by ``factor`` starting at ``iteration``."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        if ramp_iterations < 0:
            raise ValueError("ramp_iterations must be >= 0")
        if self._segments and iteration < self._segments[-1].start:
            raise ValueError("scale changes must be recorded in order")
        new_scale = self._current_scale * factor
        self._segments.append(
            _RampSegment(
                start=iteration,
                length=0 if factor == 1.0 else ramp_iterations,
                from_scale=self._current_scale,
                to_scale=new_scale,
            )
        )
        self._current_scale = new_scale

    def scale_at(self, iteration: int) -> float:
        """The effective batch-scale multiplier at ``iteration``."""
        scale = 1.0
        for segment in self._segments:
            if iteration < segment.start:
                break
            scale = segment.scale_at(iteration)
        return scale

    def lr_at(self, iteration: int) -> float:
        return self.base.lr_at(iteration) * self.scale_at(iteration)
