"""The hybrid scaling mechanism (paper §III-3, Algorithm 1).

Strong scaling (total batch fixed) is algorithm-transparent but hits
diminishing returns; weak scaling (per-worker batch fixed) keeps the
hardware busy but perturbs the total batch size, which hurts model
performance.  Algorithm 1 finds the *minimum* total batch size whose
strong-scaling optimal worker count covers the new allocation:

    k = 1
    while k <= N'/N:
        TBS' = k * TBS
        if optimal_workers(TBS') >= N':  return TBS'
        k *= 2
    return TBS * N'/N          # fall back to plain weak scaling

and pairs every batch change with a progressive linear LR ramp (§III-3).
"""

from __future__ import annotations

import dataclasses
import typing

from ..perfmodel.throughput import ThroughputModel
from .progressive_lr import DEFAULT_RAMP_ITERATIONS, LrRamp, ramp_for_scale


@dataclasses.dataclass(frozen=True)
class ScalingDecision:
    """Outcome of a scaling policy for one resource adjustment."""

    new_total_batch_size: int
    lr_ramp: LrRamp
    strategy: str  # "strong", "weak" or "hybrid"

    @property
    def batch_scale(self) -> float:
        """``k``: how much the total batch size changed."""
        return self.lr_ramp.scale_factor


class ScalingPolicy:
    """Interface: decide batch size and LR after a worker-count change."""

    def decide(
        self,
        old_workers: int,
        new_workers: int,
        total_batch_size: int,
        learning_rate: float,
        iteration: int,
    ) -> ScalingDecision:
        """Return the post-adjustment batch size and LR ramp."""
        raise NotImplementedError


class StrongScalingPolicy(ScalingPolicy):
    """Keep the total batch size fixed (Optimus/Falcon behaviour)."""

    def decide(self, old_workers, new_workers, total_batch_size,
               learning_rate, iteration) -> ScalingDecision:
        ramp = ramp_for_scale(learning_rate, 1.0, iteration, length=0)
        return ScalingDecision(
            new_total_batch_size=total_batch_size,
            lr_ramp=ramp,
            strategy="strong",
        )


class WeakScalingPolicy(ScalingPolicy):
    """Scale the total batch proportionally (Gandiva behaviour), with the
    progressive LR ramp applied so convergence is not left to the user."""

    def __init__(self, ramp_iterations: int = DEFAULT_RAMP_ITERATIONS):
        self.ramp_iterations = ramp_iterations

    def decide(self, old_workers, new_workers, total_batch_size,
               learning_rate, iteration) -> ScalingDecision:
        scale = new_workers / old_workers
        new_tbs = max(new_workers, int(round(total_batch_size * scale)))
        ramp = ramp_for_scale(
            learning_rate, new_tbs / total_batch_size, iteration,
            length=self.ramp_iterations,
        )
        return ScalingDecision(
            new_total_batch_size=new_tbs, lr_ramp=ramp, strategy="weak"
        )


class HybridScalingPolicy(ScalingPolicy):
    """Algorithm 1: adaptively choose between strong and weak scaling."""

    def __init__(
        self,
        throughput_model: ThroughputModel,
        ramp_iterations: int = DEFAULT_RAMP_ITERATIONS,
        max_workers_searched: int = 1024,
    ):
        self.throughput_model = throughput_model
        self.ramp_iterations = ramp_iterations
        self.max_workers_searched = max_workers_searched

    def get_total_batch_size(
        self, old_workers: int, new_workers: int, total_batch_size: int
    ) -> typing.Tuple[int, str]:
        """Procedure GETTOTALBATCHSIZE of Algorithm 1.

        Returns the new total batch size and which strategy produced it.
        """
        if old_workers < 1 or new_workers < 1:
            raise ValueError("worker counts must be >= 1")
        if total_batch_size < old_workers:
            raise ValueError(
                f"total batch {total_batch_size} < {old_workers} workers"
            )
        if new_workers <= old_workers:
            # Scaling in (or unchanged): strong scaling is always safe —
            # fewer workers only increase the per-worker batch.
            return total_batch_size, "strong"
        k = 1
        while k <= new_workers / old_workers:
            candidate = k * total_batch_size
            optimal = self.throughput_model.optimal_workers(
                candidate, max_workers=self.max_workers_searched
            )
            if optimal >= new_workers:
                return candidate, ("strong" if k == 1 else "hybrid")
            k *= 2
        scale = new_workers / old_workers
        return max(new_workers, int(round(total_batch_size * scale))), "weak"

    def decide(self, old_workers, new_workers, total_batch_size,
               learning_rate, iteration) -> ScalingDecision:
        new_tbs, strategy = self.get_total_batch_size(
            old_workers, new_workers, total_batch_size
        )
        scale = new_tbs / total_batch_size
        ramp = ramp_for_scale(
            learning_rate, scale, iteration,
            length=self.ramp_iterations if scale != 1.0 else 0,
        )
        return ScalingDecision(
            new_total_batch_size=new_tbs, lr_ramp=ramp, strategy=strategy
        )
