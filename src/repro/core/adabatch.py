"""The AdaBatch dynamic-batch-size schedule (paper §VI-B workload).

AdaBatch trains with a small batch at first and doubles it at intervals.
The paper's adaptation for ResNet-50/ImageNet: start at 512, double every
30 epochs, stop after 90 — so batch sizes 512/1024/2048 — doubling the
learning rate alongside (finished in 100 iterations by the progressive
rule).  The schedule is the *algorithm-side* driver of elasticity: Elan's
job is to feed it the right amount of hardware at each phase.
"""

from __future__ import annotations

import dataclasses
import typing

from ..perfmodel.throughput import ThroughputModel


@dataclasses.dataclass(frozen=True)
class BatchPhase:
    """One constant-batch segment of an AdaBatch schedule."""

    start_epoch: int
    end_epoch: int
    total_batch_size: int
    lr_scale: float  # cumulative LR multiplier vs the initial LR


@dataclasses.dataclass(frozen=True)
class AdaBatchSchedule:
    """A dynamic batch-size schedule with matched LR scaling."""

    phases: typing.Tuple[BatchPhase, ...]

    def __post_init__(self):
        if not self.phases:
            raise ValueError("schedule needs at least one phase")
        for prev, nxt in zip(self.phases, self.phases[1:]):
            if nxt.start_epoch != prev.end_epoch:
                raise ValueError("phases must be contiguous")

    @property
    def total_epochs(self) -> int:
        """Epochs covered by the whole schedule."""
        return self.phases[-1].end_epoch

    def phase_at(self, epoch: float) -> BatchPhase:
        """The phase active at ``epoch``."""
        if epoch < 0 or epoch >= self.total_epochs:
            raise ValueError(f"epoch {epoch} outside [0, {self.total_epochs})")
        for phase in self.phases:
            if phase.start_epoch <= epoch < phase.end_epoch:
                return phase
        raise AssertionError("unreachable: contiguous phases cover the range")

    def batch_at(self, epoch: float) -> int:
        """Total batch size at ``epoch``."""
        return self.phase_at(epoch).total_batch_size

    def worker_plan(
        self,
        throughput_model: ThroughputModel,
        per_worker_batch: int = 32,
        max_workers: "int | None" = None,
    ) -> "list[int]":
        """Workers to request in each phase.

        The paper is "guided by the strong scaling curves" (Fig. 17) and
        lands on a fixed per-worker batch of 32 (16@512, 32@1024, 64@2048);
        we follow the same rule, optionally clamping to the strong-scaling
        optimum so resources are never knowingly wasted.
        """
        plan = []
        for phase in self.phases:
            workers = max(1, phase.total_batch_size // per_worker_batch)
            optimal = throughput_model.optimal_workers(phase.total_batch_size)
            workers = min(workers, max(1, optimal))
            if max_workers is not None:
                workers = min(workers, max_workers)
            plan.append(workers)
        return plan


def doubling_schedule(
    initial_batch: int = 512,
    epochs_per_phase: int = 30,
    num_phases: int = 3,
) -> AdaBatchSchedule:
    """The paper's §VI-B schedule: double the batch (and LR) every phase."""
    if initial_batch < 1 or epochs_per_phase < 1 or num_phases < 1:
        raise ValueError("schedule parameters must be positive")
    phases = []
    for index in range(num_phases):
        phases.append(
            BatchPhase(
                start_epoch=index * epochs_per_phase,
                end_epoch=(index + 1) * epochs_per_phase,
                total_batch_size=initial_batch * 2**index,
                lr_scale=float(2**index),
            )
        )
    return AdaBatchSchedule(phases=tuple(phases))
