"""Baseline systems the paper compares against: S&R and Litz (§VI-A)."""

from .litz import (
    CONTEXT_EXPANSION,
    LITZ_2,
    LITZ_4,
    LitzConfig,
    LitzModel,
    SWAP_BANDWIDTH,
    SWAP_OVERHEAD,
)
from .shutdown_restart import ShutdownRestartJob
from .timing import (
    AdjustmentTiming,
    ElanAdjustmentModel,
    ShutdownRestartModel,
    runtime_overhead_fraction,
)

__all__ = [
    "AdjustmentTiming",
    "CONTEXT_EXPANSION",
    "ElanAdjustmentModel",
    "LITZ_2",
    "LITZ_4",
    "LitzConfig",
    "LitzModel",
    "SWAP_BANDWIDTH",
    "SWAP_OVERHEAD",
    "ShutdownRestartJob",
    "ShutdownRestartModel",
    "runtime_overhead_fraction",
]
