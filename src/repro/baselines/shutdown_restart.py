"""The live Shutdown-Restart baseline (paper §VI-A "S&R").

The most common elasticity practice (Gandiva, Optimus): on an adjustment,
checkpoint all training state to shared storage, shut every worker down,
restart the job with the new resource configuration and load the
checkpoint.  This implementation actually does all of that against the
numpy substrate — real serialization through the in-memory shared
filesystem, real teardown of the replica objects, real reload — so its
data-consistency behaviour can be compared against Elan's runtime
(state-wise they must agree; time-wise S&R pays the Fig. 11 phases).
"""

from __future__ import annotations

import typing

import numpy as np

from ..replication import SharedStorage
from ..training.dataloader import SerialLoader
from ..training.datasets import Dataset
from ..training.nn import (
    accuracy,
    average_gradients,
    init_mlp,
    loss_and_gradients,
)
from ..training.optim import MomentumSGD
from ..training.state import RuntimeInfo, TrainingState


class ShutdownRestartJob:
    """A data-parallel training job with checkpoint-based elasticity.

    The job is driven synchronously by the caller (there is no async
    coordination to exploit — that is the point of the baseline):
    ``train(n)`` runs n iterations, ``adjust(workers)`` performs the full
    checkpoint / shutdown / restart / load cycle.
    """

    def __init__(
        self,
        dataset: Dataset,
        workers: int,
        total_batch_size: int,
        base_lr: float = 0.05,
        hidden_dim: int = 32,
        momentum: float = 0.9,
        storage: "SharedStorage | None" = None,
        seed: int = 0,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if total_batch_size < workers:
            raise ValueError("total batch smaller than the worker count")
        self.dataset = dataset
        self.base_lr = base_lr
        self.hidden_dim = hidden_dim
        self.momentum = momentum
        self.storage = storage or SharedStorage()
        self.seed = seed
        self.checkpoints = 0
        self.restarts = 0
        self._alive = True
        self.workers = workers
        self.total_batch_size = total_batch_size
        # One canonical replica: in data-parallel training every worker
        # holds identical state, so the baseline tracks it once and splits
        # micro-batches the same way the real workers would.
        self._params = init_mlp(
            dataset.input_dim, hidden_dim, dataset.num_classes, seed=seed
        )
        self._optimizer = MomentumSGD(lr=base_lr, momentum=momentum)
        self._loader = SerialLoader(dataset.train_size, seed=seed)
        self._info = RuntimeInfo(
            learning_rate=base_lr, total_batch_size=total_batch_size
        )

    @property
    def iteration(self) -> int:
        """Completed iterations."""
        return self._info.iteration

    @property
    def checkpoint_path(self) -> str:
        """Where this job checkpoints on the shared filesystem."""
        return f"sr/job-{self.seed}/checkpoint"

    def train(self, iterations: int) -> "list[float]":
        """Run ``iterations`` synchronous data-parallel iterations."""
        if not self._alive:
            raise RuntimeError("job is shut down; restart() first")
        per_worker = max(1, self.total_batch_size // self.workers)
        losses = []
        for _ in range(iterations):
            slices = self._loader.next_iteration(self.workers, per_worker)
            grads, batch_losses = [], []
            for indices in slices:
                if len(indices) == 0:
                    continue
                loss, grad = loss_and_gradients(
                    self._params,
                    self.dataset.train_x[indices],
                    self.dataset.train_y[indices],
                )
                grads.append(grad)
                batch_losses.append(loss)
            self._optimizer.step(self._params, average_gradients(grads))
            losses.append(float(np.mean(batch_losses)))
            self._info.iteration += 1
            self._info.epoch = self._loader.epoch
        return losses

    # -- the S&R adjustment cycle (Fig. 10 timeline) ----------------------------

    def checkpoint(self) -> int:
        """Dump the full training state to shared storage; returns bytes."""
        state = TrainingState(
            model=self._params,
            optimizer=self._optimizer.state_dict(),
            loader=self._loader.state_dict(),
            comm_group=[f"w{i}" for i in range(self.workers)],
            runtime=self._info,
        )
        self.checkpoints += 1
        return self.storage.save(self.checkpoint_path, state)

    def shutdown(self) -> None:
        """Tear down every worker: all in-memory state is discarded."""
        self._alive = False
        self._params = None
        self._optimizer = None
        self._loader = None

    def restart(self, workers: int) -> None:
        """Cold-start with a new worker count and load the checkpoint."""
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if not self.storage.exists(self.checkpoint_path):
            raise RuntimeError("no checkpoint to restart from")
        state = self.storage.load(self.checkpoint_path)
        self._params = state.model
        self._optimizer = MomentumSGD(lr=self.base_lr, momentum=self.momentum)
        self._optimizer.load_state_dict(state.optimizer)
        self._loader = SerialLoader(self.dataset.train_size, seed=self.seed)
        self._loader.load_state_dict(state.loader)
        self._loader.repartition(workers)
        self._info = state.runtime
        self.workers = workers
        self._alive = True
        self.restarts += 1

    def adjust(self, workers: int) -> None:
        """The full S&R cycle: checkpoint -> shutdown -> restart+load."""
        self.checkpoint()
        self.shutdown()
        self.restart(workers)

    # -- observation ----------------------------------------------------------------

    def evaluate(self) -> float:
        """Test accuracy of the current model."""
        if not self._alive:
            raise RuntimeError("job is shut down")
        return accuracy(self._params, self.dataset.test_x, self.dataset.test_y)

    def params(self) -> dict:
        """The current model parameters (canonical replica)."""
        if not self._alive:
            raise RuntimeError("job is shut down")
        return self._params
