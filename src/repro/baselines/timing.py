"""Adjustment-latency models: Elan vs Shutdown-Restart (Figs. 10, 11, 15).

Both models produce per-phase time breakdowns for the three adjustment
kinds.  The decisive structural difference (paper §V-B, §VI-A2):

* **Elan** — new workers start and initialize *off* the critical path
  (asynchronous coordination); the training pause is only replication +
  communication-group reconstruction + data repartition.  Replication is
  IO-free and topology-aware.
* **S&R** — checkpoint, shutdown and cold restart of *every* worker are
  all on the critical path for scaling; only for migration can the new
  workers' start be overlapped (the old workers are discarded anyway), so
  there the gap shrinks to the IO-vs-IO-free difference (~4x) while for
  scaling in/out it is 10-80x.
"""

from __future__ import annotations

import dataclasses
import math
import typing

import numpy as np

from ..perfmodel import calibration
from ..perfmodel.models import ModelSpec
from ..replication import (
    checkpoint_load_cost,
    checkpoint_write_cost,
    plan_migration,
    plan_replication,
)
from ..topology import BandwidthProfile, TopologyNode, cluster_for_gpu_count


@dataclasses.dataclass(frozen=True)
class AdjustmentTiming:
    """Per-phase breakdown of one resource adjustment."""

    kind: str  # "migration" / "scale_in" / "scale_out"
    system: str  # "elan" / "sr"
    phases: typing.Dict[str, float]

    @property
    def total(self) -> float:
        """End-to-end adjustment time (the Fig. 15 metric)."""
        return sum(self.phases.values())


def _placed_gpus(
    old_workers: int, new_workers: int, kind: str
) -> typing.Tuple["list[TopologyNode]", "list[TopologyNode]"]:
    """Tree-order GPU placement for an adjustment's old and new workers.

    Migration places the new workers on entirely fresh nodes (the usual
    reason to migrate); scale-out packs them after the old ones.
    """
    if kind == "migration":
        _cluster, gpus = cluster_for_gpu_count(old_workers + new_workers)
        return gpus[:old_workers], gpus[old_workers : old_workers + new_workers]
    total = max(old_workers, new_workers)
    _cluster, gpus = cluster_for_gpu_count(total)
    return gpus[:old_workers], gpus[old_workers:new_workers]


class ElanAdjustmentModel:
    """Critical-path time of an Elan adjustment."""

    def __init__(
        self,
        profile: "BandwidthProfile | None" = None,
        seed: int = 0,
    ):
        self.profile = profile or BandwidthProfile()
        self.rng = np.random.default_rng(seed)

    def _jitter(self) -> float:
        return float(self.rng.normal(1.0, 0.04))

    def adjustment_time(
        self, kind: str, model: ModelSpec, old_workers: int, new_workers: int
    ) -> AdjustmentTiming:
        """Breakdown for one adjustment of ``kind``."""
        if kind not in ("migration", "scale_in", "scale_out"):
            raise ValueError(f"unknown adjustment kind {kind!r}")
        old_gpus, new_gpus = _placed_gpus(old_workers, new_workers, kind)
        phases = {
            "coordinate": calibration.COORDINATION_RTT,
            "group_reconstruct": calibration.GROUP_RECONSTRUCT_TIME * self._jitter(),
            "repartition": calibration.DATA_REPARTITION_TIME,
        }
        if kind == "scale_in":
            replication = 0.0  # survivors already hold the state (§IV-1)
        elif kind == "migration":
            # Chaining lets freshly replicated workers fan the state out,
            # so a whole-job move is not bottlenecked on one source NIC.
            plan = plan_migration(
                old_gpus, new_gpus, model.gpu_state_bytes, model.cpu_state_bytes
            )
            chained = plan_replication(
                old_gpus, new_gpus, model.gpu_state_bytes,
                model.cpu_state_bytes, allow_chaining=True,
            )
            replication = min(
                plan.estimated_time(self.profile),
                chained.estimated_time(self.profile),
            )
        else:
            plan = plan_replication(
                old_gpus, new_gpus, model.gpu_state_bytes,
                model.cpu_state_bytes, allow_chaining=True,
            )
            replication = plan.estimated_time(self.profile)
        phases["replication"] = replication * self._jitter()
        # Start + init of new workers happen in parallel with training and
        # are NOT in the breakdown: that is the asynchronous coordination
        # mechanism's whole point.
        return AdjustmentTiming(kind=kind, system="elan", phases=phases)


class ShutdownRestartModel:
    """Critical-path time of an S&R adjustment (the Fig. 10 timeline)."""

    def __init__(self, seed: int = 0):
        self.rng = np.random.default_rng(seed)

    def _startup(self, workers: int) -> typing.Tuple[float, float]:
        """Max-over-workers start and init time (all must be up)."""
        mean_start = calibration.WORKER_START_TIME
        mean_init = calibration.WORKER_INIT_TIME
        # Expected max of n Gaussians grows ~ sigma * sqrt(2 ln n).
        tail = calibration.WORKER_STARTUP_JITTER * math.sqrt(
            2.0 * math.log(max(2, workers))
        )
        noise = float(self.rng.normal(1.0, 0.03))
        return mean_start * noise, (mean_init + tail) * noise

    def adjustment_time(
        self, kind: str, model: ModelSpec, old_workers: int, new_workers: int
    ) -> AdjustmentTiming:
        """Breakdown for one adjustment of ``kind``."""
        if kind not in ("migration", "scale_in", "scale_out"):
            raise ValueError(f"unknown adjustment kind {kind!r}")
        write = checkpoint_write_cost(
            model.gpu_state_bytes, model.cpu_state_bytes
        ).total
        # All restarted workers load from the shared FS concurrently;
        # mild bandwidth contention grows with the reader count.
        readers = max(1, new_workers)
        load = checkpoint_load_cost(
            model.gpu_state_bytes, model.cpu_state_bytes
        ).total * (1.0 + 0.05 * (readers - 1))
        phases = {
            "coordinate": calibration.COORDINATION_RTT,
            "checkpoint": write * float(self.rng.normal(1.0, 0.05)),
        }
        if kind == "migration":
            # New workers were started during training (S&R can use the
            # async feature here because old workers are discarded): only
            # checkpoint + load remain on the critical path.
            phases["load"] = load
        else:
            start, init = self._startup(new_workers)
            phases["shutdown"] = calibration.WORKER_SHUTDOWN_TIME
            phases["start"] = start
            phases["init"] = init
            phases["load"] = load
        return AdjustmentTiming(kind=kind, system="sr", phases=phases)


def runtime_overhead_fraction(
    model: ModelSpec,
    workers: int,
    total_batch_size: "int | None" = None,
    coordination_interval: int = 1,
) -> float:
    """Fig. 14: wasted-time fraction of Elan's coordination when no
    adjustments happen.

    One coordination is a tiny non-blocking AM round trip; the AM serves
    more workers with mildly growing latency.  The fraction is the
    per-iteration coordination cost over the iteration time.
    """
    from ..perfmodel.throughput import ThroughputModel

    if total_batch_size is None:
        total_batch_size = 32 * workers
    throughput_model = ThroughputModel(model)
    iteration = throughput_model.iteration_time(workers, total_batch_size)
    coordination = calibration.COORDINATION_BLOCKING_COST * (
        1.0 + 0.05 * math.log2(max(1, workers))
    )
    return coordination / (iteration * coordination_interval)
