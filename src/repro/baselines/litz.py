"""The Litz baseline: programming-model elasticity via executor
multiplexing (paper §VI-A, Fig. 16).

Litz achieves elasticity by over-decomposing the job into many *executors*
and context-switching several of them on each shared GPU worker.  Because
GPU memory is limited, every executor switch moves the outgoing context
(parameters, optimizer state, workspace) out to CPU memory and the
incoming one in — and that CPU<->GPU traffic is what destroys training
throughput (the paper measures >90% loss on Transformer).

Following the paper we also implement *local gradient aggregation*:
executors on one worker aggregate locally, so only one allreduce crosses
workers per iteration regardless of the executor count.
"""

from __future__ import annotations

import dataclasses

from ..perfmodel.models import ModelSpec
from ..perfmodel.throughput import PAPER_CLUSTER, ClusterSpec, ThroughputModel

#: Effective CPU<->GPU copy bandwidth for context swaps, bytes/s.  Context
#: state lives in pageable host memory (executors are scheduled
#: dynamically, so pinning everything is not possible) — roughly 2.5 GB/s
#: on PCIe 3.0, well under the pinned-copy peak.
SWAP_BANDWIDTH = 2.5e9

#: Fixed per-switch overhead: allocator churn, stream sync, framework
#: context rebuild (seconds).
SWAP_OVERHEAD = 0.1

#: The executor context includes workspace/activation buffers beyond the
#: parameter+optimizer state.
CONTEXT_EXPANSION = 1.5


@dataclasses.dataclass(frozen=True)
class LitzConfig:
    """One Litz deployment variant (the paper runs Litz-2 and Litz-4)."""

    executors_per_worker: int
    per_executor_batch: int = 32

    def __post_init__(self):
        if self.executors_per_worker < 1:
            raise ValueError("need at least one executor per worker")
        if self.per_executor_batch < 1:
            raise ValueError("per-executor batch must be >= 1")


LITZ_2 = LitzConfig(executors_per_worker=2)
LITZ_4 = LitzConfig(executors_per_worker=4)


class LitzModel:
    """Throughput of Litz executor multiplexing on the paper's testbed."""

    def __init__(
        self,
        model: ModelSpec,
        config: LitzConfig,
        cluster: ClusterSpec = PAPER_CLUSTER,
    ):
        self.model = model
        self.config = config
        self.cluster = cluster
        self._throughput_model = ThroughputModel(model, cluster)

    def context_switch_time(self) -> float:
        """Seconds to swap one executor context out and the next one in."""
        context_bytes = CONTEXT_EXPANSION * self.model.gpu_state_bytes
        return SWAP_OVERHEAD + 2.0 * context_bytes / SWAP_BANDWIDTH

    def iteration_time(self, workers: int) -> float:
        """One synchronous iteration: every executor runs once per worker,
        locally aggregated, then one cross-worker allreduce."""
        if workers < 1:
            raise ValueError("workers must be >= 1")
        executors = self.config.executors_per_worker
        per_executor = self._throughput_model.compute_time(
            self.config.per_executor_batch
        )
        sequential = executors * (self.context_switch_time() + per_executor)
        # Local aggregation leaves a single allreduce among workers; the
        # long swap-bound iteration hides most of it, same overlap window
        # rule as the Elan model.
        comm = self._throughput_model.allreduce_time(workers)
        window = self.cluster.overlap_window_fraction * sequential
        return sequential + max(0.0, comm - window)

    def throughput(self, workers: int) -> float:
        """Samples per second across the whole job."""
        samples = (
            workers
            * self.config.executors_per_worker
            * self.config.per_executor_batch
        )
        return samples / self.iteration_time(workers)

    def relative_throughput(self, workers: int) -> float:
        """Litz throughput over Elan's at the same per-GPU sample load
        (the Fig. 16 metric)."""
        per_worker_batch = (
            self.config.executors_per_worker * self.config.per_executor_batch
        )
        elan = self._throughput_model.throughput(
            workers, workers * per_worker_batch
        )
        return self.throughput(workers) / elan
