"""Command-line interface to the Elan reproduction.

Subcommands (also installed as the ``repro-elan`` console script)::

    python -m repro.cli models                          # Table I
    python -m repro.cli scaling --model ResNet-50       # Figs. 3/4 curves
    python -m repro.cli adjust --kind scale_out --old-workers 8 --new-workers 16
    python -m repro.cli elastic-training                # Fig. 18/19, Table IV
    python -m repro.cli schedule --policy e-fifo        # §VI-C metrics
    python -m repro.cli demo                            # live elastic job
    python -m repro.cli tracing demo trace.json         # record a trace
    python -m repro.cli soak --transport both           # chaos soak + SLOs
    python -m repro.cli cluster scenario --transport both   # multi-job churn
"""

from __future__ import annotations

import argparse
import os
import sys
import typing


def _print_table(headers, rows, widths):
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def cmd_models(_args) -> int:
    """Print Table I."""
    from .perfmodel import MODEL_ZOO

    rows = [
        (s.name, s.family, s.domain, f"{s.parameters / 1e6:.0f}M", s.dataset)
        for s in MODEL_ZOO.values()
    ]
    _print_table(("Model", "Type", "Domain", "#Params", "Dataset"),
                 rows, (14, 10, 7, 8, 10))
    return 0


def cmd_scaling(args) -> int:
    """Print strong- and weak-scaling curves for one model."""
    from .perfmodel import ThroughputModel, get_model
    from .perfmodel.throughput import EVAL_CLUSTER, PAPER_CLUSTER

    cluster = EVAL_CLUSTER if args.cluster == "eval" else PAPER_CLUSTER
    model = ThroughputModel(get_model(args.model), cluster)
    workers = [1, 2, 4, 8, 16, 32, 64, 128]
    print(f"strong scaling ({args.model}, {args.cluster} cluster), samples/s:")
    rows = []
    for batch in (256, 512, 1024, 2048):
        curve = dict(model.strong_scaling_curve(batch, workers))
        rows.append((batch,) + tuple(
            f"{curve[n]:.0f}" if n in curve else "-" for n in workers
        ))
    _print_table(("TBS",) + tuple(workers), rows, (6,) + (8,) * len(workers))
    print("\nweak scaling, samples/s:")
    rows = []
    for batch in (16, 32, 64):
        curve = dict(model.weak_scaling_curve(batch, workers))
        rows.append((batch,) + tuple(f"{curve[n]:.0f}" for n in workers))
    _print_table(("b/wkr",) + tuple(workers), rows, (6,) + (8,) * len(workers))
    print(f"\noptimal workers: "
          + ", ".join(f"TBS {b}: {model.optimal_workers(b)}"
                      for b in (256, 512, 1024, 2048)))
    return 0


def cmd_adjust(args) -> int:
    """Compare Elan vs S&R for one resource adjustment."""
    from .baselines import ElanAdjustmentModel, ShutdownRestartModel
    from .perfmodel import get_model

    model = get_model(args.model)
    elan = ElanAdjustmentModel(seed=args.seed).adjustment_time(
        args.kind, model, args.old_workers, args.new_workers
    )
    sr = ShutdownRestartModel(seed=args.seed).adjustment_time(
        args.kind, model, args.old_workers, args.new_workers
    )
    print(f"{args.kind} {args.old_workers} -> {args.new_workers} "
          f"({model.name}):")
    for timing, label in ((elan, "Elan"), (sr, "S&R")):
        phases = ", ".join(f"{k}={v:.2f}s" for k, v in timing.phases.items())
        print(f"  {label:5s} total {timing.total:6.2f}s  ({phases})")
    print(f"  speedup: {sr.total / elan.total:.1f}x")
    return 0


def cmd_elastic_training(_args) -> int:
    """Replay the §VI-B experiment (Fig. 18/19, Table IV)."""
    from .core import ElasticTrainingExperiment

    experiment = ElasticTrainingExperiment(seed=0)
    static, fixed, elastic = experiment.all_configurations()
    rows = [
        (run.label, f"{run.total_time:.0f}s", f"{run.final_accuracy:.2%}",
         str([p.workers for p in run.phases]))
        for run in (static, fixed, elastic)
    ]
    _print_table(("Config", "Total", "Final top-1", "Workers"),
                 rows, (22, 9, 12, 14))
    print("\ntime to solution:")
    rows = []
    for target in (0.745, 0.75, 0.755):
        ts = static.time_to_accuracy(target)
        te = elastic.time_to_accuracy(target)
        rows.append((f"{target:.1%}", f"{ts:.0f}s", f"{te:.0f}s",
                     f"{ts / te:.3f}x"))
    _print_table(("Target", "Static", "Elastic", "Speedup"),
                 rows, (8, 10, 10, 9))
    return 0


def cmd_schedule(args) -> int:
    """Run the scheduling simulation under one policy."""
    from .scheduling import (
        BackfillPolicy,
        ClusterSimulator,
        ElanCosts,
        ElasticBackfillPolicy,
        ElasticFifoPolicy,
        ElasticSrtfPolicy,
        FifoPolicy,
        IdealCosts,
        ShutdownRestartCosts,
        generate_trace,
    )

    policies = {
        "fifo": FifoPolicy,
        "bf": BackfillPolicy,
        "e-fifo": ElasticFifoPolicy,
        "e-bf": ElasticBackfillPolicy,
        "e-srtf": ElasticSrtfPolicy,
    }
    costs = {
        "ideal": IdealCosts,
        "elan": ElanCosts,
        "sr": ShutdownRestartCosts,
    }
    trace = generate_trace(num_jobs=args.jobs, seed=args.seed)
    result = ClusterSimulator(
        trace, policies[args.policy](), total_gpus=args.gpus,
        costs=costs[args.system](),
    ).run()
    print(f"policy={args.policy} system={args.system} jobs={len(trace)} "
          f"gpus={args.gpus} seed={args.seed}")
    print(f"  average JPT : {result.average_jpt:10.0f} s")
    print(f"  average JCT : {result.average_jct:10.0f} s")
    print(f"  makespan    : {result.makespan:10.0f} s")
    print(f"  utilization : {result.average_utilization():10.0%}")
    print(f"  adjustments : {result.adjustments:10d}")
    return 0


def cmd_trace(args) -> int:
    """Generate a trace and save it, or summarize a saved one."""
    from .scheduling import generate_trace, load_trace, save_trace

    if args.load:
        jobs = load_trace(args.load)
        source = args.load
    else:
        jobs = generate_trace(num_jobs=args.jobs, seed=args.seed)
        source = f"generated (seed={args.seed})"
        if args.save:
            save_trace(jobs, args.save)
            print(f"saved {len(jobs)} jobs to {args.save}")
    requested = sum(j.req_res for j in jobs)
    print(f"trace: {len(jobs)} jobs, {source}")
    print(f"  span          : {jobs[-1].submit_time - jobs[0].submit_time:,.0f} s")
    print(f"  total req_res : {requested} workers")
    print(f"  models        : "
          + ", ".join(sorted({j.model.name for j in jobs})))
    return 0


def cmd_capacity(args) -> int:
    """Capacity planning: GPUs needed to hit a JCT target."""
    from .scheduling import (
        ElasticFifoPolicy,
        FifoPolicy,
        capacity_sweep,
        elasticity_hardware_savings,
        generate_trace,
    )

    trace = generate_trace(num_jobs=args.jobs, seed=args.seed)
    sizes = [int(s) for s in args.gpus.split(",")]
    print(f"sweep over {sizes} GPUs ({len(trace)} jobs, seed {args.seed}):")
    rows = []
    for point in capacity_sweep(trace, FifoPolicy(), sizes):
        rows.append(("fifo", point.gpus, f"{point.average_jct:.0f}",
                     f"{point.utilization:.0%}"))
    for point in capacity_sweep(trace, ElasticFifoPolicy(), sizes):
        rows.append(("e-fifo", point.gpus, f"{point.average_jct:.0f}",
                     f"{point.utilization:.0%}"))
    _print_table(("Policy", "GPUs", "Avg JCT (s)", "Util"),
                 rows, (8, 6, 12, 6))
    if args.jct_target:
        savings = elasticity_hardware_savings(
            trace, FifoPolicy(), ElasticFifoPolicy(),
            args.jct_target, sizes,
        )
        print(f"\nGPUs needed for JCT <= {args.jct_target:.0f}s: "
              f"fifo={savings['fifo']}, e-fifo={savings['e-fifo']}")
    return 0


def cmd_tracing(args) -> int:
    """Produce, summarize, or validate traces; inspect metric dumps."""
    from .observability import (
        load_trace_events,
        summarize_events,
        summarize_point_events,
        validate_events,
    )

    if args.action == "metrics":
        import json

        from .observability import MetricRegistry

        with open(args.path) as f:
            registry = MetricRegistry.from_json(json.load(f))
        rows = []
        for name, value in registry.snapshot().items():
            if isinstance(value, dict):  # histogram stats
                for key in ("count", "mean", "p50", "p99", "max"):
                    if value.get(key) is not None:
                        rows.append((f"{name}.{key}", f"{value[key]:.6g}"))
            else:
                rows.append((name, f"{value:.6g}"))
        _print_table(("Metric", "Value"), rows, (36, 14))
        return 0

    if args.action == "demo":
        from .core import ElasticJob, WeakScalingPolicy
        from .training import make_classification

        dataset = make_classification(
            train_size=512, test_size=128, seed=args.seed
        )
        with ElasticJob(
            dataset, workers=2, total_batch_size=64, base_lr=0.02,
            scaling_policy=WeakScalingPolicy(ramp_iterations=5),
            seed=args.seed,
        ) as job:
            job.wait_until_iteration(10)
            job.scale_out(2)
            job.wait_for_adjustments(1)
            job.wait_until_iteration(job.status()["iteration"] + 10)
        tracer = job.runtime.tracer
        tracer.export(args.path)
        print(f"wrote {len(tracer.to_events())} events to {args.path}")
        print("open in https://ui.perfetto.dev or chrome://tracing")
        return 0

    events = load_trace_events(args.path)
    if args.action == "validate":
        problems = validate_events(events)
        if problems:
            for problem in problems:
                print(f"INVALID: {problem}")
            return 1
        print(f"OK: {len(events)} events, Chrome trace-event format")
        return 0

    # summarize
    rows = [
        (name, count, f"{total:.4f}", f"{mean * 1e3:.3f}", f"{peak * 1e3:.3f}")
        for name, count, total, mean, peak in summarize_events(events)
    ]
    _print_table(
        ("Span", "Count", "Total (s)", "Mean (ms)", "Max (ms)"),
        rows, (24, 7, 11, 11, 11),
    )
    instants, counters = summarize_point_events(events)
    if instants:
        print()
        rows = [
            (name, count,
             ", ".join(f"{t}={n}" for t, n in sorted(per_track.items())))
            for name, count, per_track in instants
        ]
        _print_table(("Instant", "Count", "Per track"), rows, (24, 7, 36))
    if counters:
        print()
        rows = [
            (name, samples,
             f"{last:.6g}" if isinstance(last, (int, float)) else "-",
             ", ".join(f"{t}={n}" for t, n in sorted(per_track.items())))
            for name, samples, last, per_track in counters
        ]
        _print_table(("Counter", "Samples", "Last", "Per track"),
                     rows, (24, 8, 10, 28))
    return 0


def _fleet_query(connect: str, query: str, ack_timeout: float) -> dict:
    """One TELEMETRY query round against a live AM at ``host:port``."""
    from .coordination.messages import MessageType
    from .net import tcp_link

    host, _, port = connect.rpartition(":")
    if not port.isdigit():
        raise ValueError(f"malformed --connect {connect!r} (host:port)")
    link, _transport = tcp_link(
        host or "127.0.0.1", int(port), "fleet-cli", ack_timeout=ack_timeout
    )
    try:
        return link.request(MessageType.TELEMETRY, {"query": query})
    finally:
        link.close()


def cmd_fleet(args) -> int:
    """Fleet-level observability: goodput reports, merged traces, metrics.

    Sources are either per-process trace files (positional paths) or a
    live AM queried over TCP (``--connect host:port``) whose fleet
    collector was fed by the workers' telemetry shippers.
    """
    from .observability import (
        FleetCollector,
        GoodputReport,
        SLOViolation,
        TraceMerger,
        derive_report,
        load_trace_events,
        merge_metric_snapshots,
        prometheus_text,
        write_trace_events,
    )

    def merged_from_paths(paths):
        merger = TraceMerger()
        for path in paths:
            merger.add(load_trace_events(path))
        return merger.merge()

    def gate(report) -> bool:
        if args.goodput_floor is None and args.mttr_ceiling is None:
            return True
        try:
            report.assert_slo(
                goodput_floor=(
                    0.0 if args.goodput_floor is None else args.goodput_floor
                ),
                mttr_ceiling=(
                    float("inf") if args.mttr_ceiling is None
                    else args.mttr_ceiling
                ),
            )
        except SLOViolation as violation:
            print(f"SLO violation: {violation}", file=sys.stderr)
            return False
        return True

    if args.action == "report":
        if args.connect:
            reply = _fleet_query(args.connect, "report", args.ack_timeout)
            reports = {
                name: GoodputReport(**fields)
                for name, fields in sorted(reply.get("reports", {}).items())
            }
            print(f"workers: {', '.join(reply.get('workers', [])) or '-'}")
        elif args.paths:
            reports = {
                "fleet": derive_report(merged_from_paths(args.paths),
                                       job="fleet"),
            }
        else:
            print("fleet report needs trace files or --connect",
                  file=sys.stderr)
            return 2
        ok = True
        for name, report in reports.items():
            print(report.format())
            print()
            if name == "fleet":
                ok = gate(report) and ok
        return 0 if ok else 1

    if args.action == "export":
        if not args.out:
            print("fleet export needs --out", file=sys.stderr)
            return 2
        if args.connect:
            reply = _fleet_query(args.connect, "fleet", args.ack_timeout)
            collector = FleetCollector.from_payload(reply.get("fleet") or {})
            events = collector.merged_events(
                am_events=reply.get("am_events")
            )
        elif args.paths:
            events = merged_from_paths(args.paths)
        else:
            print("fleet export needs trace files or --connect",
                  file=sys.stderr)
            return 2
        write_trace_events(args.out, events)
        print(f"wrote {len(events)} merged fleet events to {args.out}")
        return 0

    # prom: Prometheus-style text exposition of the fleet metric rollup.
    if args.connect:
        reply = _fleet_query(args.connect, "rollup", args.ack_timeout)
        rollup = reply.get("rollup") or {}
    elif args.paths:
        import json

        from .observability import MetricRegistry

        snapshots = []
        for path in args.paths:
            with open(path) as f:
                snapshots.append(
                    MetricRegistry.from_json(json.load(f)).snapshot()
                )
        rollup = merge_metric_snapshots(snapshots)
    else:
        print("fleet prom needs metric JSON files or --connect",
              file=sys.stderr)
        return 2
    text = prometheus_text(rollup)
    if args.out:
        with open(args.out, "w") as f:
            f.write(text)
        print(f"wrote {len(text.splitlines())} exposition lines to "
              f"{args.out}")
    else:
        print(text, end="")
    return 0


def cmd_demo(args) -> int:
    """Run a short live elastic-training demo."""
    from .coordination import params_consistent
    from .core import ElasticJob, WeakScalingPolicy
    from .training import make_classification

    dataset = make_classification(train_size=1024, test_size=256, seed=args.seed)
    with ElasticJob(
        dataset, workers=2, total_batch_size=64, base_lr=0.02,
        scaling_policy=WeakScalingPolicy(ramp_iterations=10), seed=args.seed,
    ) as job:
        job.wait_until_iteration(20)
        print(f"running: {job.status()}")
        job.scale_out(2)
        job.wait_for_adjustments(1)
        print(f"scaled out: {job.status()}")
        job.wait_until_iteration(job.status()["iteration"] + 20)
    consistent = params_consistent(job.runtime.final_contexts())
    print(f"replicas consistent: {consistent}; accuracy {job.evaluate():.3f}")
    return 0 if consistent else 1


def cmd_serve(args) -> int:
    """Host a networked AM over loopback TCP until the job completes."""
    from .net import JobSpec, Journal, NetworkedApplicationMaster
    from .observability import Tracer

    spec = JobSpec(
        train_size=args.train_size,
        total_batch_size=args.batch,
        base_lr=args.lr,
        seed=args.seed,
        iterations=args.iterations,
        coordination_interval=args.interval,
        ring_enabled=not args.no_ring,
        ring_codec=args.ring_codec,
        worker_lease_ttl=args.lease_ttl,
        telemetry_interval=args.telemetry_interval,
        replication_shards=args.shards,
        zero_optimizer=args.zero_optimizer,
    )
    workers = [f"w{i}" for i in range(args.workers)]
    tracer = Tracer(process="elan-net") if args.trace else None
    journal = Journal(args.journal) if args.journal else None
    if args.resume:
        if journal is None:
            print("--resume requires --journal", file=sys.stderr)
            return 2
        master = NetworkedApplicationMaster.from_journal(
            journal, tracer=tracer
        )
        print(f"resumed from {args.journal} "
              f"(epoch {master.epoch}, generation "
              f"{master.status()['generation']})", flush=True)
    else:
        master = NetworkedApplicationMaster(
            spec, workers, tracer=tracer, journal=journal
        )
    server = master.serve_tcp(host=args.host, port=args.port)
    print(f"serving job on {server.host}:{server.port} "
          f"(workers: {', '.join(workers)})", flush=True)
    try:
        completed = master.wait_complete(timeout=args.timeout)
    finally:
        master.close()
    status = master.status()
    print(f"final status: {status}")
    if args.trace and tracer is not None:
        tracer.export(args.trace)
        print(f"wrote {len(tracer.to_events())} events to {args.trace}")
    if not completed:
        print("job did not complete before the timeout", file=sys.stderr)
        return 1
    digests = set(status["digests"].values())
    return 0 if len(digests) == 1 else 1


def cmd_join(args) -> int:
    """Run one worker agent against a serving AM."""
    from .coordination.faults import FaultPlan, SilentCrash
    from .net import ShmPeerHost, TcpPeerHost, WorkerAgent, tcp_link
    from .observability import MetricRegistry, Tracer

    plan = FaultPlan.for_link(
        drop_every=args.drop_every,
        duplicate_every=args.duplicate_every,
        resets=tuple(args.reset_at or ()),
    )
    peer_plan = FaultPlan.for_link(resets=tuple(args.peer_reset_at or ()))
    # Always record: the AM's spec may turn on live telemetry shipping,
    # which needs a tracer/registry to ship from.  The local trace file
    # is still only written when --trace asks for it.
    tracer = Tracer(process=f"worker-{args.worker}")
    metrics = MetricRegistry()
    peer_transport = args.peer_transport or os.environ.get(
        "ELAN_PEER_TRANSPORT", "tcp"
    )
    if args.no_ring:
        peer_host = None
    elif peer_transport in ("shm", "auto"):
        # auto == shm here: a `join` process is by definition on this
        # host, and ShmPeerHost.connect falls back to TCP for any
        # tcp:// peer address it meets in the ring, so remote peers in
        # a mixed ring still work.
        peer_host = ShmPeerHost()
    elif peer_transport == "tcp":
        peer_host = TcpPeerHost(host=args.host)
    else:
        print(f"unknown peer transport {peer_transport!r} "
              "(expected tcp|shm|auto)", file=sys.stderr)
        return 2
    endpoints = [(args.host, args.port)]
    for endpoint in args.am_endpoint or ():
        host, _, port = endpoint.rpartition(":")
        if not host or not port.isdigit():
            print(f"malformed --am-endpoint {endpoint!r} "
                  "(expected host:port)", file=sys.stderr)
            return 2
        endpoints.append((host, int(port)))
    link, _transport = tcp_link(
        args.host, args.port, args.worker,
        fault_plan=plan, ack_timeout=args.ack_timeout, tracer=tracer,
        metrics=metrics,
        endpoints=endpoints if len(endpoints) > 1 else None,
        connect_attempts=args.connect_attempts,
    )
    agent = WorkerAgent(
        args.worker, link, tracer=tracer, metrics=metrics,
        peer_host=peer_host, peer_fault_plan=peer_plan,
        ring_fail_at=tuple(args.ring_fail_at or ()),
        die_at_iteration=args.die_at,
        shard_die_after=args.shard_die_after,
    )
    try:
        result = agent.run()
    except SilentCrash as crash:
        # Deterministic chaos death (--die-at): a distinctive exit code
        # so drivers can tell scheduled kills from real failures.
        print(f"{args.worker}: {crash}", file=sys.stderr)
        return 9
    finally:
        link.close()
        if peer_host is not None:
            peer_host.close()
        if args.trace:
            tracer.export(args.trace)
        if args.metrics_out:
            import json

            with open(args.metrics_out, "w") as f:
                json.dump(metrics.to_json(), f, indent=2, sort_keys=True)
    print(f"{args.worker}: {result}")
    return 0


def cmd_soak(args) -> int:
    """Chaos-soak an elastic job (or replay a trace) and check its SLOs."""
    from .net import ChaosSoak, SLOViolation, SoakSchedule, derive_report
    from .observability import load_trace_events

    def show(label, report):
        print(f"soak [{label}]")
        print(report.format())
        try:
            report.assert_slo(goodput_floor=args.goodput_floor,
                              mttr_ceiling=args.mttr_ceiling)
        except SLOViolation as violation:
            print(f"SLO violation: {violation}", file=sys.stderr)
            return False
        print(f"SLO ok (goodput >= {args.goodput_floor:.2f}, "
              f"MTTR <= {args.mttr_ceiling:.1f}s)")
        return True

    if args.replay:
        events = load_trace_events(args.replay)
        return 0 if show(args.replay, derive_report(events)) else 1

    from .net import JobSpec

    spec = JobSpec(
        seed=args.seed,
        iterations=args.iterations,
        coordination_interval=4,
        iteration_sleep=0.05,
        sync_ack_timeout=0.3,
        chunk_bytes=1024,
        worker_lease_ttl=1.2,
        lease_check_interval=0.2,
    )
    workers = [f"w{i}" for i in range(args.workers)]
    kills = {}
    if args.worker_kill_iter is not None and len(workers) > 1:
        kills[workers[-1]] = args.worker_kill_iter
    schedule = SoakSchedule(
        worker_kills=kills, am_kill_iteration=args.am_kill_iter
    )
    transports = (
        ("memory", "tcp") if args.transport == "both" else (args.transport,)
    )
    ok = True
    for transport in transports:
        soak = ChaosSoak(
            transport, spec, workers, schedule, timeout=args.timeout
        )
        report = soak.run()
        if args.trace:
            path = args.trace
            if len(transports) > 1:
                root, dot, ext = path.rpartition(".")
                path = f"{root}.{transport}{dot}{ext}" if dot else (
                    f"{path}.{transport}"
                )
            soak.tracer.export(path)
            print(f"wrote trace to {path}")
        ok = show(transport, report) and ok
    return 0 if ok else 1


def cmd_cluster(args) -> int:
    """Multi-tenant cluster scheduler: serve it, drive it, or drill it."""
    from .coordination.messages import MessageType

    if args.action == "scenario":
        from .cluster import run_churn_scenario
        from .observability import SLOViolation

        transports = (
            ("memory", "tcp") if args.transport == "both"
            else (args.transport,)
        )
        reports, ok = {}, True
        for transport in transports:
            trace_path = args.trace
            if trace_path and len(transports) > 1:
                root, dot, ext = trace_path.rpartition(".")
                trace_path = f"{root}.{transport}{dot}{ext}" if dot else (
                    f"{trace_path}.{transport}"
                )
            report = run_churn_scenario(
                transport, iterations=args.iterations,
                iteration_sleep=args.sleep, seed=args.seed,
                policy=args.policy, timeout=args.timeout,
                trace_path=trace_path,
            )
            reports[transport] = report
            print(report.format())
            if trace_path:
                print(f"wrote trace to {trace_path}")
            try:
                report.assert_slo(
                    makespan_ceiling=args.makespan_ceiling,
                    queueing_delay_ceiling=args.queue_ceiling,
                    goodput_floor=args.goodput_floor,
                )
                print(f"SLO ok (makespan <= {args.makespan_ceiling:.0f}s, "
                      f"queueing <= {args.queue_ceiling:.0f}s, "
                      f"goodput >= {args.goodput_floor:.2f})")
            except SLOViolation as violation:
                print(f"SLO violation: {violation}", file=sys.stderr)
                ok = False
            print()
        if len(reports) == 2:
            if reports["memory"].digests == reports["tcp"].digests:
                print("digests bit-identical across transports")
            else:
                print("DIGEST MISMATCH across transports", file=sys.stderr)
                ok = False
        return 0 if ok else 1

    if args.action == "serve":
        from .cluster import (
            CLUSTER_RECORD_KINDS,
            ClusterScheduler,
            ElasticJobRunner,
        )
        from .net.journal import Journal
        from .observability import MetricRegistry, Tracer

        tracer = Tracer(process="cluster") if args.trace else None
        metrics = MetricRegistry()
        journal = (
            Journal(args.journal, kinds=CLUSTER_RECORD_KINDS)
            if args.journal else None
        )

        def factory(request, scheduler):
            return ElasticJobRunner(
                request, transport="tcp", tracer=tracer, metrics=metrics,
            )

        scheduler = ClusterScheduler(
            args.policy, args.gpus, runner_factory=factory,
            journal=journal, tracer=tracer, metrics=metrics,
        )
        server = scheduler.serve_tcp(host=args.host, port=args.port)
        print(f"cluster scheduler ({args.policy}, {args.gpus} GPUs) "
              f"on {server.host}:{server.port}", flush=True)
        try:
            scheduler.serve_forever(
                interval=args.interval, deadline=args.deadline
            )
        except KeyboardInterrupt:
            pass
        finally:
            scheduler.close()
            if args.trace and tracer is not None:
                tracer.export(args.trace)
                print(f"wrote trace to {args.trace}")
        return 0

    # submit / status drive a live scheduler over TCP.
    from .net import tcp_link

    link, _transport = tcp_link(
        args.host, args.port, "cluster-cli", ack_timeout=args.ack_timeout
    )
    try:
        if args.action == "submit":
            from .cluster import JobRequest

            if not args.job:
                print("cluster submit needs --job", file=sys.stderr)
                return 2
            request = JobRequest(
                job_id=args.job, iterations=args.iterations,
                priority=args.priority, min_res=args.min_res,
                req_res=args.req_res, max_res=args.max_res,
                seed=args.seed, iteration_sleep=args.sleep,
            )
            reply = link.request(
                MessageType.SUBMIT, {"job": request.to_payload()}
            )
            accepted = reply.get("accepted")
            print(f"{args.job}: "
                  + ("accepted" if accepted
                     else f"rejected ({reply.get('reason')})"))
            return 0 if accepted else 1

        if args.job:
            offer = link.request(MessageType.OFFER, {"job_id": args.job})
            print("  ".join(f"{k}={v}" for k, v in sorted(offer.items())))
            return 0

        tables = link.request(MessageType.JOB_STATUS)
        print(f"policy={tables['policy']} epoch={tables['epoch']} "
              f"capacity={tables['capacity']} busy={tables['busy']} "
              f"preemptions={tables['preemptions']}")
        if tables["running"]:
            print("\nrunning:")
            _print_table(
                ("Job", "Workers", "Priority", "Iteration"),
                [(r["job_id"], r["workers"], r["priority"], r["iteration"])
                 for r in tables["running"]],
                (14, 8, 9, 10),
            )
        if tables["queue"]:
            print("\nqueued:")
            _print_table(
                ("Job", "Priority", "Min", "Max", "Preempts", "Waiting (s)"),
                [(q["job_id"], q["priority"], q["min"], q["max"],
                  q["preemptions"], q["queued_for"])
                 for q in tables["queue"]],
                (14, 9, 4, 4, 9, 12),
            )
        if tables["completed"]:
            print("\ncompleted:")
            _print_table(
                ("Job", "JCT (s)", "Preempts", "Digest"),
                [(c["job_id"],
                  "-" if c["jct"] is None else f"{c['jct']:.2f}",
                  c["preemptions"], c["digest"])
                 for c in tables["completed"]],
                (14, 9, 9, 34),
            )
        return 0
    finally:
        link.close()


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-elan",
        description="Reproduction of Elan (ICDCS 2020): elastic DL training.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="print the Table I model zoo")

    scaling = sub.add_parser("scaling", help="strong/weak scaling curves")
    scaling.add_argument("--model", default="ResNet-50")
    scaling.add_argument("--cluster", choices=("paper", "eval"),
                         default="paper")

    adjust = sub.add_parser("adjust", help="Elan vs S&R adjustment timing")
    adjust.add_argument("--kind", default="scale_out",
                        choices=("scale_out", "scale_in", "migration"))
    adjust.add_argument("--model", default="ResNet-50")
    adjust.add_argument("--old-workers", type=int, default=8)
    adjust.add_argument("--new-workers", type=int, default=16)
    adjust.add_argument("--seed", type=int, default=0)

    sub.add_parser("elastic-training",
                   help="the §VI-B experiment (Table IV)")

    schedule = sub.add_parser("schedule", help="scheduling simulation")
    schedule.add_argument("--policy", default="e-fifo",
                          choices=("fifo", "bf", "e-fifo", "e-bf", "e-srtf"))
    schedule.add_argument("--system", default="elan",
                          choices=("ideal", "elan", "sr"))
    schedule.add_argument("--jobs", type=int, default=210)
    schedule.add_argument("--gpus", type=int, default=128)
    schedule.add_argument("--seed", type=int, default=0)

    trace = sub.add_parser("trace", help="generate/save/summarize traces")
    trace.add_argument("--jobs", type=int, default=210)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--save", help="write the generated trace here")
    trace.add_argument("--load", help="summarize this saved trace instead")

    capacity = sub.add_parser("capacity", help="capacity-planning sweep")
    capacity.add_argument("--jobs", type=int, default=60)
    capacity.add_argument("--seed", type=int, default=0)
    capacity.add_argument("--gpus", default="64,96,128,160",
                          help="comma-separated cluster sizes")
    capacity.add_argument("--jct-target", type=float, default=None)

    tracing = sub.add_parser(
        "tracing", help="record/summarize/validate Chrome trace files"
    )
    tracing.add_argument(
        "action", choices=("demo", "summarize", "validate", "metrics")
    )
    tracing.add_argument(
        "path",
        help="trace file to write (demo) or read; metric-registry JSON "
             "dump for the metrics action",
    )
    tracing.add_argument("--seed", type=int, default=0)

    fleet = sub.add_parser(
        "fleet",
        help="fleet observability: goodput reports, merged traces, "
             "Prometheus exposition",
    )
    fleet.add_argument("action", choices=("report", "export", "prom"))
    fleet.add_argument(
        "paths", nargs="*",
        help="per-process trace files (report/export) or metric-registry "
             "JSON dumps (prom)",
    )
    fleet.add_argument("--connect",
                       help="query a live AM at host:port instead of "
                            "reading files")
    fleet.add_argument("--out", help="output file (export: merged trace; "
                                     "prom: exposition text)")
    fleet.add_argument("--goodput-floor", type=float, default=None,
                       help="exit 1 unless fleet goodput >= this")
    fleet.add_argument("--mttr-ceiling", type=float, default=None,
                       help="exit 1 if fleet max MTTR exceeds this")
    fleet.add_argument("--ack-timeout", type=float, default=2.0)

    demo = sub.add_parser("demo", help="live elastic-training demo")
    demo.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser(
        "serve", help="host a networked AM for a multi-process job"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0)
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument("--iterations", type=int, default=24)
    serve.add_argument("--train-size", type=int, default=512)
    serve.add_argument("--batch", type=int, default=32)
    serve.add_argument("--lr", type=float, default=0.05)
    serve.add_argument("--seed", type=int, default=7)
    serve.add_argument("--interval", type=int, default=4,
                       help="coordination interval (iterations)")
    serve.add_argument("--timeout", type=float, default=120.0)
    serve.add_argument("--trace", help="export a Chrome trace here")
    serve.add_argument("--no-ring", action="store_true",
                       help="disable the ring gradient plane (star only)")
    serve.add_argument("--ring-codec", choices=("none", "fp16", "int8"),
                       default="none",
                       help="gradient compression codec every ring epoch "
                            "negotiates (none keeps the bit-identical "
                            "uncompressed path)")
    serve.add_argument("--journal",
                       help="write-ahead journal file (enables failover)")
    serve.add_argument("--lease-ttl", type=float, default=0.0,
                       help="worker heartbeat lease TTL in seconds "
                            "(0 disables lease eviction)")
    serve.add_argument("--resume", action="store_true",
                       help="recover a crashed AM from --journal instead "
                            "of starting a fresh job")
    serve.add_argument("--telemetry-interval", type=float, default=0.0,
                       help="workers ship metric/trace deltas this often "
                            "in seconds (0 disables; rides the join "
                            "reply, so no worker flag is needed)")
    serve.add_argument("--shards", type=int, default=0,
                       help="shard owners per adjustment: joiners fan in "
                            "shard slices from this many survivors over "
                            "the peer mesh (0 = monolithic fan-out)")
    serve.add_argument("--zero-optimizer", action="store_true",
                       help="ZeRO-style sharded optimizer state: each "
                            "worker persists only its rank's velocity "
                            "shard (resharded at every adjustment)")

    join = sub.add_parser(
        "join", help="run one worker agent against a serving AM"
    )
    join.add_argument("--host", default="127.0.0.1")
    join.add_argument("--port", type=int, required=True)
    join.add_argument("--worker", required=True, help="this worker's id")
    join.add_argument("--ack-timeout", type=float, default=1.0)
    join.add_argument("--drop-every", type=int, default=0,
                      help="drop each n-th outbound message")
    join.add_argument("--duplicate-every", type=int, default=0,
                      help="send each n-th outbound message twice")
    join.add_argument("--reset-at", type=int, action="append",
                      help="reset the connection at this send index "
                           "(repeatable)")
    join.add_argument("--no-ring", action="store_true",
                      help="do not serve a peer endpoint (star plane only)")
    join.add_argument("--peer-transport",
                      choices=("tcp", "shm", "auto"), default=None,
                      help="peer mesh transport for the ring plane "
                           "(default: $ELAN_PEER_TRANSPORT or tcp; shm "
                           "serves a shared-memory endpoint and falls "
                           "back to TCP for remote peers)")
    join.add_argument("--peer-reset-at", type=int, action="append",
                      help="reset the ring peer links at this send index "
                           "(repeatable)")
    join.add_argument("--ring-fail-at", type=int, action="append",
                      help="deterministically abort this worker's ring at "
                           "the given iteration (repeatable)")
    join.add_argument("--trace", help="export this worker's Chrome trace "
                                      "here")
    join.add_argument("--metrics-out",
                      help="dump this worker's metric registry (JSON, "
                           "tracing metrics readable) here")
    join.add_argument("--am-endpoint", action="append",
                      help="extra AM endpoint as host:port, tried when the "
                           "primary is unreachable (repeatable)")
    join.add_argument("--connect-attempts", type=int, default=5,
                      help="dial attempts across all AM endpoints before "
                           "giving up")
    join.add_argument("--die-at", type=int, default=None,
                      help="silently crash before computing this iteration "
                           "(chaos; exits 9)")
    join.add_argument("--shard-die-after", type=int, default=None,
                      help="hard-exit (code 9) after serving this many "
                           "shard chunks from the peer endpoint — a shard "
                           "owner dying mid-fetch (chaos)")

    soak = sub.add_parser(
        "soak", help="chaos-soak an elastic job and check goodput/MTTR SLOs"
    )
    soak.add_argument("--transport", choices=("memory", "tcp", "both"),
                      default="memory")
    soak.add_argument("--workers", type=int, default=3)
    soak.add_argument("--iterations", type=int, default=24)
    soak.add_argument("--seed", type=int, default=7)
    soak.add_argument("--worker-kill-iter", type=int, default=9,
                      help="iteration at which the last worker silently "
                           "dies (requires >1 worker)")
    soak.add_argument("--am-kill-iter", type=int, default=14,
                      help="iteration at which the AM is killed and a "
                           "journal-replayed successor takes over")
    soak.add_argument("--goodput-floor", type=float, default=0.3)
    soak.add_argument("--mttr-ceiling", type=float, default=15.0)
    soak.add_argument("--timeout", type=float, default=120.0)
    soak.add_argument("--trace", help="export the soak's Chrome trace here")
    soak.add_argument("--replay",
                      help="derive the report from this saved trace instead "
                           "of running live")

    cluster = sub.add_parser(
        "cluster",
        help="multi-tenant cluster scheduler: serve, submit, status, "
             "or run the deterministic churn scenario",
    )
    cluster.add_argument("action",
                         choices=("serve", "submit", "status", "scenario"))
    cluster.add_argument("--host", default="127.0.0.1")
    cluster.add_argument("--port", type=int, default=0,
                         help="serve: listen port (0 = ephemeral); "
                              "submit/status: the scheduler's port")
    cluster.add_argument("--policy", default="e-priority",
                         choices=("fifo", "bf", "e-fifo", "e-bf",
                                  "e-srtf", "e-priority"))
    cluster.add_argument("--gpus", type=int, default=8,
                         help="serve: GPU inventory the scheduler owns")
    cluster.add_argument("--journal",
                         help="serve: decision journal file (enables "
                              "scheduler failover)")
    cluster.add_argument("--interval", type=float, default=0.1,
                         help="serve: seconds between scheduling passes")
    cluster.add_argument("--deadline", type=float, default=None,
                         help="serve: stop after this many seconds")
    cluster.add_argument("--job", help="submit: job id (required); "
                                       "status: show this one job")
    cluster.add_argument("--iterations", type=int, default=24)
    cluster.add_argument("--sleep", type=float, default=0.05,
                         help="per-iteration sleep (pacing)")
    cluster.add_argument("--priority", type=int, default=0)
    cluster.add_argument("--min-res", type=int, default=1)
    cluster.add_argument("--req-res", type=int, default=1)
    cluster.add_argument("--max-res", type=int, default=2)
    cluster.add_argument("--seed", type=int, default=7)
    cluster.add_argument("--ack-timeout", type=float, default=2.0)
    cluster.add_argument("--transport", choices=("memory", "tcp", "both"),
                         default="memory",
                         help="scenario: which transport(s) to drill")
    cluster.add_argument("--timeout", type=float, default=120.0,
                         help="scenario: per-transport wall-clock budget")
    cluster.add_argument("--makespan-ceiling", type=float, default=60.0)
    cluster.add_argument("--queue-ceiling", type=float, default=10.0)
    cluster.add_argument("--goodput-floor", type=float, default=0.02)
    cluster.add_argument("--trace", help="export a Chrome trace here "
                                         "(scenario/serve)")
    return parser


_HANDLERS = {
    "models": cmd_models,
    "scaling": cmd_scaling,
    "adjust": cmd_adjust,
    "elastic-training": cmd_elastic_training,
    "schedule": cmd_schedule,
    "trace": cmd_trace,
    "capacity": cmd_capacity,
    "tracing": cmd_tracing,
    "fleet": cmd_fleet,
    "demo": cmd_demo,
    "serve": cmd_serve,
    "join": cmd_join,
    "soak": cmd_soak,
    "cluster": cmd_cluster,
}


def main(argv: "typing.Sequence[str] | None" = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
