"""In-process collective communication for the live runtime.

Data-parallel training synchronizes via allreduce (paper Fig. 7).  The
live runtime's workers are threads, so the collective is a generation-
stamped barrier: every member of the current communication group deposits
its gradients; the last arrival computes the mean and releases everyone.
After a resource adjustment the group is *reconstructed* — a new
:class:`Collective` with the new member set (step 5 of Fig. 2).
"""

from __future__ import annotations

import threading
import typing

from ..training.nn import Params, average_gradients


class CollectiveAborted(Exception):
    """Raised in waiters when the collective is torn down mid-round."""


class Collective:
    """A reusable allreduce barrier over a fixed member set."""

    def __init__(self, generation: int, members: typing.Sequence[str],
                 timeout: float = 30.0):
        if not members:
            raise ValueError("a collective needs at least one member")
        if len(set(members)) != len(members):
            raise ValueError("duplicate member ids")
        self.generation = generation
        self.members = tuple(members)
        self.timeout = timeout
        self._cond = threading.Condition()
        self._slots: typing.Dict[str, "Params | None"] = {}
        self._round = 0
        self._result: "Params | None" = None
        self._aborted = False

    @property
    def size(self) -> int:
        """Number of members."""
        return len(self.members)

    def allreduce(self, member_id: str, grads: "Params | None") -> "Params | None":
        """Deposit gradients and receive the group mean.

        ``grads`` may be ``None`` for a member whose micro-batch was empty
        (epoch tail); such members still synchronize but contribute
        nothing.  Returns ``None`` only in the degenerate case where every
        member was empty.
        """
        if member_id not in self.members:
            raise KeyError(f"{member_id!r} is not in generation {self.generation}")
        with self._cond:
            if self._aborted:
                raise CollectiveAborted(f"generation {self.generation} aborted")
            if member_id in self._slots:
                raise RuntimeError(
                    f"{member_id!r} deposited twice in one round"
                )
            my_round = self._round
            self._slots[member_id] = grads
            if len(self._slots) == self.size:
                contributions = [g for g in self._slots.values() if g is not None]
                self._result = (
                    average_gradients(contributions) if contributions else None
                )
                self._slots = {}
                self._round += 1
                self._cond.notify_all()
            else:
                while self._round == my_round and not self._aborted:
                    if not self._cond.wait(timeout=self.timeout):
                        raise RuntimeError(
                            f"allreduce timed out in generation "
                            f"{self.generation} round {my_round}"
                        )
                # Only fail if the round truly never completed: when the
                # round advanced before (or concurrently with) the abort,
                # the update was committed by the other members and this
                # member must apply it too, or replicas would diverge.
                if self._round == my_round and self._aborted:
                    raise CollectiveAborted(
                        f"generation {self.generation} aborted"
                    )
            return self._result

    def laggards(self) -> typing.Tuple[str, ...]:
        """Members the current round is still waiting on.

        Empty when no round is in progress.  The supervisor uses this to
        tell a hung member (never deposited) from its healthy peers
        (deposited, blocked waiting on the hung one).
        """
        with self._cond:
            if not self._slots:
                return ()
            return tuple(m for m in self.members if m not in self._slots)

    def abort(self) -> None:
        """Wake every waiter with :class:`CollectiveAborted` (teardown)."""
        with self._cond:
            self._aborted = True
            self._cond.notify_all()
