"""The unified hook API (paper §V-A, Table III).

Elan stays framework-generic by never knowing what a "model" or an
"optimizer" is: the states to replicate are captured and restored through
hook functions registered via ``RegisterHook``.  Integrating a new
framework means implementing hooks, nothing else — the paper demonstrates
this with Caffe (static graph) and PyTorch (dynamic graph); here the
"framework" is the numpy substrate, and tests register custom hooks to
prove arbitrary extra state rides along.
"""

from __future__ import annotations

import dataclasses
import typing


@dataclasses.dataclass(frozen=True)
class Hook:
    """Capture/restore functions for one named piece of training state."""

    name: str
    capture: typing.Callable[[object], object]  # worker context -> state
    restore: typing.Callable[[object, object], None]  # (context, state)


class HookRegistry:
    """Ordered registry of state hooks (the RegisterHook API)."""

    def __init__(self):
        self._hooks: "dict[str, Hook]" = {}

    def register(self, hook: Hook) -> None:
        """Register a hook; re-registering a name replaces it."""
        self._hooks[hook.name] = hook

    def unregister(self, name: str) -> None:
        """Remove a hook by name."""
        if name not in self._hooks:
            raise KeyError(f"no hook named {name!r}")
        del self._hooks[name]

    @property
    def names(self) -> "list[str]":
        """Registered hook names, in registration order."""
        return list(self._hooks)

    def capture_all(self, context: object) -> "dict[str, object]":
        """Run every capture hook — this is what gets replicated."""
        return {name: hook.capture(context) for name, hook in self._hooks.items()}

    def restore_all(self, context: object, states: "dict[str, object]") -> None:
        """Run every restore hook against a captured state bundle."""
        missing = set(self._hooks) - set(states)
        if missing:
            raise KeyError(f"captured bundle missing hooks: {sorted(missing)}")
        for name, hook in self._hooks.items():
            hook.restore(context, states[name])
