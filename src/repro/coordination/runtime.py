"""The live elastic training runtime.

Real (not simulated) elastic data-parallel training: every worker is a
thread running the numpy training loop of :mod:`repro.training`; the
application master, coordination protocol, state replication, data
repartition and hybrid scaling all actually execute, end to end, through
the 5-step procedure of paper Fig. 2:

1. ``scale_out`` / ``scale_in`` / ``migrate`` — the service API the
   scheduler calls (Table III) — registers an adjustment with the AM and
   launches any new worker threads;
2. new workers start, initialize (a configurable simulated start+init
   delay — the cost the asynchronous mechanism hides) and *report*;
3. existing workers *coordinate* at iteration boundaries and keep
   training until the AM commits the adjustment at a boundary after the
   last report — shutdown-free, no waiting;
4. at the commit, the training state is captured through the hook
   registry and replicated (IO-free, in memory) to every new worker;
5. the data loader repartitions (free under serial semantics), the
   communication group is reconstructed (a new generation-stamped
   collective), and the scaling policy adjusts the batch size and
   learning-rate ramp (hybrid scaling).

Determinism note: because workers advance in lockstep through allreduce,
the parameter trajectory of the elastic job is a pure function of the
adjustment boundaries — which tests exploit to verify data consistency.
"""

from __future__ import annotations

import dataclasses
import threading
import time
import typing

import numpy as np

from ..core.hybrid_scaling import ScalingPolicy, StrongScalingPolicy
from ..observability import Tracer
from ..core.progressive_lr import (
    LrRamp,
    ramp_from_runtime_info,
    ramp_to_runtime_info,
)
from ..replication import LiveReplicator, ReplicationPlan, plan_replication
from ..topology import TopologyNode, gpus_of
from ..training.dataloader import SerialLoader
from ..training.datasets import Dataset
from ..training.architectures import Architecture, mlp_architecture
from ..training.optim import MomentumSGD
from ..training.state import RuntimeInfo, TrainingState
from .collective import Collective, CollectiveAborted
from .faults import ExponentialBackoff, FaultPlan, LeaseExpired, SilentCrash
from .hooks import Hook, HookRegistry
from .ring import RingCollective
from .master import (
    AdjustmentKind,
    AdjustmentRequest,
    ApplicationMaster,
    Directive,
    DirectiveKind,
    StaleEpochError,
)
from .store import (
    KeyValueStore,
    LeaseRevoked,
    RetryingStore,
    StoreUnavailable,
)
from .telemetry import RuntimeTelemetry


@dataclasses.dataclass
class WorkerContext:
    """Everything one worker thread owns — its replica of the job state."""

    worker_id: str
    params: dict
    optimizer: MomentumSGD
    loader: SerialLoader
    runtime_info: RuntimeInfo
    generation: int
    group: typing.Tuple[str, ...]
    rank: int
    collective: "Collective | RingCollective"
    per_worker_batch: int
    lr_ramp: "LrRamp | None" = None
    gpu: "TopologyNode | None" = None


@dataclasses.dataclass(frozen=True)
class GroupPlan:
    """The published outcome of one committed adjustment (steps 4-5)."""

    generation: int
    group: typing.Tuple[str, ...]
    collective: "Collective | RingCollective"
    total_batch_size: int
    per_worker_batch: int
    lr_ramp: "LrRamp | None"
    commit_iteration: int
    kind: AdjustmentKind
    strategy: str
    replication_plan: "ReplicationPlan | None"


class _Worker:
    """Thread wrapper around a worker context."""

    def __init__(self, worker_id: str, context: "WorkerContext | None"):
        self.worker_id = worker_id
        self.context = context
        self.thread: "threading.Thread | None" = None
        self.join_event = threading.Event()  # set when a new worker may join
        self.iterations_run = 0
        self.losses: typing.List[float] = []

    @property
    def is_new(self) -> bool:
        """True until the worker has been handed a context at a commit."""
        return self.context is None


class ElasticRuntime:
    """A live elastic training job (one AM + worker threads)."""

    def __init__(
        self,
        dataset: Dataset,
        initial_workers: int = 2,
        total_batch_size: int = 64,
        base_lr: float = 0.05,
        hidden_dim: int = 32,
        momentum: float = 0.9,
        scaling_policy: "ScalingPolicy | None" = None,
        coordination_interval: int = 1,
        startup_delay: float = 0.0,
        cluster: "TopologyNode | None" = None,
        store: "KeyValueStore | None" = None,
        seed: int = 0,
        allreduce_timeout: float = 30.0,
        collective_backend: str = "rendezvous",
        iteration_delays: "typing.Dict[str, float] | None" = None,
        max_micro_batch: "int | None" = None,
        architecture: "Architecture | None" = None,
        lease_ttl: "float | None" = None,
        supervision_interval: "float | None" = None,
        auto_recover: bool = True,
        fault_plan: "FaultPlan | None" = None,
        tracer: "Tracer | None" = None,
    ):
        if initial_workers < 1:
            raise ValueError("initial_workers must be >= 1")
        if total_batch_size < initial_workers:
            raise ValueError("total batch smaller than the worker count")
        self.dataset = dataset
        # The runtime is model-generic (the paper's §V-A claim): any
        # Architecture plugs in; elasticity only sees parameter dicts.
        self.architecture = architecture or mlp_architecture(
            dataset.input_dim, hidden_dim, dataset.num_classes
        )
        self.base_lr = base_lr
        self.momentum = momentum
        self.scaling_policy = scaling_policy or StrongScalingPolicy()
        self.coordination_interval = coordination_interval
        self.startup_delay = startup_delay
        self.seed = seed
        self.allreduce_timeout = allreduce_timeout
        #: Gradient accumulation: if a worker's share of the batch exceeds
        #: this (a GPU-memory stand-in), it is processed in micro-chunks
        #: whose gradients are averaged locally before the allreduce —
        #: numerically identical to the single big micro-batch.
        if max_micro_batch is not None and max_micro_batch < 1:
            raise ValueError("max_micro_batch must be >= 1")
        self.max_micro_batch = max_micro_batch
        self.store = store or KeyValueStore()
        #: Store facade with bounded-backoff retry: the AM state machine,
        #: lease traffic and fail-over reads ride out injected outages.
        self.reliable_store = RetryingStore(
            self.store,
            backoff=ExponentialBackoff(base=0.002, max_delay=0.05),
        )
        #: Fault injection: extra seconds of compute per iteration, keyed
        #: by worker id.  Mutable at runtime — tests and the straggler-
        #: mitigation example use it to slow one worker mid-training.
        self.iteration_delays = dict(iteration_delays or {})
        #: Fault injection: worker id -> iteration at which its thread
        #: raises (simulating a worker crash).
        self.failure_injections: typing.Dict[str, int] = {}
        #: Fault injection: worker id -> iteration at which its thread
        #: vanishes without recording anything (a kill -9 stand-in; only
        #: the lease supervisor can notice).
        self.silent_crash_injections: typing.Dict[str, int] = {}
        #: Crashed workers: worker id -> the exception that killed it.
        self.worker_failures: typing.Dict[str, BaseException] = {}
        # -- supervision (lease-based failure detection, §V-D extended) --
        if lease_ttl is not None and lease_ttl <= 0:
            raise ValueError("lease_ttl must be > 0")
        self.lease_ttl = lease_ttl
        self.supervision_interval = supervision_interval or (
            lease_ttl / 4.0 if lease_ttl else 0.05
        )
        self.auto_recover = auto_recover
        #: An expired lease whose thread is still alive is only treated
        #: as a hang after this many TTLs — healthy lockstep peers stop
        #: heartbeating too while blocked on a dead member, and must not
        #: be condemned with it.
        self.hang_grace_factor = 4.0
        self.fault_plan = fault_plan
        self._supervisor_thread: "threading.Thread | None" = None
        self._supervisor_stop = threading.Event()
        self._recovering = False
        self._am_crash_fired = False
        self._forced_expiries_done: typing.Set[str] = set()
        if fault_plan is not None:
            self.failure_injections.update(fault_plan.worker_crashes)
            self.silent_crash_injections.update(fault_plan.silent_crashes)
            if fault_plan.store_outage_ops:
                self.store.fail_next(fault_plan.store_outage_ops)
            if fault_plan.store_outages:
                self.store.set_outages(fault_plan.store_outages)
        self.replicator = LiveReplicator()
        #: Span recorder on wall time; the DES twin records the same span
        #: taxonomy on simulated time (docs/OBSERVABILITY.md).
        self.tracer = tracer or Tracer(process="elan-live")
        # Event timestamps ride the same clock the supervisor reads for
        # leases, so live logs and dessim replays are uniform.
        self.telemetry = RuntimeTelemetry(clock=self.store.clock)
        self.metrics = self.telemetry.metrics
        self.metrics.gauge("workers").set(initial_workers)
        self.hooks = HookRegistry()
        self._register_default_hooks()

        self._lock = threading.RLock()
        self._generation = 0
        self._stop_requested = False
        self._stop_at: "int | None" = None
        self._next_worker_index = initial_workers
        self.history: typing.List[GroupPlan] = []
        #: Wall-clock seconds each commit's steps 4-5 took (telemetry —
        #: the live analogue of the Fig. 15 measurement).
        self.commit_latencies: typing.List[float] = []

        # Optional topology: workers occupy GPUs in tree order, and every
        # commit produces a real replication plan against that placement.
        self._cluster = cluster
        self._free_gpus: typing.List[TopologyNode] = (
            list(gpus_of(cluster)) if cluster is not None else []
        )

        if collective_backend not in ("rendezvous", "ring"):
            raise ValueError(
                f"unknown collective backend {collective_backend!r}"
            )
        self.collective_backend = collective_backend
        self._grad_template = self.architecture.gradient_template(seed)

        worker_ids = tuple(f"w{i}" for i in range(initial_workers))
        self.am = ApplicationMaster(
            job_id="job0",
            workers=worker_ids,
            store=self.reliable_store,
            coordination_interval=coordination_interval,
            tracer=self.tracer,
        )
        collective = self._make_collective(0, worker_ids)
        per_worker = total_batch_size // initial_workers
        self._workers: typing.Dict[str, _Worker] = {}
        for rank, worker_id in enumerate(worker_ids):
            context = WorkerContext(
                worker_id=worker_id,
                params=self.architecture.init(seed),
                optimizer=MomentumSGD(lr=base_lr, momentum=momentum),
                loader=SerialLoader(dataset.train_size, seed=seed),
                runtime_info=RuntimeInfo(
                    epoch=0,
                    iteration=0,
                    learning_rate=base_lr,
                    total_batch_size=per_worker * initial_workers,
                ),
                generation=0,
                group=worker_ids,
                rank=rank,
                collective=collective,
                per_worker_batch=per_worker,
                gpu=self._allocate_gpu(),
            )
            self._workers[worker_id] = _Worker(worker_id, context)
        self.hidden_dim = hidden_dim

    def _make_collective(self, generation: int, members):
        """Build a collective of the configured backend (rendezvous
        averaging, or the real chunked ring-allreduce)."""
        if self.collective_backend == "ring":
            return RingCollective(
                generation, members,
                template_factory=lambda: self._grad_template,
                timeout=self.allreduce_timeout,
            )
        return Collective(generation, members, timeout=self.allreduce_timeout)

    # -- hooks (Table III RegisterHook) ---------------------------------------

    def _register_default_hooks(self) -> None:
        self.hooks.register(Hook(
            name="model",
            capture=lambda ctx: {k: v.copy() for k, v in ctx.params.items()},
            restore=lambda ctx, s: ctx.params.update(
                {k: v.copy() for k, v in s.items()}
            ),
        ))
        self.hooks.register(Hook(
            name="optimizer",
            capture=lambda ctx: ctx.optimizer.state_dict(),
            restore=lambda ctx, s: ctx.optimizer.load_state_dict(s),
        ))
        self.hooks.register(Hook(
            name="loader",
            capture=lambda ctx: ctx.loader.state_dict(),
            restore=lambda ctx, s: ctx.loader.load_state_dict(s),
        ))
        self.hooks.register(Hook(
            name="runtime",
            capture=lambda ctx: ctx.runtime_info.to_dict(),
            restore=lambda ctx, s: ctx.__setattr__(
                "runtime_info", RuntimeInfo.from_dict(s)
            ),
        ))

    def register_hook(self, hook: Hook) -> None:
        """RegisterHook: add user state to what replication carries."""
        self.hooks.register(hook)

    # -- GPU placement ---------------------------------------------------------

    def _allocate_gpu(self) -> "TopologyNode | None":
        if self._cluster is None:
            return None
        if not self._free_gpus:
            raise RuntimeError("cluster has no free GPUs left")
        return self._free_gpus.pop(0)

    def _release_gpu(self, gpu: "TopologyNode | None") -> None:
        if gpu is not None:
            self._free_gpus.insert(0, gpu)
            self._free_gpus.sort(key=lambda g: g.name)

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Launch every worker thread (and the supervisor, if enabled)."""
        for worker in self._workers.values():
            if worker.thread is None:
                self._spawn(worker)
        if self._supervision_enabled and self._supervisor_thread is None:
            self._supervisor_thread = threading.Thread(
                target=self._supervise_loop, name="elan-supervisor",
                daemon=True,
            )
            self._supervisor_thread.start()

    @property
    def _supervision_enabled(self) -> bool:
        plan = self.fault_plan
        return self.lease_ttl is not None or (
            plan is not None
            and (plan.am_crash_iteration is not None or plan.lease_expiries)
        )

    def _spawn(self, worker: _Worker) -> None:
        worker.thread = threading.Thread(
            target=self._worker_main, args=(worker,),
            name=f"elan-{worker.worker_id}", daemon=True,
        )
        worker.thread.start()

    def stop(self, timeout: float = 30.0) -> None:
        """Stop training at the next coordination boundary and join."""
        self._supervisor_stop.set()
        with self._lock:
            self._stop_requested = True
            # Unblock any new workers still waiting to join.
            for worker in self._workers.values():
                if worker.is_new:
                    worker.join_event.set()
        deadline = time.monotonic() + timeout
        for worker in list(self._workers.values()):
            if worker.thread is not None:
                worker.thread.join(timeout=max(0.0, deadline - time.monotonic()))
        if self._supervisor_thread is not None:
            self._supervisor_thread.join(
                timeout=max(0.0, deadline - time.monotonic())
            )

    # -- the service API offered to the scheduler (Table III) --------------------

    def scale_out(self, count: int) -> "list[str]":
        """Request ``count`` extra workers; returns their ids immediately.

        New worker threads start and initialize asynchronously while
        training continues (the mechanism of §V-B).
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        with self._lock:
            new_ids = [f"w{self._next_worker_index + i}" for i in range(count)]
            request = AdjustmentRequest(
                kind=AdjustmentKind.SCALE_OUT, add_workers=tuple(new_ids)
            )
            if not self.am.request_adjustment(request):
                raise RuntimeError("an adjustment is already in flight")
            self.tracer.instant(
                "adjust.request", track="am", cat="adjust",
                kind="scale_out", workers=new_ids,
            )
            self._next_worker_index += count
            for worker_id in new_ids:
                worker = _Worker(worker_id, context=None)
                self._workers[worker_id] = worker
                self._spawn(worker)
        return new_ids

    def scale_in(self, count: int = 1, worker_ids: "list[str] | None" = None) -> "list[str]":
        """Request removal of workers (specific ids, or the last ``count``)."""
        with self._lock:
            group = self.am.group
            if worker_ids is None:
                worker_ids = list(group[-count:])
            request = AdjustmentRequest(
                kind=AdjustmentKind.SCALE_IN, remove_workers=tuple(worker_ids)
            )
            if not self.am.request_adjustment(request):
                raise RuntimeError("an adjustment is already in flight")
            self.tracer.instant(
                "adjust.request", track="am", cat="adjust",
                kind="scale_in", workers=list(worker_ids),
            )
        return list(worker_ids)

    def migrate(self, count: "int | None" = None) -> "list[str]":
        """Migrate the whole job onto freshly launched workers."""
        with self._lock:
            group = self.am.group
            count = len(group) if count is None else count
            new_ids = [f"w{self._next_worker_index + i}" for i in range(count)]
            request = AdjustmentRequest(
                kind=AdjustmentKind.MIGRATION,
                add_workers=tuple(new_ids),
                remove_workers=tuple(group),
            )
            if not self.am.request_adjustment(request):
                raise RuntimeError("an adjustment is already in flight")
            self.tracer.instant(
                "adjust.request", track="am", cat="adjust",
                kind="migration", workers=new_ids,
            )
            self._next_worker_index += count
            for worker_id in new_ids:
                worker = _Worker(worker_id, context=None)
                self._workers[worker_id] = worker
                self._spawn(worker)
        return new_ids

    # -- AM fail-over (§V-D, live) -----------------------------------------------

    def crash_and_recover_am(self) -> None:
        """Kill the application master and recover a replacement from the
        persisted state machine (the paper's §V-D design, exercised live).

        Workers notice nothing: the next coordination is served by the
        recovered AM, and an in-flight adjustment (reports received so
        far, scheduled commit) carries over intact.
        """
        with self._lock:
            job_id = self.am.job_id
            self.am = ApplicationMaster.recover(
                job_id, self.reliable_store, tracer=self.tracer
            )
            # The persisted snapshot's iteration view is stale (it is only
            # written on protocol transitions, not every coordination).  A
            # recovered AM must first learn where training actually is, or
            # it could schedule a commit boundary in the PAST -- breaking
            # the all-workers-adopt-at-the-same-boundary invariant
            # (docs/PROTOCOL.md, invariant 1).  The replacement AM syncs
            # from the workers, exactly like a real fail-over would.
            live_iterations = [
                w.context.runtime_info.iteration
                for w in self._workers.values()
                if w.context is not None
            ]
            if live_iterations:
                self.am.latest_iteration = max(
                    self.am.latest_iteration, max(live_iterations)
                )
            self.telemetry.record_event(
                None, "am_failover", job_id=job_id,
                state=self.am.state.value, epoch=self.am.epoch,
            )
            self.tracer.instant(
                "am.failover", track="am", cat="am", epoch=self.am.epoch
            )

    def _validate_directive(self, directive: Directive) -> None:
        """Worker-side fencing: refuse directives from a superseded AM.

        A directive minted by epoch ``e`` is only obeyed while ``e`` is
        still the current epoch — a zombie master's decisions (captured
        before it was fenced off) can never commit an adjustment twice.
        """
        current = self.am.epoch
        if directive.epoch < current:
            self.telemetry.record_event(
                None, "stale_directive_rejected",
                directive_epoch=directive.epoch, current_epoch=current,
            )
            self.tracer.instant(
                "am.stale_directive_rejected", track="am", cat="am",
                directive_epoch=directive.epoch, current_epoch=current,
            )
            raise StaleEpochError(
                f"directive from epoch {directive.epoch} rejected; "
                f"current epoch is {current}"
            )

    # -- supervision: leases, detection, automatic recovery ----------------------

    def _lease_key(self, worker_id: str) -> str:
        return f"elan/{self.am.job_id}/lease/{worker_id}"

    @property
    def _lease_prefix(self) -> str:
        return f"elan/{self.am.job_id}/lease/"

    def _publish_lease(self, worker_id: str) -> None:
        """Establish (or revive) a worker's TTL lease; best-effort."""
        if self.lease_ttl is None:
            return
        try:
            self.reliable_store.lease(
                self._lease_key(worker_id), "alive", self.lease_ttl
            )
        except (StoreUnavailable, LeaseRevoked):
            pass

    def _renew_lease(self, worker_id: str) -> bool:
        """Heartbeat: refresh the worker's lease.

        Returns False only when the lease was revoked (the worker has
        been fenced out and must stop).  A store outage is *not* a
        reason to die — renewal degrades to best-effort and the TTL
        absorbs the gap.
        """
        if self.lease_ttl is None:
            return True
        key = self._lease_key(worker_id)
        try:
            if self.reliable_store.keep_alive(key, self.lease_ttl):
                return True
            # No live lease (e.g. the publish raced an outage): try to
            # (re-)establish one.  Only an explicit revocation is fatal.
            self.reliable_store.lease(key, "alive", self.lease_ttl)
            return True
        except LeaseRevoked:
            return False
        except StoreUnavailable:
            return True

    def _supervise_loop(self) -> None:
        while not self._supervisor_stop.wait(self.supervision_interval):
            try:
                self._supervise_once()
            except StoreUnavailable:
                continue  # outage outlasted the retry budget; next tick

    def _supervise_once(self) -> None:
        """One detect->decide->recover scan of the supervisor."""
        plan = self.fault_plan
        now = self.store.clock()
        if plan is not None:
            if (
                plan.am_crash_iteration is not None
                and not self._am_crash_fired
                and self.snapshot()["iteration"] >= plan.am_crash_iteration
            ):
                self._am_crash_fired = True
                self.crash_and_recover_am()
            for key in plan.due_lease_expiries(now):
                if key in self._forced_expiries_done:
                    continue
                if self.store.lease_deadline(key) is None:
                    continue  # lease not published yet; retry next tick
                self._forced_expiries_done.add(key)
                self.store.force_expire(key)
        if self.lease_ttl is not None:
            self._detect_expired_leases(now)
        if self.auto_recover:
            self._maybe_recover()

    def _detect_expired_leases(self, now: float) -> None:
        """Classify every expired lease and condemn the true culprits.

        A lapsed lease alone is not proof of death: lockstep peers
        blocked in an allreduce on a dead member stop heartbeating too.
        A worker is condemned only if

        * its thread is dead (crash, silent or loud), or
        * its lease was forcibly revoked (it has been fenced out), or
        * the expiry has outlasted the hang grace period *and* the
          collective names it as the member everyone is waiting on
          (falling back to the stalest deadline when the collective
          cannot tell — that worker stopped heartbeating first).
        """
        expired = self.reliable_store.expired_keys(self._lease_prefix)
        detected = []
        with self._lock:
            if self._stop_requested or self._recovering:
                return
            hang_grace = (
                self.lease_ttl * self.hang_grace_factor
                if self.lease_ttl is not None
                else float("inf")
            )
            suspects: typing.List[tuple] = []  # (deadline, worker, key)
            for key in expired:
                worker_id = key.rsplit("/", 1)[-1]
                if worker_id not in self.am.group:
                    # Orphan lease of a departed worker: reap it.
                    try:
                        self.store.delete(key)
                    except StoreUnavailable:
                        pass
                    continue
                if worker_id in self.worker_failures:
                    continue
                handle = self._workers.get(worker_id)
                if handle is None or handle.context is None:
                    continue
                deadline = self.store.lease_deadline(key)
                thread_dead = (
                    handle.thread is not None and not handle.thread.is_alive()
                )
                if thread_dead or self.store.lease_revoked(key):
                    cause = "fenced" if not thread_dead else "lease_expired"
                    detected.append(self._condemn(
                        handle, deadline, now, cause
                    ))
                elif deadline is not None and now - deadline > hang_grace:
                    suspects.append((deadline, worker_id, handle))
            if suspects and not detected:
                # Everyone over grace is either hung or blocked on the
                # hung one; ask the collective who never showed up.
                suspects.sort()
                context = suspects[0][2].context
                laggards = context.collective.laggards()
                culprits = [
                    s for s in suspects if s[1] in laggards
                ] or suspects[:1]
                for deadline, _worker_id, handle in culprits:
                    detected.append(self._condemn(
                        handle, deadline, now, "hang"
                    ))
        for worker_id, latency, cause in detected:
            self.telemetry.record_detection(worker_id, latency, cause=cause)
            self.tracer.instant(
                "failure.detected", track="supervisor", cat="failure",
                worker=worker_id, latency=latency, cause=cause,
            )

    def _condemn(self, handle: _Worker, deadline, now: float, cause: str):
        # Caller holds the runtime lock.
        worker_id = handle.worker_id
        latency = 0.0 if deadline is None else max(0.0, now - deadline)
        self.worker_failures[worker_id] = LeaseExpired(
            f"lease for {worker_id!r} expired ({cause}; deadline "
            f"{deadline}, noticed {now})"
        )
        # Tear the collective down so lockstep peers blocked on the dead
        # worker's contribution unwind instead of waiting out the
        # allreduce timeout.
        handle.context.collective.abort()
        return worker_id, latency, cause

    def _maybe_recover(self) -> None:
        with self._lock:
            if not self.worker_failures or self._stop_requested:
                return
        started = time.perf_counter()
        span = self.tracer.begin("recover", track="supervisor", cat="failure")
        try:
            removed = self.recover_from_failure()
        except RuntimeError:
            self.tracer.end(span, outcome="unrecoverable")
            return  # e.g. every worker died; only a checkpoint can help
        self.tracer.end(span, removed=list(removed))
        if removed:
            self.telemetry.record_recovery(
                removed, time.perf_counter() - started
            )
            self.metrics.gauge("workers").set(len(self.am.group))

    # -- worker-failure recovery (extension beyond the paper's §V-D) ------------

    def recover_from_failure(self, join_timeout: float = 5.0) -> "list[str]":
        """Resume training after worker crashes, without any checkpoint.

        Because every worker holds a full state replica (§IV-1), losing
        workers loses no state: the survivors' contexts — rewound to the
        last completed iteration — are regrouped under a fresh collective
        and their threads are restarted.  Returns the removed worker ids.

        The paper only makes the *AM* fault-tolerant; this extends the
        same replicated-state argument to worker crashes.
        """
        with self._lock:
            failed = set(self.worker_failures)
            if not failed:
                return []
            # Freeze lease-based detection while the group is in surgery:
            # survivors stop heartbeating between teardown and respawn,
            # and the supervisor must not mistake that for death.
            self._recovering = True
            survivors = tuple(
                w for w in self.am.group if w not in failed
            )
            if not survivors:
                self._recovering = False
                raise RuntimeError(
                    "every worker crashed; recovery needs a checkpoint"
                )
        try:
            return self._recover_locked(failed, survivors, join_timeout)
        finally:
            with self._lock:
                self._recovering = False

    def _recover_locked(
        self,
        failed: set,
        survivors: typing.Tuple[str, ...],
        join_timeout: float,
    ) -> "list[str]":
        # Let the aborted threads finish unwinding before regrouping.
        for worker_id in list(self.am.group):
            thread = self._workers[worker_id].thread
            if thread is not None and worker_id not in failed:
                thread.join(timeout=join_timeout)
        with self._lock:
            self._generation += 1
            collective = self._make_collective(self._generation, survivors)
            reference = None
            for worker_id in survivors:
                context = self._workers[worker_id].context
                context.generation = self._generation
                context.group = survivors
                context.rank = survivors.index(worker_id)
                context.collective = collective
                # Strong scaling across the recovery: the total batch (an
                # algorithm-visible hyperparameter) is preserved; the
                # survivors shoulder larger micro-batches.
                context.per_worker_batch = max(
                    1,
                    context.runtime_info.total_batch_size // len(survivors),
                )
                context.loader.repartition(len(survivors))
                iteration = context.runtime_info.iteration
                reference = iteration if reference is None else reference
                if iteration != reference:  # pragma: no cover - invariant
                    raise RuntimeError(
                        "survivor contexts diverged; cannot recover"
                    )
            for worker_id in failed:
                crashed = self._workers[worker_id]
                self._release_gpu(
                    crashed.context.gpu if crashed.context else None
                )
                self.worker_failures.pop(worker_id, None)
                self.failure_injections.pop(worker_id, None)
            self.am.group = survivors
            self.am._persist()
            removed = sorted(failed)
            if self.lease_ttl is not None:
                # Reap the dead workers' leases (clearing any revocation)
                # and give survivors a fresh TTL so the pause between
                # teardown and respawn cannot read as another failure.
                for worker_id in removed:
                    try:
                        self.reliable_store.delete(self._lease_key(worker_id))
                    except StoreUnavailable:
                        pass
                for worker_id in survivors:
                    self._publish_lease(worker_id)
        for worker_id in survivors:
            self._spawn(self._workers[worker_id])
        return removed

    # -- job-level checkpointing (for total loss; complements §V-D) -------------

    def checkpoint(self, storage, path: str = "elan/job0/checkpoint") -> int:
        """Serialize the full training state to shared storage.

        Elan's elasticity never needs checkpoints (state replicates peer
        to peer), but a checkpoint remains the answer to losing *every*
        worker.  The runtime must be quiescent (stopped, or all threads
        dead after crashes); returns the blob size in bytes.
        """
        with self._lock:
            group = self.am.group
            for worker_id in group:
                thread = self._workers[worker_id].thread
                if thread is not None and thread.is_alive():
                    raise RuntimeError(
                        "checkpoint requires a quiescent runtime; stop() first"
                    )
            survivors = [
                w for w in group
                if w not in self.worker_failures
                and self._workers[w].context is not None
            ]
            if not survivors:
                raise RuntimeError("no intact context to checkpoint from")
            context = self._workers[survivors[0]].context
            state = TrainingState(
                model=context.params,
                optimizer=context.optimizer.state_dict(),
                loader=context.loader.state_dict(),
                comm_group=list(group),
                runtime=context.runtime_info,
            )
            return storage.save(path, state)

    @classmethod
    def restore(
        cls,
        dataset: Dataset,
        storage,
        path: str = "elan/job0/checkpoint",
        workers: "int | None" = None,
        **kwargs,
    ) -> "ElasticRuntime":
        """Rebuild a job from a checkpoint, optionally resized.

        Returns an un-started runtime whose every worker holds the
        restored replica; call :meth:`start` to resume training.
        """
        state = storage.load(path)
        workers = workers if workers is not None else len(state.comm_group)
        runtime = cls(
            dataset,
            initial_workers=workers,
            total_batch_size=max(workers, state.runtime.total_batch_size),
            **kwargs,
        )
        ramp = ramp_from_runtime_info(state.runtime)
        for worker_id in runtime.am.group:
            context = runtime._workers[worker_id].context
            context.params.update(
                {k: v.copy() for k, v in state.model.items()}
            )
            context.optimizer.load_state_dict(state.optimizer)
            context.loader.load_state_dict(state.loader)
            context.loader.repartition(workers)
            context.runtime_info = RuntimeInfo.from_dict(
                state.runtime.to_dict()
            )
            context.per_worker_batch = max(
                1, context.runtime_info.total_batch_size // workers
            )
            context.lr_ramp = ramp
        return runtime

    # -- observation ---------------------------------------------------------------

    def snapshot(self) -> dict:
        """Current job status (group, iteration, batch size, lr)."""
        with self._lock:
            contexts = [
                w.context for w in self._workers.values() if w.context is not None
            ]
            live = [c for c in contexts if c.generation == self._generation]
            probe = max(live, key=lambda c: c.runtime_info.iteration) if live else None
            return {
                "generation": self._generation,
                "group": tuple(self.am.group),
                "iteration": 0 if probe is None else probe.runtime_info.iteration,
                "epoch": 0 if probe is None else probe.loader.epoch,
                "total_batch_size": 0 if probe is None else (
                    probe.runtime_info.total_batch_size
                ),
                "learning_rate": 0.0 if probe is None else (
                    probe.runtime_info.learning_rate
                ),
                "adjustments": self.am.adjustments_committed,
            }

    def wait_for_adjustments(self, count: int, timeout: float = 30.0) -> bool:
        """Block until ``count`` adjustments have committed."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.am.adjustments_committed >= count:
                return True
            time.sleep(0.002)
        return False

    def wait_until_iteration(self, iteration: int, timeout: float = 30.0) -> bool:
        """Block until the job has completed ``iteration`` iterations."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if self.snapshot()["iteration"] >= iteration:
                return True
            time.sleep(0.002)
        return False

    def final_contexts(self) -> "list[WorkerContext]":
        """Contexts of the workers in the final group (call after stop)."""
        with self._lock:
            group = self.am.group
            return [
                self._workers[w].context
                for w in group
                if w in self._workers and self._workers[w].context is not None
            ]

    def evaluate(self) -> float:
        """Test accuracy of the (stopped) job's model."""
        contexts = self.final_contexts()
        if not contexts:
            raise RuntimeError("no surviving worker context to evaluate")
        return self.architecture.accuracy(
            contexts[0].params, self.dataset.test_x, self.dataset.test_y
        )

    # -- worker thread body -----------------------------------------------------------

    def _worker_main(self, worker: _Worker) -> None:
        if worker.is_new:
            self._startup_and_report(worker)
            worker.join_event.wait(timeout=self.allreduce_timeout)
            if worker.context is None:
                return  # cancelled (stop before the adjustment committed)
        context = worker.context
        self._publish_lease(context.worker_id)
        try:
            while True:
                action = self._maybe_coordinate(worker, context)
                if action == "exit":
                    return
                self._train_one_iteration(worker, context)
        except CollectiveAborted:
            return
        except SilentCrash:
            # A kill -9 stand-in: the thread vanishes without recording
            # its death or aborting the collective — its peers block and
            # only the lease supervisor can notice.
            return
        except BaseException as exc:
            # A crashed worker must not leave its peers hanging in the
            # allreduce barrier: record the failure and tear the current
            # collective down so survivors observe the abort.
            with self._lock:
                self.worker_failures[worker.worker_id] = exc
                context.collective.abort()
            self.telemetry.record_event(
                None, "worker_failure",
                worker=worker.worker_id, error=repr(exc),
            )
            self.tracer.instant(
                "worker.failure", track=worker.worker_id, cat="failure",
                error=repr(exc),
            )
            return

    def _startup_and_report(self, worker: _Worker) -> None:
        """Step 2: simulate start + init, then report readiness."""
        with self.tracer.span(
            "worker.start_init", track=worker.worker_id, cat="adjust",
            worker=worker.worker_id,
        ):
            if self.startup_delay > 0:
                # Deterministic per-worker jitter models start-time
                # variance.
                jitter = 0.3 * self.startup_delay * (
                    hash(worker.worker_id) % 100
                ) / 100.0
                time.sleep(self.startup_delay + jitter)
        self.tracer.instant(
            "worker.report", track=worker.worker_id, cat="adjust",
            worker=worker.worker_id,
        )
        with self._lock:
            self.am.worker_report(worker.worker_id)

    def _maybe_coordinate(self, worker: _Worker, context: WorkerContext) -> str:
        iteration = context.runtime_info.iteration
        if iteration % self.coordination_interval != 0:
            return "continue"
        with self._lock:
            self.am.latest_iteration = max(self.am.latest_iteration, iteration)
            # Generation adoption MUST come before everything else: a
            # worker lagging behind a committed adjustment may not take
            # another step against its abandoned collective -- doing so
            # (as an earlier version did when a stop raced a commit)
            # strands it in an allreduce nobody will ever complete.  A
            # removed worker exits here regardless of the stop state.
            if context.generation < self._generation:
                plan = self.history[-1]
                return self._adopt(worker, context, plan)
            # Stop protocol: pick one boundary in the future of every
            # worker; everyone halts exactly there (lockstep-safe).
            if self._stop_at is not None:
                if iteration >= self._stop_at:
                    return "exit"
            elif self._stop_requested:
                interval = self.coordination_interval
                boundary = (self.am.latest_iteration // interval + 1) * interval
                self._stop_at = min(boundary, iteration + interval)
                if iteration >= self._stop_at:
                    return "exit"
                return "continue"
            directive = self.am.coordinate(context.worker_id, iteration)
            self._validate_directive(directive)
            if directive.kind is DirectiveKind.ADJUST:
                plan = self._execute_commit(context, directive)
                return self._adopt(worker, context, plan)
            return "continue"

    def _adopt(self, worker: _Worker, context: WorkerContext, plan: GroupPlan) -> str:
        """Apply a published plan to this worker (or leave the job)."""
        if context.worker_id not in plan.group:
            self._release_gpu(context.gpu)
            return "exit"
        context.generation = plan.generation
        context.group = plan.group
        context.rank = plan.group.index(context.worker_id)
        context.collective = plan.collective
        context.per_worker_batch = plan.per_worker_batch
        context.runtime_info.total_batch_size = plan.total_batch_size
        context.lr_ramp = plan.lr_ramp
        if plan.lr_ramp is not None:
            ramp_to_runtime_info(context.runtime_info, plan.lr_ramp)
        context.loader.repartition(len(plan.group))
        return "continue"

    def _train_one_iteration(self, worker: _Worker, context: WorkerContext) -> None:
        info = context.runtime_info
        fail_at = self.failure_injections.get(context.worker_id)
        if fail_at is not None and info.iteration >= fail_at:
            raise RuntimeError(
                f"injected crash of {context.worker_id} at iteration "
                f"{info.iteration}"
            )
        silent_at = self.silent_crash_injections.get(context.worker_id)
        if silent_at is not None and info.iteration >= silent_at:
            raise SilentCrash(context.worker_id)
        if not self._renew_lease(context.worker_id):
            # The lease was revoked: this worker has been fenced out of
            # the job.  Fail-stop immediately — acting without a live
            # lease could race the recovery that is evicting us.
            raise SilentCrash(context.worker_id)
        iteration_span = self.tracer.begin(
            "iteration", track=context.worker_id, cat="train",
            iteration=info.iteration,
        )
        compute_span = self.tracer.begin(
            "compute", track=context.worker_id, cat="train"
        )
        compute_started = time.perf_counter()
        delay = self.iteration_delays.get(context.worker_id, 0.0)
        if delay > 0:
            time.sleep(delay)  # injected straggler
        # Checkpoint the loader position: if the allreduce below aborts
        # (a peer crashed), this iteration never happened — the batch must
        # be re-issued after recovery or it would be silently skipped.
        loader_checkpoint = context.loader.state_dict()
        slices = context.loader.next_iteration(
            len(context.group), context.per_worker_batch
        )
        indices = slices[context.rank]
        if len(indices):
            loss, grads = self._compute_gradients(context, indices)
            worker.losses.append(loss)
        else:
            grads = None
        self.telemetry.record_compute(
            context.worker_id, time.perf_counter() - compute_started
        )
        self.tracer.end(compute_span)
        allreduce_span = self.tracer.begin(
            "allreduce", track=context.worker_id, cat="train"
        )
        allreduce_started = time.perf_counter()
        try:
            averaged = context.collective.allreduce(context.worker_id, grads)
        except CollectiveAborted:
            # The round never completed: rewind the loader so the batch is
            # re-issued when (if) this context resumes after recovery.
            # The open iteration/allreduce spans are dropped at export —
            # an aborted round contributes no timeline interval.
            context.loader.load_state_dict(loader_checkpoint)
            raise
        self.tracer.end(allreduce_span)
        self.metrics.histogram("worker.allreduce_seconds").observe(
            time.perf_counter() - allreduce_started
        )
        if context.lr_ramp is not None:
            lr = context.lr_ramp.lr_at(info.iteration)
        else:
            lr = info.learning_rate
        context.optimizer.lr = lr
        info.learning_rate = lr
        if averaged is not None:
            context.optimizer.step(context.params, averaged)
        info.iteration += 1
        info.epoch = context.loader.epoch
        worker.iterations_run += 1
        self.tracer.end(iteration_span)
        self.metrics.counter("iterations_total").inc()

    def _compute_gradients(self, context: WorkerContext, indices):
        """Gradients for one worker's share, with optional accumulation.

        When the share exceeds ``max_micro_batch``, it is split into
        chunks whose gradients are combined with per-chunk weights — the
        result is bit-for-bit what one big batch would produce, so
        accumulation is invisible to the algorithm (only memory changes).
        """
        limit = self.max_micro_batch
        if limit is None or len(indices) <= limit:
            return self.architecture.loss_and_gradients(
                context.params,
                self.dataset.train_x[indices],
                self.dataset.train_y[indices],
            )
        total = len(indices)
        combined: "dict | None" = None
        weighted_loss = 0.0
        for start in range(0, total, limit):
            chunk = indices[start : start + limit]
            loss, grads = self.architecture.loss_and_gradients(
                context.params,
                self.dataset.train_x[chunk],
                self.dataset.train_y[chunk],
            )
            weight = len(chunk) / total
            weighted_loss += loss * weight
            if combined is None:
                combined = {k: g * weight for k, g in grads.items()}
            else:
                for name, grad in grads.items():
                    combined[name] += grad * weight
        return weighted_loss, combined

    # -- the commit: steps 4 and 5 of Fig. 2 -----------------------------------------

    def _execute_commit(
        self, leader: WorkerContext, directive: Directive
    ) -> GroupPlan:
        """Performed (under the runtime lock) by the first worker to reach
        the commit boundary: replicate state, reconstruct the group,
        repartition data, apply the scaling policy."""
        commit_started = time.perf_counter()
        request = directive.adjustment
        assert request is not None
        old_group = leader.group
        new_group = directive.new_group
        commit_iteration = directive.commit_iteration
        commit_span = self.tracer.begin(
            "adjust.commit", track="am", cat="adjust",
            kind=request.kind.value, commit_iteration=commit_iteration,
            old_workers=len(old_group), new_workers=len(new_group),
        )

        # Step 5a: hybrid scaling — batch size and LR ramp.
        decision = self.scaling_policy.decide(
            old_workers=len(old_group),
            new_workers=len(new_group),
            total_batch_size=leader.runtime_info.total_batch_size,
            learning_rate=leader.runtime_info.learning_rate,
            iteration=commit_iteration,
        )
        per_worker = max(1, decision.new_total_batch_size // len(new_group))
        total_batch = per_worker * len(new_group)
        ramp: "LrRamp | None" = decision.lr_ramp
        if ramp is not None and ramp.scale_factor == 1.0:
            ramp = None  # no batch change; keep the current constant lr

        # Step 4: capture state via hooks and replicate to each new worker.
        replicate_span = self.tracer.begin(
            "commit.replicate", track="am", cat="adjust",
            targets=len(request.add_workers),
        )
        captured = self.hooks.capture_all(leader)
        replication_plan = None
        new_contexts: typing.Dict[str, WorkerContext] = {}
        collective = self._make_collective(self._generation + 1, new_group)
        for worker_id in request.add_workers:
            context = WorkerContext(
                worker_id=worker_id,
                params=self.architecture.init(self.seed),
                optimizer=MomentumSGD(lr=self.base_lr, momentum=self.momentum),
                loader=SerialLoader(self.dataset.train_size, seed=self.seed),
                runtime_info=RuntimeInfo(),
                generation=self._generation + 1,
                group=new_group,
                rank=new_group.index(worker_id),
                collective=collective,
                per_worker_batch=per_worker,
                lr_ramp=ramp,
                gpu=self._allocate_gpu(),
            )
            self.replicator.replications += 1
            self.hooks.restore_all(context, captured)
            context.runtime_info.total_batch_size = total_batch
            if ramp is not None:
                ramp_to_runtime_info(context.runtime_info, ramp)
            context.loader.repartition(len(new_group))
            new_contexts[worker_id] = context
        self.tracer.end(replicate_span)

        # Steps 5b-c: group reconstruction + data repartition metadata.
        reconfigure_span = self.tracer.begin(
            "commit.reconfigure", track="am", cat="adjust"
        )
        # If a topology was attached, derive the real replication plan the
        # transfers would follow (used by timing experiments and tests).
        if self._cluster is not None and request.add_workers:
            existing_gpus = [
                self._workers[w].context.gpu
                for w in old_group
                if self._workers[w].context and self._workers[w].context.gpu
            ]
            new_gpus = [new_contexts[w].gpu for w in request.add_workers]
            state_for_size = TrainingState(
                model=leader.params,
                optimizer=leader.optimizer.state_dict(),
                loader=leader.loader.state_dict(),
                comm_group=list(old_group),
                runtime=leader.runtime_info,
            )
            replication_plan = plan_replication(
                existing_gpus, new_gpus,
                gpu_bytes=state_for_size.gpu_bytes(),
                cpu_bytes=state_for_size.cpu_bytes(),
            )

        plan = GroupPlan(
            generation=self._generation + 1,
            group=new_group,
            collective=collective,
            total_batch_size=total_batch,
            per_worker_batch=per_worker,
            lr_ramp=ramp,
            commit_iteration=commit_iteration,
            kind=request.kind,
            strategy=decision.strategy,
            replication_plan=replication_plan,
        )
        self._generation += 1
        self.history.append(plan)
        self.am.finish_adjustment()
        self.tracer.end(reconfigure_span)

        # Hand the new workers their contexts and release them (they join
        # the collective at the commit iteration).
        for worker_id, context in new_contexts.items():
            handle = self._workers[worker_id]
            handle.context = context
            handle.join_event.set()
        latency = time.perf_counter() - commit_started
        self.commit_latencies.append(latency)
        self.tracer.end(commit_span)
        self.metrics.histogram("commit_seconds").observe(latency)
        self.metrics.counter(f"adjustments.{request.kind.value}").inc()
        self.metrics.gauge("workers").set(len(new_group))
        self.telemetry.record_event(
            None, "adjustment",
            adjustment_kind=request.kind.value,
            commit_iteration=commit_iteration,
            old_group=list(old_group),
            new_group=list(new_group),
            strategy=decision.strategy,
            latency=latency,
        )
        for worker_id in request.remove_workers:
            self.telemetry.forget_worker(worker_id)
        return plan


def params_consistent(contexts: typing.Sequence[WorkerContext]) -> bool:
    """True if every context holds bit-identical model parameters."""
    if not contexts:
        return True
    first = contexts[0].params
    for context in contexts[1:]:
        for name in first:
            if not np.array_equal(first[name], context.params[name]):
                return False
    return True
