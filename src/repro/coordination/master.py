"""The application master (AM): Elan's per-job control plane (§II, §V-B).

The AM offers the resource-adjustment service to the scheduler and
coordinates workers through the 5-step procedure of Fig. 2:

1. the scheduler *requests* an adjustment (and launches new workers);
2. new workers *report* after start + initialization;
3. existing workers *coordinate* at iteration boundaries; the adjustment
   commits at the first coordination point after every new worker has
   reported — existing workers never wait or shut down (the asynchronous
   coordination mechanism);
4. state replication and 5. state adjustment are executed by the runtime
   at the commit point the AM chose.

The AM is deliberately transport-free pure logic: the live threaded
runtime calls it under a lock, the discrete-event experiments drive it
with simulated time, and both get identical decisions.  Every transition
is persisted to a :class:`~repro.coordination.store.KeyValueStore`
(the etcd stand-in) so a failed AM can be recovered (§V-D).
"""

from __future__ import annotations

import dataclasses
import enum
import typing

from .store import CasConflict, KeyValueStore


class StaleEpochError(RuntimeError):
    """Raised when a fenced-off AM incarnation tries to act.

    Every AM incarnation (initial launch and each recovery) acquires a
    strictly increasing *fencing epoch* via CAS on the store.  An
    incarnation whose epoch is no longer current — it crashed, a
    replacement recovered, but the old process is still running — is
    *stale*: its directives must be rejected and its writes refused, or a
    zombie master could double-commit an adjustment the new master is
    also driving.
    """


class AdjustmentKind(enum.Enum):
    """The three resource adjustments Elan supports."""

    SCALE_OUT = "scale_out"
    SCALE_IN = "scale_in"
    MIGRATION = "migration"


class DirectiveKind(enum.Enum):
    """What a coordinating worker is told to do."""

    CONTINUE = "continue"
    ADJUST = "adjust"


class MasterState(enum.Enum):
    """AM state machine (persisted to the store)."""

    RUNNING = "running"
    WAITING_REPORTS = "waiting_reports"
    COMMIT_SCHEDULED = "commit_scheduled"


@dataclasses.dataclass(frozen=True)
class AdjustmentRequest:
    """A scheduler request (step 1 of Fig. 2).

    ``at_iteration`` optionally pins the commit to a specific boundary:
    the adjustment commits at the *later* of the pin and the natural
    next boundary.  A cluster scheduler uses this to make a resize land
    at the same iteration on every replay of a scenario — the natural
    boundary depends on when the request raced the workers' progress,
    the pin does not.
    """

    kind: AdjustmentKind
    add_workers: typing.Tuple[str, ...] = ()
    remove_workers: typing.Tuple[str, ...] = ()
    at_iteration: "int | None" = None

    def validate(self, current_group: typing.Sequence[str]) -> None:
        """Reject structurally impossible requests early."""
        if self.at_iteration is not None and self.at_iteration < 1:
            raise ValueError("at_iteration must be a future boundary (>= 1)")
        current = set(current_group)
        if self.kind is AdjustmentKind.SCALE_OUT:
            if not self.add_workers or self.remove_workers:
                raise ValueError("scale-out must only add workers")
        elif self.kind is AdjustmentKind.SCALE_IN:
            if not self.remove_workers or self.add_workers:
                raise ValueError("scale-in must only remove workers")
            if set(self.remove_workers) >= current:
                raise ValueError("scale-in cannot remove every worker")
        else:  # MIGRATION
            if not self.add_workers or not self.remove_workers:
                raise ValueError("migration must both add and remove workers")
        if set(self.add_workers) & current:
            raise ValueError("cannot add workers already in the group")
        missing = set(self.remove_workers) - current
        if missing:
            raise ValueError(f"cannot remove unknown workers: {sorted(missing)}")


@dataclasses.dataclass(frozen=True)
class Directive:
    """The AM's answer to one coordinate call.

    Carries the issuing AM's fencing ``epoch`` so receivers can reject
    directives from a master that has since been superseded.
    """

    kind: DirectiveKind
    adjustment: "AdjustmentRequest | None" = None
    new_group: typing.Tuple[str, ...] = ()
    commit_iteration: int = -1
    epoch: int = 0


class ApplicationMaster:
    """Pure-logic AM; thread safety is the caller's concern."""

    def __init__(
        self,
        job_id: str,
        workers: typing.Sequence[str],
        store: "KeyValueStore | None" = None,
        coordination_interval: int = 1,
        tracer: "typing.Any | None" = None,
    ):
        if not workers:
            raise ValueError("a job needs at least one worker")
        if coordination_interval < 1:
            raise ValueError("coordination_interval must be >= 1")
        self.job_id = job_id
        self.store = store or KeyValueStore()
        self.coordination_interval = coordination_interval
        #: Optional span recorder; both the live runtime and the DES twin
        #: hand theirs in, so AM transitions land on either timeline.
        self.tracer = tracer
        self._directive_span = None
        self.state = MasterState.RUNNING
        self.group: typing.Tuple[str, ...] = tuple(workers)
        self.pending: "AdjustmentRequest | None" = None
        self.reported: set = set()
        self.commit_iteration = -1
        self.latest_iteration = 0
        self.coordinations = 0
        self.adjustments_committed = 0
        self.epoch = self._acquire_epoch(self.store, job_id)
        self._persisted_iteration = 0
        self._persist()

    def _instant(self, name: str, **args) -> None:
        if self.tracer is not None:
            self.tracer.instant(name, track="am", cat="am", **args)

    # -- fencing (§V-D hardening) ---------------------------------------------

    @staticmethod
    def _acquire_epoch(store: KeyValueStore, job_id: str) -> int:
        """Claim leadership: CAS the job's epoch counter one step higher.

        Losing the CAS means another incarnation claimed concurrently;
        re-read and try again — the loop terminates because every loser
        observes a strictly larger version.
        """
        key = f"elan/{job_id}/am/epoch"
        while True:
            current = store.get(key, 0)
            version = store.version(key)
            try:
                store.compare_and_swap(key, version, current + 1)
            except CasConflict:
                continue
            return current + 1

    def _check_fenced(self) -> None:
        """Refuse to act if a newer incarnation holds the epoch."""
        current = self.store.get(f"elan/{self.job_id}/am/epoch", 0)
        if current != self.epoch:
            raise StaleEpochError(
                f"AM epoch {self.epoch} for job {self.job_id!r} has been "
                f"superseded by epoch {current}"
            )

    # -- service API offered to the scheduler (Table III) --------------------

    def request_adjustment(self, request: AdjustmentRequest) -> bool:
        """Step 1: accept an adjustment unless one is already in flight."""
        self._check_fenced()
        if self.pending is not None:
            return False
        request.validate(self.group)
        self.pending = request
        self.reported = set()
        self._instant(
            "am.request", kind=request.kind.value,
            add=list(request.add_workers),
            remove=list(request.remove_workers),
        )
        if request.add_workers:
            self.state = MasterState.WAITING_REPORTS
        else:
            # Scale-in needs no reports: commit at the next boundary.
            self._schedule_commit()
        self._persist()
        return True

    # -- worker-facing protocol ----------------------------------------------

    def worker_report(self, worker_id: str) -> None:
        """Step 2: a new worker finished start + init and is ready to join."""
        self._check_fenced()
        if self.pending is None or worker_id not in self.pending.add_workers:
            return  # stale or unknown report; ignore (idempotent)
        self.reported.add(worker_id)
        self._instant("am.report", worker=worker_id)
        if self.state is MasterState.WAITING_REPORTS and self.reported >= set(
            self.pending.add_workers
        ):
            self._schedule_commit()
        self._persist()

    def coordinate(self, worker_id: str, iteration: int) -> Directive:
        """Step 3: an existing worker checks in at an iteration boundary.

        Non-blocking: if an adjustment is committed for this boundary the
        worker is told to adjust; otherwise — including while new workers
        are still starting — it is told to continue immediately.  This is
        the asynchronous coordination mechanism: stragglers among the new
        workers never stall training, "the adjustment is left for future
        coordination".
        """
        self._check_fenced()
        if worker_id not in self.group:
            raise KeyError(f"{worker_id!r} is not in the current group")
        self.coordinations += 1
        self.latest_iteration = max(self.latest_iteration, iteration)
        if (
            self.state is MasterState.COMMIT_SCHEDULED
            and iteration >= self.commit_iteration
        ):
            return self._commit_directive()
        # Keep the persisted iteration view fresh enough that a recovered
        # AM never schedules a commit in the workers' past — but only one
        # write per boundary (the first worker to mention it), so the hot
        # path stays a dict insert, not a write per coordination.
        if (
            self.latest_iteration - self._persisted_iteration
            >= self.coordination_interval
        ):
            self._persist()
        return Directive(kind=DirectiveKind.CONTINUE, epoch=self.epoch)

    # -- internals -------------------------------------------------------------

    def _schedule_commit(self) -> None:
        interval = self.coordination_interval
        next_boundary = (self.latest_iteration // interval + 1) * interval
        pin = self.pending.at_iteration if self.pending is not None else None
        if pin is not None:
            # Round the pin up to a boundary, then never schedule behind
            # the workers: a late pin degrades to the natural boundary.
            pinned = ((int(pin) + interval - 1) // interval) * interval
            next_boundary = max(next_boundary, pinned)
        self.commit_iteration = next_boundary
        self.state = MasterState.COMMIT_SCHEDULED
        self._instant("am.commit_scheduled", commit_iteration=next_boundary)

    def _commit_directive(self) -> Directive:
        request = self.pending
        assert request is not None
        # Directive issue -> ack as one span: opened the first time an
        # ADJUST directive is minted, closed by finish_adjustment.
        if self.tracer is not None and self._directive_span is None:
            self._directive_span = self.tracer.begin(
                "am.directive", track="am", cat="am",
                kind=request.kind.value,
                commit_iteration=self.commit_iteration, epoch=self.epoch,
            )
        if request.kind is AdjustmentKind.MIGRATION:
            new_group = tuple(request.add_workers)
        else:
            survivors = [w for w in self.group if w not in request.remove_workers]
            new_group = tuple(survivors) + tuple(request.add_workers)
        return Directive(
            kind=DirectiveKind.ADJUST,
            adjustment=request,
            new_group=new_group,
            commit_iteration=self.commit_iteration,
            epoch=self.epoch,
        )

    def finish_adjustment(self) -> None:
        """Called by the runtime once steps 4-5 completed at the commit."""
        self._check_fenced()
        directive = self._commit_directive()
        self.group = directive.new_group
        self.pending = None
        self.reported = set()
        self.commit_iteration = -1
        self.state = MasterState.RUNNING
        self.adjustments_committed += 1
        if self.tracer is not None and self._directive_span is not None:
            self.tracer.end(
                self._directive_span, group_size=len(self.group)
            )
            self._directive_span = None
        self._persist()

    # -- fault tolerance (§V-D) --------------------------------------------------

    def _persist(self) -> None:
        self._persisted_iteration = self.latest_iteration
        self.store.put(
            f"elan/{self.job_id}/am",
            {
                "epoch": self.epoch,
                "state": self.state.value,
                "group": list(self.group),
                "pending": None
                if self.pending is None
                else {
                    "kind": self.pending.kind.value,
                    "add": list(self.pending.add_workers),
                    "remove": list(self.pending.remove_workers),
                    "at_iteration": self.pending.at_iteration,
                },
                "reported": sorted(self.reported),
                "commit_iteration": self.commit_iteration,
                "latest_iteration": self.latest_iteration,
                "coordination_interval": self.coordination_interval,
                "adjustments_committed": self.adjustments_committed,
            },
        )

    @classmethod
    def recover(
        cls, job_id: str, store: KeyValueStore,
        tracer: "typing.Any | None" = None,
    ) -> "ApplicationMaster":
        """Rebuild a failed AM from its persisted state machine.

        The replacement claims a fresh (strictly higher) fencing epoch
        first, so the dead incarnation — should it turn out to be merely
        slow — is locked out before any recovered state is acted on.
        """
        snapshot = store.get(f"elan/{job_id}/am")
        if snapshot is None:
            raise KeyError(f"no persisted AM state for job {job_id!r}")
        master = cls.__new__(cls)
        master.job_id = job_id
        master.store = store
        master.tracer = tracer
        master._directive_span = None
        master.epoch = cls._acquire_epoch(store, job_id)
        master.coordination_interval = snapshot["coordination_interval"]
        master.state = MasterState(snapshot["state"])
        master.group = tuple(snapshot["group"])
        pending = snapshot["pending"]
        master.pending = (
            None
            if pending is None
            else AdjustmentRequest(
                kind=AdjustmentKind(pending["kind"]),
                add_workers=tuple(pending["add"]),
                remove_workers=tuple(pending["remove"]),
                at_iteration=pending.get("at_iteration"),
            )
        )
        master.reported = set(snapshot["reported"])
        master.commit_iteration = snapshot["commit_iteration"]
        master.latest_iteration = snapshot["latest_iteration"]
        master.coordinations = 0
        master.adjustments_committed = snapshot["adjustments_committed"]
        master._persisted_iteration = snapshot["latest_iteration"]
        master._persist()  # re-stamp the snapshot with the new epoch
        return master
