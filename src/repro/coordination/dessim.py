"""The Elan control plane on simulated time.

Drives the *real* :class:`~repro.coordination.master.ApplicationMaster`
from discrete-event processes: a lockstep training group iterating at the
calibrated iteration time, new-worker processes that start + initialize
(with jitter) before reporting, and commits whose pause is computed from
the topology-aware replication plan.  The same AM code thus runs in three
harnesses — unit tests, the live threaded runtime, and this simulator —
and the simulator's measured adjustment latencies cross-validate the
closed-form :class:`~repro.baselines.timing.ElanAdjustmentModel`.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy as np

from ..perfmodel import calibration
from ..perfmodel.models import ModelSpec
from ..perfmodel.throughput import ClusterSpec, PAPER_CLUSTER, ThroughputModel
from ..replication import plan_migration, plan_replication
from ..topology import BandwidthProfile, TopologyNode, cluster_for_gpu_count
from .master import (
    AdjustmentKind,
    AdjustmentRequest,
    ApplicationMaster,
    DirectiveKind,
)
from ..simcore import Simulator


@dataclasses.dataclass(frozen=True)
class SimulatedAdjustment:
    """Measured outcome of one adjustment in the simulation."""

    kind: AdjustmentKind
    request_time: float
    commit_time: float
    resume_time: float
    iterations_during_startup: int

    @property
    def pause(self) -> float:
        """Training downtime (the Fig. 15 metric)."""
        return self.resume_time - self.commit_time

    @property
    def request_to_resume(self) -> float:
        """End-to-end latency including the hidden start + init."""
        return self.resume_time - self.request_time


class SimulatedElasticJob:
    """One elastic job's control plane executing on the DES kernel."""

    def __init__(
        self,
        model: ModelSpec,
        workers: int = 8,
        total_batch_size: int = 256,
        coordination_interval: int = 1,
        cluster: ClusterSpec = PAPER_CLUSTER,
        profile: "BandwidthProfile | None" = None,
        seed: int = 0,
    ):
        self.sim = Simulator()
        self.model = model
        self.throughput = ThroughputModel(model, cluster)
        self.profile = profile or BandwidthProfile()
        self.rng = np.random.default_rng(seed)
        self.coordination_interval = coordination_interval
        self.total_batch_size = total_batch_size
        self.iteration = 0
        self.iterations_by_time: typing.List[tuple] = []
        self.adjustments: typing.List[SimulatedAdjustment] = []
        self._pending_request_time: "float | None" = None
        self._worker_gpus: typing.Dict[str, TopologyNode] = {}
        self._next_index = workers
        self._running = True
        self._actions: typing.List = []

        worker_ids = [f"w{i}" for i in range(workers)]
        self.am = ApplicationMaster(
            "sim-job", worker_ids, coordination_interval=coordination_interval
        )
        _cluster, gpus = cluster_for_gpu_count(workers + 64)
        self._gpu_pool = list(gpus)
        for worker_id in worker_ids:
            self._worker_gpus[worker_id] = self._gpu_pool.pop(0)
        self._trainer = self.sim.process(self._training_loop(), name="trainer")

    # -- the lockstep training group -------------------------------------------

    def _iteration_time(self) -> float:
        workers = len(self.am.group)
        base = self.throughput.iteration_time(workers, self.total_batch_size)
        if self.iteration % self.coordination_interval == 0:
            base += calibration.COORDINATION_BLOCKING_COST
        return base

    def _training_loop(self):
        while self._running:
            yield self.sim.timeout(self._iteration_time())
            self.iteration += 1
            self.iterations_by_time.append((self.sim.now, self.iteration))
            if self.iteration % self.coordination_interval != 0:
                continue
            directive = None
            for worker_id in self.am.group:
                directive = self.am.coordinate(worker_id, self.iteration)
            if directive.kind is DirectiveKind.ADJUST:
                yield from self._commit(directive)

    def _commit(self, directive):
        request = directive.adjustment
        commit_time = self.sim.now
        pause = self._pause_duration(request)
        yield self.sim.timeout(pause)
        startup_iters = self._iterations_since(self._pending_request_time)
        old_group = self.am.group
        self.am.finish_adjustment()
        for worker_id in request.remove_workers:
            self._gpu_pool.insert(0, self._worker_gpus.pop(worker_id))
        self.adjustments.append(
            SimulatedAdjustment(
                kind=request.kind,
                request_time=self._pending_request_time,
                commit_time=commit_time,
                resume_time=self.sim.now,
                iterations_during_startup=startup_iters,
            )
        )
        self._pending_request_time = None

    def _pause_duration(self, request: AdjustmentRequest) -> float:
        fixed = (
            calibration.GROUP_RECONSTRUCT_TIME
            + calibration.DATA_REPARTITION_TIME
        )
        if request.kind is AdjustmentKind.SCALE_IN:
            return fixed
        sources = [self._worker_gpus[w] for w in self.am.group]
        targets = [self._worker_gpus[w] for w in request.add_workers]
        if request.kind is AdjustmentKind.MIGRATION:
            plain = plan_migration(
                sources, targets, self.model.gpu_state_bytes,
                self.model.cpu_state_bytes,
            ).estimated_time(self.profile)
            chained = plan_replication(
                sources, targets, self.model.gpu_state_bytes,
                self.model.cpu_state_bytes, allow_chaining=True,
            ).estimated_time(self.profile)
            return fixed + min(plain, chained)
        plan = plan_replication(
            sources, targets, self.model.gpu_state_bytes,
            self.model.cpu_state_bytes, allow_chaining=True,
        )
        return fixed + plan.estimated_time(self.profile)

    def _iterations_since(self, when: "float | None") -> int:
        if when is None:
            return 0
        return sum(1 for t, _i in self.iterations_by_time if t >= when)

    # -- the scheduler side -----------------------------------------------------

    def _new_worker_process(self, worker_id: str):
        start = calibration.WORKER_START_TIME
        init = calibration.WORKER_INIT_TIME
        jitter = abs(float(self.rng.normal(0, calibration.WORKER_STARTUP_JITTER)))
        yield self.sim.timeout(start + init + jitter)
        self.am.worker_report(worker_id)

    def request_scale_out(self, count: int):
        """Process: request a scale-out and launch new-worker processes."""
        new_ids = [f"w{self._next_index + i}" for i in range(count)]
        self._next_index += count
        for worker_id in new_ids:
            self._worker_gpus[worker_id] = self._gpu_pool.pop(0)
        accepted = self.am.request_adjustment(
            AdjustmentRequest(AdjustmentKind.SCALE_OUT,
                              add_workers=tuple(new_ids))
        )
        if not accepted:
            raise RuntimeError("an adjustment is already in flight")
        self._pending_request_time = self.sim.now
        for worker_id in new_ids:
            self.sim.process(self._new_worker_process(worker_id))

    def request_scale_in(self, count: int):
        """Request removal of the last ``count`` workers."""
        victims = tuple(self.am.group[-count:])
        if not self.am.request_adjustment(
            AdjustmentRequest(AdjustmentKind.SCALE_IN, remove_workers=victims)
        ):
            raise RuntimeError("an adjustment is already in flight")
        self._pending_request_time = self.sim.now

    def at(self, when: float, action: typing.Callable[[], None]) -> None:
        """Schedule a scheduler action at simulated time ``when``."""

        def fire():
            yield self.sim.timeout(max(0.0, when - self.sim.now))
            action()

        self._actions.append(self.sim.process(fire(), name=f"action@{when}"))

    def run(self, until: float) -> None:
        """Advance the simulation to ``until`` and stop training there.

        Re-raises the first exception any scheduled action hit (a failed
        scheduler call must not be swallowed by the event loop).
        """
        self.sim.run(until=until)
        self._running = False
        for action in self._actions:
            if action.triggered and not action.ok:
                action.value  # re-raises the stored exception

    # -- measurements --------------------------------------------------------------

    def effective_throughput(self, start: float, end: float) -> float:
        """Samples/second processed inside [start, end]."""
        iters = [
            i for t, i in self.iterations_by_time if start <= t <= end
        ]
        if len(iters) < 2:
            return 0.0
        return (iters[-1] - iters[0]) * self.total_batch_size / (end - start)
