"""The Elan control plane on simulated time.

Drives the *real* :class:`~repro.coordination.master.ApplicationMaster`
from discrete-event processes: a lockstep training group iterating at the
calibrated iteration time, new-worker processes that start + initialize
(with jitter) before reporting, and commits whose pause is computed from
the topology-aware replication plan.  The same AM code thus runs in three
harnesses — unit tests, the live threaded runtime, and this simulator —
and the simulator's measured adjustment latencies cross-validate the
closed-form :class:`~repro.baselines.timing.ElanAdjustmentModel`.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy as np

from ..observability import Tracer
from ..perfmodel import calibration
from ..perfmodel.models import ModelSpec
from ..perfmodel.throughput import ClusterSpec, PAPER_CLUSTER, ThroughputModel
from ..replication import plan_migration, plan_replication
from ..topology import BandwidthProfile, TopologyNode, cluster_for_gpu_count
from .faults import FaultPlan
from .master import (
    AdjustmentKind,
    AdjustmentRequest,
    ApplicationMaster,
    DirectiveKind,
)
from .store import KeyValueStore
from .telemetry import RuntimeTelemetry
from ..simcore import Simulator


@dataclasses.dataclass(frozen=True)
class SimulatedAdjustment:
    """Measured outcome of one adjustment in the simulation."""

    kind: AdjustmentKind
    request_time: float
    commit_time: float
    resume_time: float
    iterations_during_startup: int

    @property
    def pause(self) -> float:
        """Training downtime (the Fig. 15 metric)."""
        return self.resume_time - self.commit_time

    @property
    def request_to_resume(self) -> float:
        """End-to-end latency including the hidden start + init."""
        return self.resume_time - self.request_time


class SimulatedElasticJob:
    """One elastic job's control plane executing on the DES kernel."""

    def __init__(
        self,
        model: ModelSpec,
        workers: int = 8,
        total_batch_size: int = 256,
        coordination_interval: int = 1,
        cluster: ClusterSpec = PAPER_CLUSTER,
        profile: "BandwidthProfile | None" = None,
        seed: int = 0,
        lease_ttl: "float | None" = None,
        supervision_interval: "float | None" = None,
        fault_plan: "FaultPlan | None" = None,
        tracer: "Tracer | None" = None,
    ):
        self.sim = Simulator()
        #: Span recorder on *simulated* time — the same span taxonomy the
        #: live runtime emits on wall time (docs/OBSERVABILITY.md).  An
        #: externally supplied tracer must read this job's ``sim.now``.
        self.tracer = tracer or Tracer(
            clock=lambda: self.sim.now, process="elan-dessim"
        )
        #: Event log / metrics twin, stamped with simulated time so
        #: replays are deterministic.
        self.telemetry = RuntimeTelemetry(clock=lambda: self.sim.now)
        self.model = model
        self.throughput = ThroughputModel(model, cluster)
        self.profile = profile or BandwidthProfile()
        self.rng = np.random.default_rng(seed)
        self.coordination_interval = coordination_interval
        self.total_batch_size = total_batch_size
        self.iteration = 0
        self.iterations_by_time: typing.List[tuple] = []
        self.adjustments: typing.List[SimulatedAdjustment] = []
        self._pending_request_time: "float | None" = None
        self._worker_gpus: typing.Dict[str, TopologyNode] = {}
        self._next_index = workers
        self._running = True
        self._actions: typing.List = []

        # -- supervision twin (mirrors ElasticRuntime's live supervisor) --
        if lease_ttl is not None and lease_ttl <= 0:
            raise ValueError("lease_ttl must be > 0")
        self.lease_ttl = lease_ttl
        self.supervision_interval = supervision_interval or (
            lease_ttl / 4.0 if lease_ttl else 1.0
        )
        self.fault_plan = fault_plan
        #: The etcd stand-in, ticking on *simulated* time: lease deadlines
        #: and outage windows are measured in sim seconds.
        self.store = KeyValueStore(clock=lambda: self.sim.now)
        if fault_plan is not None and fault_plan.store_outages:
            self.store.set_outages(fault_plan.store_outages)
        #: (worker_id, detection latency in sim seconds) per detection.
        self.detections: typing.List[tuple] = []
        #: (removed worker ids, MTTR in sim seconds) per auto-recovery.
        self.recoveries: typing.List[tuple] = []
        self._dead: typing.Set[str] = set()
        self._forced_expiries_done: typing.Set[str] = set()
        self._am_crash_fired = False

        worker_ids = [f"w{i}" for i in range(workers)]
        self.am = ApplicationMaster(
            "sim-job", worker_ids, store=self.store,
            coordination_interval=coordination_interval,
            tracer=self.tracer,
        )
        _cluster, gpus = cluster_for_gpu_count(workers + 64)
        self._gpu_pool = list(gpus)
        for worker_id in worker_ids:
            self._worker_gpus[worker_id] = self._gpu_pool.pop(0)
            self._publish_lease(worker_id)
        self._trainer = self.sim.process(self._training_loop(), name="trainer")
        if self._supervision_enabled:
            self.sim.process(self._supervise_loop(), name="supervisor")

    @property
    def _supervision_enabled(self) -> bool:
        plan = self.fault_plan
        return self.lease_ttl is not None or (
            plan is not None
            and (plan.am_crash_iteration is not None or plan.lease_expiries)
        )

    # -- the lockstep training group -------------------------------------------

    def _iteration_time(self) -> float:
        workers = len(self.am.group)
        base = self.throughput.iteration_time(workers, self.total_batch_size)
        if self.iteration % self.coordination_interval == 0:
            base += calibration.COORDINATION_BLOCKING_COST
        return base

    def _training_loop(self):
        while self._running:
            if self._group_stalled():
                # A dead (or fenced-out) member never contributes to the
                # allreduce: the lockstep group blocks — and, crucially,
                # the blocked survivors stop heartbeating too.  Progress
                # resumes only once the supervisor repairs the group.
                yield self.sim.timeout(self.supervision_interval)
                continue
            iteration_started = self.sim.now
            yield self.sim.timeout(self._iteration_time())
            if self._group_stalled():
                continue  # a member died mid-iteration; the round aborts
            self.iteration += 1
            self.tracer.add_span(
                "iteration", iteration_started, self.sim.now,
                track="trainer", cat="train", iteration=self.iteration,
            )
            self.iterations_by_time.append((self.sim.now, self.iteration))
            self._heartbeat()
            if self.iteration % self.coordination_interval != 0:
                continue
            directive = None
            for worker_id in self.am.group:
                directive = self.am.coordinate(worker_id, self.iteration)
            if directive.kind is DirectiveKind.ADJUST:
                yield from self._commit(directive)

    # -- leases & supervision (the live supervisor's simulated twin) -----------

    def _lease_key(self, worker_id: str) -> str:
        return f"elan/{self.am.job_id}/lease/{worker_id}"

    @property
    def _lease_prefix(self) -> str:
        return f"elan/{self.am.job_id}/lease/"

    def _publish_lease(self, worker_id: str) -> None:
        if self.lease_ttl is not None:
            self.store.lease(self._lease_key(worker_id), "alive", self.lease_ttl)

    def _worker_dead(self, worker_id: str) -> bool:
        """True once the fault plan has killed (or fenced out) the worker."""
        if worker_id in self._dead:
            return True
        plan = self.fault_plan
        if plan is not None and plan.crashes_by(worker_id, self.iteration):
            return True
        return self.store.lease_revoked(self._lease_key(worker_id))

    def _group_stalled(self) -> bool:
        return any(self._worker_dead(w) for w in self.am.group)

    def _heartbeat(self) -> None:
        """Per-iteration lease renewal by every live group member."""
        if self.lease_ttl is None:
            return
        for worker_id in self.am.group:
            if not self._worker_dead(worker_id):
                self.store.keep_alive(self._lease_key(worker_id), self.lease_ttl)

    def _supervise_loop(self):
        while self._running:
            yield self.sim.timeout(self.supervision_interval)
            plan = self.fault_plan
            now = self.sim.now
            if plan is not None:
                if (
                    plan.am_crash_iteration is not None
                    and not self._am_crash_fired
                    and self.iteration >= plan.am_crash_iteration
                ):
                    self._am_crash_fired = True
                    self.am = ApplicationMaster.recover(
                        self.am.job_id, self.store, tracer=self.tracer
                    )
                    self.tracer.instant(
                        "am.failover", track="am", cat="am",
                        epoch=self.am.epoch,
                    )
                for key in plan.due_lease_expiries(now):
                    if key in self._forced_expiries_done:
                        continue
                    if self.store.lease_deadline(key) is None:
                        continue
                    self._forced_expiries_done.add(key)
                    self.store.force_expire(key)
            if self.lease_ttl is None:
                continue
            victims = []
            for key in self.store.expired_keys(self._lease_prefix):
                worker_id = key.rsplit("/", 1)[-1]
                if worker_id not in self.am.group:
                    self.store.delete(key)  # orphan lease; reap
                    continue
                # Expiry alone is ambiguous (blocked survivors lapse
                # too): condemn only plan-certified deaths and forced
                # revocations — the sim analogue of the live
                # thread-dead / revoked criteria.
                if self._worker_dead(worker_id):
                    deadline = self.store.lease_deadline(key)
                    latency = max(0.0, now - deadline)
                    self.detections.append((worker_id, latency))
                    self.telemetry.record_detection(worker_id, latency)
                    self.tracer.instant(
                        "failure.detected", track="supervisor",
                        cat="failure", worker=worker_id, latency=latency,
                        cause="lease_expired",
                    )
                    victims.append(worker_id)
            if victims:
                yield from self._recover(victims, detected_at=now)

    def _recover(self, victims: typing.List[str], detected_at: float):
        """Group surgery: evict the victims, resume the survivors."""
        survivors = tuple(w for w in self.am.group if w not in victims)
        if not survivors:
            raise RuntimeError(
                "every worker crashed; recovery needs a checkpoint"
            )
        yield self.sim.timeout(
            calibration.GROUP_RECONSTRUCT_TIME
            + calibration.DATA_REPARTITION_TIME
        )
        self._dead.update(victims)
        self.am.group = survivors
        self.am._persist()
        for worker_id in victims:
            self.store.delete(self._lease_key(worker_id))
            self._gpu_pool.insert(0, self._worker_gpus.pop(worker_id))
        for worker_id in survivors:
            self.store.delete(self._lease_key(worker_id))
            self._publish_lease(worker_id)
        mttr = self.sim.now - detected_at
        self.recoveries.append((list(victims), mttr))
        self.telemetry.record_recovery(victims, mttr)
        self.tracer.add_span(
            "recover", detected_at, self.sim.now,
            track="supervisor", cat="failure", removed=list(victims),
        )
        self.telemetry.metrics.gauge("workers").set(len(survivors))

    def _commit(self, directive):
        request = directive.adjustment
        commit_time = self.sim.now
        old_size = len(self.am.group)
        replicate_pause, reconfigure_pause = self._pause_components(request)
        # Step 4 (state replication), then step 5 (group reconstruction +
        # data repartition) — the same sub-span split the live commit
        # records, so phase breakdowns line up across harnesses.
        yield self.sim.timeout(replicate_pause)
        self.tracer.add_span(
            "commit.replicate", commit_time, self.sim.now,
            track="am", cat="adjust", targets=len(request.add_workers),
        )
        reconfigure_started = self.sim.now
        yield self.sim.timeout(reconfigure_pause)
        self.tracer.add_span(
            "commit.reconfigure", reconfigure_started, self.sim.now,
            track="am", cat="adjust",
        )
        startup_iters = self._iterations_since(self._pending_request_time)
        old_group = self.am.group
        self.am.finish_adjustment()
        for worker_id in request.remove_workers:
            self._gpu_pool.insert(0, self._worker_gpus.pop(worker_id))
            if self.lease_ttl is not None:
                self.store.delete(self._lease_key(worker_id))
        for worker_id in request.add_workers:
            self._publish_lease(worker_id)
        self.tracer.add_span(
            "adjust.commit", commit_time, self.sim.now,
            track="am", cat="adjust", kind=request.kind.value,
            commit_iteration=directive.commit_iteration,
            old_workers=old_size, new_workers=len(self.am.group),
        )
        metrics = self.telemetry.metrics
        metrics.histogram("commit_seconds").observe(self.sim.now - commit_time)
        metrics.counter(f"adjustments.{request.kind.value}").inc()
        metrics.gauge("workers").set(len(self.am.group))
        self.telemetry.record_event(
            None, "adjustment", adjustment_kind=request.kind.value,
            commit_iteration=directive.commit_iteration,
            old_group=list(old_group), new_group=list(self.am.group),
        )
        self.adjustments.append(
            SimulatedAdjustment(
                kind=request.kind,
                request_time=self._pending_request_time,
                commit_time=commit_time,
                resume_time=self.sim.now,
                iterations_during_startup=startup_iters,
            )
        )
        self._pending_request_time = None

    def _pause_components(self, request: AdjustmentRequest) -> "tuple[float, float]":
        """The commit pause split into (replicate, reconfigure) seconds."""
        fixed = (
            calibration.GROUP_RECONSTRUCT_TIME
            + calibration.DATA_REPARTITION_TIME
        )
        if request.kind is AdjustmentKind.SCALE_IN:
            return 0.0, fixed
        sources = [self._worker_gpus[w] for w in self.am.group]
        targets = [self._worker_gpus[w] for w in request.add_workers]
        if request.kind is AdjustmentKind.MIGRATION:
            plain = plan_migration(
                sources, targets, self.model.gpu_state_bytes,
                self.model.cpu_state_bytes,
            ).estimated_time(self.profile)
            chained = plan_replication(
                sources, targets, self.model.gpu_state_bytes,
                self.model.cpu_state_bytes, allow_chaining=True,
            ).estimated_time(self.profile)
            return min(plain, chained), fixed
        plan = plan_replication(
            sources, targets, self.model.gpu_state_bytes,
            self.model.cpu_state_bytes, allow_chaining=True,
        )
        return plan.estimated_time(self.profile), fixed

    def _pause_duration(self, request: AdjustmentRequest) -> float:
        """Total commit pause (kept for cost-model cross-validation)."""
        return sum(self._pause_components(request))

    def _iterations_since(self, when: "float | None") -> int:
        if when is None:
            return 0
        return sum(1 for t, _i in self.iterations_by_time if t >= when)

    # -- the scheduler side -----------------------------------------------------

    def _new_worker_process(self, worker_id: str):
        start = calibration.WORKER_START_TIME
        init = calibration.WORKER_INIT_TIME
        jitter = abs(float(self.rng.normal(0, calibration.WORKER_STARTUP_JITTER)))
        started = self.sim.now
        yield self.sim.timeout(start + init + jitter)
        self.tracer.add_span(
            "worker.start_init", started, self.sim.now,
            track=worker_id, cat="adjust", worker=worker_id,
        )
        self.tracer.instant(
            "worker.report", track=worker_id, cat="adjust", worker=worker_id
        )
        self.am.worker_report(worker_id)

    def request_scale_out(self, count: int):
        """Process: request a scale-out and launch new-worker processes."""
        new_ids = [f"w{self._next_index + i}" for i in range(count)]
        self._next_index += count
        for worker_id in new_ids:
            self._worker_gpus[worker_id] = self._gpu_pool.pop(0)
        accepted = self.am.request_adjustment(
            AdjustmentRequest(AdjustmentKind.SCALE_OUT,
                              add_workers=tuple(new_ids))
        )
        if not accepted:
            raise RuntimeError("an adjustment is already in flight")
        self.tracer.instant(
            "adjust.request", track="am", cat="adjust",
            kind="scale_out", workers=new_ids,
        )
        self._pending_request_time = self.sim.now
        for worker_id in new_ids:
            self.sim.process(self._new_worker_process(worker_id))

    def request_scale_in(self, count: int):
        """Request removal of the last ``count`` workers."""
        victims = tuple(self.am.group[-count:])
        if not self.am.request_adjustment(
            AdjustmentRequest(AdjustmentKind.SCALE_IN, remove_workers=victims)
        ):
            raise RuntimeError("an adjustment is already in flight")
        self.tracer.instant(
            "adjust.request", track="am", cat="adjust",
            kind="scale_in", workers=list(victims),
        )
        self._pending_request_time = self.sim.now

    def at(self, when: float, action: typing.Callable[[], None]) -> None:
        """Schedule a scheduler action at simulated time ``when``."""

        def fire():
            yield self.sim.timeout(max(0.0, when - self.sim.now))
            action()

        self._actions.append(self.sim.process(fire(), name=f"action@{when}"))

    def run(self, until: float) -> None:
        """Advance the simulation to ``until`` and stop training there.

        Re-raises the first exception any scheduled action hit (a failed
        scheduler call must not be swallowed by the event loop).
        """
        self.sim.run(until=until)
        self._running = False
        for action in self._actions:
            if action.triggered and not action.ok:
                action.value  # re-raises the stored exception

    # -- measurements --------------------------------------------------------------

    def effective_throughput(self, start: float, end: float) -> float:
        """Samples/second processed inside [start, end]."""
        iters = [
            i for t, i in self.iterations_by_time if start <= t <= end
        ]
        if len(iters) < 2:
            return 0.0
        return (iters[-1] - iters[0]) * self.total_batch_size / (end - start)
