"""A real chunked ring-allreduce for the live runtime.

The default :class:`~repro.coordination.collective.Collective` averages
gradients at a rendezvous point — correct, but not the algorithm real
collective-communication stacks run.  This module implements the actual
ring: tensors are flattened and cut into ``size`` chunks, and the
reduction proceeds in ``2*(size-1)`` steps — ``size-1`` reduce-scatter
steps followed by ``size-1`` all-gather steps — with every member only
ever exchanging one chunk per step with its ring neighbor.

It plugs into the runtime anywhere the rendezvous collective does (same
``allreduce`` signature); tests verify both produce identical means,
which is exactly the data-parallel equivalence Elan relies on.

Members whose micro-batch was empty (epoch tail) contribute a zero vector
built from ``template_factory`` plus a zero count; the count rides the
ring alongside the gradients, so every member divides by the same number
of real contributors.
"""

from __future__ import annotations

import threading
import typing

import numpy as np

from ..training.nn import Params
from .collective import CollectiveAborted


def flatten_params(grads: Params) -> np.ndarray:
    """Concatenate a parameter dict into one float64 vector (name order)."""
    names = sorted(grads)
    return np.concatenate([np.ravel(grads[name]) for name in names]).astype(
        np.float64
    )


def unflatten_params(flat: np.ndarray, template: Params) -> Params:
    """Inverse of :func:`flatten_params` against a shape template."""
    out: Params = {}
    offset = 0
    for name in sorted(template):
        size = template[name].size
        out[name] = flat[offset : offset + size].reshape(template[name].shape)
        offset += size
    return out


class RingCollective:
    """Chunked ring-allreduce over in-process members."""

    def __init__(
        self,
        generation: int,
        members: typing.Sequence[str],
        template_factory: typing.Callable[[], Params],
        timeout: float = 30.0,
    ):
        if not members:
            raise ValueError("a collective needs at least one member")
        if len(set(members)) != len(members):
            raise ValueError("duplicate member ids")
        self.generation = generation
        self.members = tuple(members)
        self.template_factory = template_factory
        self.timeout = timeout
        self._rank = {m: i for i, m in enumerate(self.members)}
        self._round = {m: 0 for m in self.members}
        self._cond = threading.Condition()
        self._mailbox: typing.Dict[tuple, np.ndarray] = {}
        self._aborted = False

    @property
    def size(self) -> int:
        """Number of ring members."""
        return len(self.members)

    def abort(self) -> None:
        """Wake every waiter with :class:`CollectiveAborted`."""
        with self._cond:
            self._aborted = True
            self._cond.notify_all()

    def laggards(self) -> typing.Tuple[str, ...]:
        """Members that have not yet entered the round their peers are in.

        Empty when every member is at the same round (no ring traffic in
        flight, or everyone equally blocked).
        """
        with self._cond:
            lo = min(self._round.values())
            if all(r == lo for r in self._round.values()):
                return ()
            return tuple(m for m in self.members if self._round[m] == lo)

    def _post(self, key: tuple, value: np.ndarray) -> None:
        with self._cond:
            self._mailbox[key] = value
            self._cond.notify_all()

    def _take(self, key: tuple) -> np.ndarray:
        with self._cond:
            while key not in self._mailbox:
                if self._aborted:
                    raise CollectiveAborted(
                        f"ring generation {self.generation} aborted"
                    )
                if not self._cond.wait(timeout=self.timeout):
                    raise RuntimeError(f"ring allreduce timed out at {key}")
            return self._mailbox.pop(key)

    def allreduce(self, member_id: str, grads: "Params | None") -> "Params | None":
        """Ring-allreduce this member's gradients; returns the group mean
        (``None`` only if every member was empty)."""
        if member_id not in self._rank:
            raise KeyError(f"{member_id!r} is not in generation {self.generation}")
        rank = self._rank[member_id]
        size = self.size
        with self._cond:
            if self._aborted:
                raise CollectiveAborted("aborted")
            round_id = self._round[member_id]
            self._round[member_id] += 1
        template = self.template_factory()
        if grads is None:
            flat, count = (
                np.zeros(sum(a.size for a in template.values())),
                0.0,
            )
        else:
            flat, count = flatten_params(grads), 1.0
        if size == 1:
            return grads

        # The contribution count rides as a final element so the ring
        # also reduces the divisor every member will use.
        work = np.concatenate([flat, [count]])
        chunk_of = [c.copy() for c in np.array_split(work, size)]
        right = (rank + 1) % size

        # Reduce-scatter: after size-1 steps, rank holds the full sum of
        # chunk (rank+1) mod size.
        for step in range(size - 1):
            send_index = (rank - step) % size
            self._post(("rs", round_id, step, right, send_index),
                       chunk_of[send_index])
            recv_index = (rank - step - 1) % size
            incoming = self._take(("rs", round_id, step, rank, recv_index))
            chunk_of[recv_index] = chunk_of[recv_index] + incoming
        # All-gather: circulate the completed chunks around the ring.
        for step in range(size - 1):
            send_index = (rank - step + 1) % size
            self._post(("ag", round_id, step, right, send_index),
                       chunk_of[send_index])
            recv_index = (rank - step) % size
            chunk_of[recv_index] = self._take(
                ("ag", round_id, step, rank, recv_index)
            )

        summed = np.concatenate(chunk_of)
        contributors = summed[-1]
        if contributors <= 0:
            return None
        return unflatten_params(summed[:-1] / contributors, template)
