"""Message protocol between the application master and workers (§V-D).

Every message carries a unique ID; receivers deduplicate by ID and senders
resend on timeout — the paper's fault-tolerance recipe ("we tag every
message with a unique ID and resend it in case of timeout").  The channel
abstraction supports injectable delivery faults (drops, duplicates) so the
resend/dedup logic is actually exercised by tests.

These primitives are transport-agnostic: :class:`FaultyChannel` satisfies
the :class:`repro.net.Transport` protocol (``send`` / ``close`` /
``connected`` / ``node_id``), and the networked stack in
:mod:`repro.net` reuses :class:`ReliableSender` as its only resend loop
and :class:`DeduplicatingInbox` as its only dedup filter — the in-memory
and TCP paths share one code path for the §V-D recipe.
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
import secrets
import typing


class MessageType(enum.Enum):
    """Protocol message kinds (paper Fig. 2 steps and Table III calls)."""

    ADJUSTMENT_REQUEST = "adjustment_request"  # scheduler -> AM   (step 1)
    WORKER_REPORT = "worker_report"  # new worker -> AM            (step 2)
    COORDINATE = "coordinate"  # existing worker -> AM             (step 3)
    DIRECTIVE = "directive"  # AM -> worker (continue / adjust)
    HEARTBEAT = "heartbeat"  # worker -> store (lease keep-alive)
    ACK = "ack"
    JOIN = "join"  # joining worker -> AM (poll for spec + state)
    SYNC = "sync"  # worker -> AM (gradient rendezvous barrier)
    STATE_UPLOAD = "state_upload"  # uploader -> AM (snapshot / digest)
    STATE_CHUNK = "state_chunk"  # uploader -> AM (one snapshot chunk)
    STATE_DONE = "state_done"  # uploader -> AM (all chunks sent; digest)
    STATE_FETCH = "state_fetch"  # joiner -> AM (pull one snapshot chunk)
    STATUS = "status"  # driver -> AM (job progress query)
    ENROLL = "enroll"  # worker -> successor AM (re-enroll after failover)
    RING_SEGMENT = "ring_segment"  # worker -> ring successor (one bucket)
    RING_FETCH = "ring_fetch"  # worker -> peer (iteration state / mean)
    TELEMETRY = "telemetry"  # worker -> AM (metric/trace delta); driver query
    # -- cluster-scheduler plane (scheduler service <-> clients / AMs) --------
    SUBMIT = "submit"  # client -> scheduler (queue one job request)
    OFFER = "offer"  # client -> scheduler (poll one job's placement)
    RESIZE = "resize"  # scheduler -> AM (externally driven grow/shrink)
    RELEASE = "release"  # client/driver -> scheduler (return a job's GPUs)
    JOB_STATUS = "job_status"  # client -> scheduler (queue/allocation tables)


@dataclasses.dataclass(frozen=True)
class Message:
    """One protocol message.

    ``msg_id`` is globally unique per logical message; a retransmission
    reuses the ID so receivers can deduplicate.
    """

    msg_id: int
    msg_type: MessageType
    sender: str
    payload: dict

    def duplicate(self) -> "Message":
        """A retransmission of this message (same ID on purpose)."""
        return self


class MessageFactory:
    """Allocates message IDs unique across process incarnations.

    IDs are ``(epoch << EPOCH_SHIFT) + counter`` where the epoch is a
    random per-factory nonce.  Receivers dedup on ``(sender, msg_id)``,
    and a restarted worker reuses its worker id (that is the
    self-healing layer's recovery model) — were the counter to restart
    at 1 too, the fresh incarnation's first requests would be
    misclassified as retransmissions and answered with cached replies
    of unrelated earlier messages.  Pass ``epoch=0`` when a test wants
    small deterministic IDs.
    """

    #: Low bits reserved for the per-epoch counter (~1M messages; an
    #: overflow merely bleeds into a neighbouring epoch's space, which
    #: the 40-bit random epoch makes vanishingly unlikely to collide).
    EPOCH_SHIFT = 20

    def __init__(self, epoch: "int | None" = None):
        # 40 + 20 bits keeps every ID well inside int64, so both wire
        # codecs (JSON, msgpack) carry it exactly.
        self.epoch = secrets.randbits(40) if epoch is None else epoch
        self._ids = itertools.count((self.epoch << self.EPOCH_SHIFT) + 1)

    def make(self, msg_type: MessageType, sender: str, payload: dict) -> Message:
        """Create a new uniquely-identified message."""
        return Message(
            msg_id=next(self._ids),
            msg_type=msg_type,
            sender=sender,
            payload=dict(payload),
        )


class DeduplicatingInbox:
    """Receiver-side dedup, by message ID (default) or a custom key.

    A single-sender inbox keys on ``msg_id`` alone (IDs are unique per
    :class:`MessageFactory`); a server fed by many clients — each with
    its own factory — passes ``key=lambda m: (m.sender, m.msg_id)`` so
    two clients' counters cannot collide.
    """

    def __init__(
        self,
        key: "typing.Callable[[Message], typing.Hashable] | None" = None,
    ):
        self._key = key or (lambda message: message.msg_id)
        self._seen: set = set()
        self.duplicates_dropped = 0

    def accept(self, message: Message) -> bool:
        """True if the message is new; False (and counted) if a duplicate."""
        key = self._key(message)
        if key in self._seen:
            self.duplicates_dropped += 1
            return False
        self._seen.add(key)
        return True

    def forget(self, key: typing.Hashable) -> None:
        """Evict one remembered key (bounded dedup windows need this)."""
        self._seen.discard(key)


class FaultyChannel:
    """A lossy in-memory channel with deterministic fault injection.

    ``drop_every`` drops each n-th send (simulating loss so that the
    sender's resend path runs); ``duplicate_every`` delivers each n-th
    send twice (so the receiver's dedup path runs).

    The channel satisfies the :class:`repro.net.Transport` protocol: it
    carries a ``node_id``, reports ``connected``, and can be ``close``\\ d
    (after which every send fails).  The TCP transport reuses this class
    verbatim as its loss-injection stage, so both transports share one
    drop/duplicate code path.
    """

    def __init__(
        self,
        deliver: typing.Callable[[Message], None],
        drop_every: int = 0,
        duplicate_every: int = 0,
        node_id: str = "local",
    ):
        self._deliver = deliver
        self.drop_every = drop_every
        self.duplicate_every = duplicate_every
        self.node_id = node_id
        self.sent = 0
        self.dropped = 0
        self.duplicated = 0
        self._closed = False

    @property
    def connected(self) -> bool:
        """An in-memory channel is connected until closed."""
        return not self._closed

    def close(self) -> None:
        """Tear the channel down; subsequent sends report failure."""
        self._closed = True

    def send(self, message: Message) -> bool:
        """Send through the channel; returns False if the send was dropped."""
        if self._closed:
            return False
        self.sent += 1
        if self.drop_every and self.sent % self.drop_every == 0:
            self.dropped += 1
            return False
        self._deliver(message)
        if self.duplicate_every and self.sent % self.duplicate_every == 0:
            self.duplicated += 1
            self._deliver(message.duplicate())
        return True


class ReliableSender:
    """Send-with-retry over a possibly lossy channel.

    Mirrors the paper's timeout-resend: the caller supplies an
    acknowledgement predicate; the sender retries (same message ID) until
    acknowledged or the attempt budget is exhausted.  Every re-attempt is
    counted in ``retries`` — including those of sends that ultimately
    give up — and an optional backoff policy (duck-typed: anything with
    ``wait(attempt)``, e.g. :class:`~repro.coordination.faults.
    ExponentialBackoff`) spaces the resends out instead of hammering the
    channel.
    """

    def __init__(
        self,
        channel: FaultyChannel,
        max_attempts: int = 5,
        backoff: "typing.Any | None" = None,
    ):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.channel = channel
        self.max_attempts = max_attempts
        self.backoff = backoff
        self.retries = 0

    def send(
        self, message: Message, acknowledged: typing.Callable[[], bool]
    ) -> bool:
        """Deliver ``message``, retrying until ``acknowledged()`` is true."""
        for attempt in range(self.max_attempts):
            if attempt > 0:
                self.retries += 1
                if self.backoff is not None:
                    self.backoff.wait(attempt - 1)
            self.channel.send(message)
            if acknowledged():
                return True
        return False
