"""Runtime observability: per-worker timings, events, straggler detection.

Synchronous data-parallel training hides stragglers inside the allreduce
barrier — every member's *iteration* time equals the slowest member's.
The telemetry therefore records each worker's **compute** time (iteration
start to allreduce entry), which isolates the slow worker, plus a
structured event log of adjustments and failures.  The straggler-
mitigation example uses :meth:`RuntimeTelemetry.detect_stragglers` to
pick its victim instead of cheating.

The collector sits on top of a
:class:`~repro.observability.MetricRegistry`: every recording also feeds
the well-known metrics below, so dashboards and the ``tracing`` CLI see
the same numbers the query API serves.

==============================================  =========
metric                                          kind
==============================================  =========
``worker.compute_seconds``                      histogram
``failure.detection_latency_seconds``           histogram
``failure.mttr_seconds``                        histogram
``events.<kind>``                               counter
==============================================  =========

Event timestamps come from an injectable ``clock`` (wall time in the
live runtime, simulated time under the discrete-event twin), so dessim
replays produce deterministic event logs.
"""

from __future__ import annotations

import collections
import dataclasses
import statistics
import threading
import time
import typing

from ..observability import MetricRegistry


@dataclasses.dataclass(frozen=True)
class TelemetryEvent:
    """One control-plane happening (adjustment, failure, recovery)."""

    wall_time: float
    kind: str
    detail: dict

    def __post_init__(self):
        # Defensive copy: a caller mutating its kwargs dict after the
        # fact must not be able to rewrite the event log.
        object.__setattr__(self, "detail", dict(self.detail))


class RuntimeTelemetry:
    """Thread-safe collector of per-worker timings and events."""

    def __init__(
        self,
        window: int = 256,
        clock: "typing.Callable[[], float] | None" = None,
        metrics: "MetricRegistry | None" = None,
    ):
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        #: Timestamp source for event records.  The live runtime passes
        #: the store's clock (the one its supervisor already reads); the
        #: simulated twin passes ``lambda: sim.now``.
        self.clock = clock or time.time
        #: The metric registry every recording feeds.
        self.metrics = metrics or MetricRegistry()
        self._lock = threading.Lock()
        self._compute_times: typing.Dict[str, collections.deque] = {}
        self.events: typing.List[TelemetryEvent] = []
        #: Seconds between a worker's lease deadline passing and the
        #: supervisor noticing (the detect half of detect->recover).
        self.detection_latencies: typing.List[float] = []
        #: Seconds from failure detection to training restored (MTTR).
        self.mttr_samples: typing.List[float] = []
        self._compute_hist = self.metrics.histogram("worker.compute_seconds")
        self._detection_hist = self.metrics.histogram(
            "failure.detection_latency_seconds"
        )
        self._mttr_hist = self.metrics.histogram("failure.mttr_seconds")

    # -- recording ------------------------------------------------------------

    def record_compute(self, worker_id: str, seconds: float) -> None:
        """Record one iteration's compute duration for a worker."""
        with self._lock:
            buffer = self._compute_times.get(worker_id)
            if buffer is None:
                buffer = collections.deque(maxlen=self.window)
                self._compute_times[worker_id] = buffer
            buffer.append(seconds)
        self._compute_hist.observe(seconds)

    def record_event(
        self, wall_time: "float | None", kind: str, **detail
    ) -> None:
        """Append a control-plane event to the log.

        ``wall_time=None`` stamps the event with the injected clock.
        """
        if wall_time is None:
            wall_time = self.clock()
        self.metrics.counter(f"events.{kind}").inc()
        with self._lock:
            self.events.append(
                TelemetryEvent(wall_time=wall_time, kind=kind, detail=detail)
            )

    def record_detection(
        self, worker_id: str, latency: float, cause: str = "lease_expired"
    ) -> None:
        """Record that a worker failure was detected ``latency`` seconds
        after it became detectable (its lease deadline)."""
        self._detection_hist.observe(latency)
        self.metrics.counter("events.failure_detected").inc()
        with self._lock:
            self.detection_latencies.append(latency)
            self.events.append(TelemetryEvent(
                wall_time=self.clock(), kind="failure_detected",
                detail={"worker": worker_id, "latency": latency,
                        "cause": cause},
            ))

    def record_recovery(
        self, removed: typing.Sequence[str], mttr: float
    ) -> None:
        """Record one completed automatic recovery and its repair time."""
        self._mttr_hist.observe(mttr)
        self.metrics.counter("events.recovery").inc()
        with self._lock:
            self.mttr_samples.append(mttr)
            self.events.append(TelemetryEvent(
                wall_time=self.clock(), kind="recovery",
                detail={"removed": list(removed), "mttr": mttr},
            ))

    def forget_worker(self, worker_id: str) -> None:
        """Drop a departed worker's samples."""
        with self._lock:
            self._compute_times.pop(worker_id, None)

    # -- queries ----------------------------------------------------------------

    def mean_compute_time(self, worker_id: str) -> "float | None":
        """Windowed mean compute time of one worker (None if no samples)."""
        with self._lock:
            buffer = self._compute_times.get(worker_id)
            if not buffer:
                return None
            return statistics.fmean(buffer)

    def summary(self) -> "dict[str, float]":
        """{worker: mean compute seconds} for every observed worker."""
        with self._lock:
            return {
                worker: statistics.fmean(buffer)
                for worker, buffer in self._compute_times.items()
                if buffer
            }

    def detect_stragglers(
        self, factor: float = 2.0, min_samples: int = 5
    ) -> "list[str]":
        """Workers whose mean compute time exceeds ``factor`` x the group
        median — the signal a mitigation policy acts on."""
        if factor <= 1.0:
            raise ValueError("factor must be > 1")
        with self._lock:
            means = {
                worker: statistics.fmean(buffer)
                for worker, buffer in self._compute_times.items()
                if len(buffer) >= min_samples
            }
        if len(means) < 2:
            return []
        median = statistics.median(means.values())
        if median <= 0:
            return []
        return sorted(
            worker for worker, mean in means.items() if mean > factor * median
        )

    def mean_detection_latency(self) -> "float | None":
        """Mean detect-half latency (None before any detection)."""
        with self._lock:
            if not self.detection_latencies:
                return None
            return statistics.fmean(self.detection_latencies)

    def mean_mttr(self) -> "float | None":
        """Mean time to repair (None before any recovery)."""
        with self._lock:
            if not self.mttr_samples:
                return None
            return statistics.fmean(self.mttr_samples)

    def events_of_kind(self, kind: str) -> "list[TelemetryEvent]":
        """All events of one kind, in order."""
        with self._lock:
            return [e for e in self.events if e.kind == kind]
