"""A versioned key-value store with watches and leases — the etcd
stand-in (§V-D).

The paper deploys Elan on Kubernetes and persists the application master's
state machine on etcd.  This in-memory store provides the subset of etcd
semantics that requires: versioned puts, compare-and-swap, watch
callbacks, and TTL leases, so AM fail-over, fencing and lease-based
failure detection can be implemented and tested faithfully.

Per-key versions are **monotone across deletes**: a delete bumps the
version (and notifies watchers with :data:`TOMBSTONE`) instead of
resetting it, so a delete + re-put can never resurrect a version number
and let a stale ``compare_and_swap`` succeed (the ABA hazard).

The clock used for leases is injectable — the live runtime keeps the
default monotonic wall clock while the discrete-event simulator plugs in
its simulated ``now`` — and availability faults (op-count or clock-window
outages) can be injected for degradation tests.  :class:`RetryingStore`
is the degradation policy: it wraps a store and retries unavailable
operations under bounded exponential backoff.
"""

from __future__ import annotations

import threading
import time
import typing

from .faults import ExponentialBackoff

#: Sentinel delivered to watchers when a key is deleted.
TOMBSTONE: typing.Any = object()


class CasConflict(Exception):
    """Raised when a compare-and-swap loses a race."""


class StoreUnavailable(Exception):
    """Raised by store operations during an injected outage."""


class LeaseRevoked(RuntimeError):
    """Raised when re-leasing a key whose lease was forcibly revoked."""


class KeyValueStore:
    """Thread-safe versioned KV store with prefix watches and leases."""

    def __init__(self, clock: "typing.Callable[[], float] | None" = None):
        self._lock = threading.Lock()
        self.clock = clock or time.monotonic
        self._data: typing.Dict[str, object] = {}
        #: Per-key version counters; never reset, survive deletes.
        self._versions: typing.Dict[str, int] = {}
        self._watches: typing.List[tuple] = []  # (prefix, callback)
        #: Lease deadlines (absolute clock times) for leased keys.
        self._deadlines: typing.Dict[str, float] = {}
        #: Leases revoked by force_expire; keep_alive cannot revive them.
        self._revoked: typing.Set[str] = set()
        self._outage_ops = 0
        self._outage_windows: typing.Tuple[typing.Tuple[float, float], ...] = ()

    # -- fault injection -------------------------------------------------------

    def fail_next(self, count: int) -> None:
        """Make the next ``count`` operations raise StoreUnavailable."""
        with self._lock:
            self._outage_ops = max(0, int(count))

    def set_outages(
        self, windows: typing.Sequence[typing.Tuple[float, float]]
    ) -> None:
        """Fail every operation whose clock time falls in a window."""
        with self._lock:
            self._outage_windows = tuple(
                (float(start), float(end)) for start, end in windows
            )

    def _check_available(self) -> None:
        # Caller holds the lock.
        if self._outage_ops > 0:
            self._outage_ops -= 1
            raise StoreUnavailable("injected op-count outage")
        if self._outage_windows:
            now = self.clock()
            for start, end in self._outage_windows:
                if start <= now < end:
                    raise StoreUnavailable(
                        f"injected outage window [{start}, {end}) at {now}"
                    )

    # -- core operations -------------------------------------------------------

    def put(self, key: str, value: object) -> int:
        """Store ``value``; returns the new version (monotone per key)."""
        with self._lock:
            self._check_available()
            new_version = self._versions.get(key, 0) + 1
            self._versions[key] = new_version
            self._data[key] = value
            watchers = self._watchers_of(key)
        for callback in watchers:
            callback(key, value, new_version)
        return new_version

    def get(self, key: str, default: object = None) -> object:
        """Current value of ``key`` (or ``default``)."""
        with self._lock:
            self._check_available()
            return self._data.get(key, default)

    def version(self, key: str) -> int:
        """Current version of ``key`` (0 if never written)."""
        with self._lock:
            return self._versions.get(key, 0)

    def compare_and_swap(
        self, key: str, expected_version: int, value: object
    ) -> int:
        """Atomically update ``key`` iff its version matches.

        Raises :class:`CasConflict` on mismatch — callers (a recovering AM
        replica) must re-read and retry.  Because versions are monotone
        across deletes, a CAS taken before a delete + re-put can never
        sneak through.
        """
        with self._lock:
            self._check_available()
            version = self._versions.get(key, 0)
            if version != expected_version:
                raise CasConflict(
                    f"{key!r}: expected version {expected_version}, found {version}"
                )
            new_version = version + 1
            self._versions[key] = new_version
            self._data[key] = value
            watchers = self._watchers_of(key)
        for callback in watchers:
            callback(key, value, new_version)
        return new_version

    def delete(self, key: str) -> bool:
        """Remove ``key``; True if it existed.

        The key's version is bumped (not reset) and watchers are notified
        with :data:`TOMBSTONE`, so observers can distinguish deletion from
        silence and stale CAS attempts keep failing after a re-put.
        """
        with self._lock:
            self._check_available()
            existed = key in self._data
            if not existed:
                return False
            del self._data[key]
            self._deadlines.pop(key, None)
            self._revoked.discard(key)
            new_version = self._versions.get(key, 0) + 1
            self._versions[key] = new_version
            watchers = self._watchers_of(key)
        for callback in watchers:
            callback(key, TOMBSTONE, new_version)
        return True

    def _watchers_of(self, key: str) -> "list":
        return [cb for prefix, cb in self._watches if key.startswith(prefix)]

    def watch(
        self, prefix: str, callback: typing.Callable[[str, object, int], None]
    ) -> typing.Callable[[], None]:
        """Register a callback for puts/deletes under ``prefix``.

        Deletions deliver :data:`TOMBSTONE` as the value.  Returns a
        canceller.
        """
        entry = (prefix, callback)
        with self._lock:
            self._watches.append(entry)

        def cancel() -> None:
            with self._lock:
                if entry in self._watches:
                    self._watches.remove(entry)

        return cancel

    def keys(self, prefix: str = "") -> "list[str]":
        """All live keys under ``prefix``, sorted."""
        with self._lock:
            self._check_available()
            return sorted(k for k in self._data if k.startswith(prefix))

    # -- leases (heartbeat substrate for failure detection) --------------------

    def lease(self, key: str, value: object, ttl: float) -> int:
        """Put ``key`` with a TTL; it is considered dead once the deadline
        passes without a :meth:`keep_alive`.  Returns the new version.

        Re-leasing an expired (but not revoked) key revives it — the
        holder came back before the supervisor acted.
        """
        if ttl <= 0:
            raise ValueError(f"ttl must be > 0, got {ttl}")
        with self._lock:
            self._check_available()
            if key in self._revoked:
                raise LeaseRevoked(
                    f"lease {key!r} was revoked; delete it before re-leasing"
                )
            new_version = self._versions.get(key, 0) + 1
            self._versions[key] = new_version
            self._data[key] = value
            self._deadlines[key] = self.clock() + ttl
            watchers = self._watchers_of(key)
        for callback in watchers:
            callback(key, value, new_version)
        return new_version

    def keep_alive(self, key: str, ttl: float) -> bool:
        """Refresh ``key``'s lease deadline; the heartbeat.

        Returns False — without reviving anything — if the key holds no
        lease or the lease was forcibly revoked (the holder has been
        fenced out and must stop).
        """
        if ttl <= 0:
            raise ValueError(f"ttl must be > 0, got {ttl}")
        with self._lock:
            self._check_available()
            if key not in self._deadlines or key in self._revoked:
                return False
            self._deadlines[key] = self.clock() + ttl
            return True

    def lease_deadline(self, key: str) -> "float | None":
        """Absolute expiry time of ``key``'s lease (None if unleased)."""
        with self._lock:
            return self._deadlines.get(key)

    def lease_revoked(self, key: str) -> bool:
        """True if ``key``'s lease was forcibly revoked (fenced out)."""
        with self._lock:
            return key in self._revoked

    def expired_keys(self, prefix: str = "") -> "list[str]":
        """Leased keys under ``prefix`` whose deadline has passed, sorted.

        Expired keys stay readable until a supervisor reaps them with
        :meth:`delete` — detection and reaction are separate steps.
        """
        with self._lock:
            self._check_available()
            now = self.clock()
            return sorted(
                key
                for key, deadline in self._deadlines.items()
                if key.startswith(prefix) and deadline <= now
            )

    def force_expire(self, key: str, at: "float | None" = None) -> None:
        """Revoke ``key``'s lease (fault injection / administrative fence).

        The deadline is moved to ``at`` (default: now) and subsequent
        :meth:`keep_alive` calls fail, so the holder cannot revive it.
        """
        with self._lock:
            if key not in self._deadlines:
                return
            self._deadlines[key] = self.clock() if at is None else float(at)
            self._revoked.add(key)


class RetryingStore:
    """A store proxy that rides out outages with bounded backoff.

    Wraps any :class:`KeyValueStore` and retries operations that raise
    :class:`StoreUnavailable`, sleeping between attempts through the
    backoff's injectable sleeper.  Exhausting the attempt budget
    re-raises — degradation is bounded, not silent.
    """

    def __init__(
        self,
        store: KeyValueStore,
        max_attempts: int = 8,
        backoff: "ExponentialBackoff | None" = None,
    ):
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        self.store = store
        self.max_attempts = max_attempts
        self.backoff = backoff or ExponentialBackoff()
        self.retries = 0

    @property
    def clock(self) -> typing.Callable[[], float]:
        """The underlying store's clock."""
        return self.store.clock

    def _retry(self, operation: typing.Callable[[], typing.Any]) -> typing.Any:
        for attempt in range(self.max_attempts):
            try:
                return operation()
            except StoreUnavailable:
                if attempt + 1 >= self.max_attempts:
                    raise
                self.retries += 1
                self.backoff.wait(attempt)
        raise AssertionError("unreachable")  # pragma: no cover

    def put(self, key: str, value: object) -> int:
        return self._retry(lambda: self.store.put(key, value))

    def get(self, key: str, default: object = None) -> object:
        return self._retry(lambda: self.store.get(key, default))

    def version(self, key: str) -> int:
        return self.store.version(key)

    def compare_and_swap(
        self, key: str, expected_version: int, value: object
    ) -> int:
        return self._retry(
            lambda: self.store.compare_and_swap(key, expected_version, value)
        )

    def delete(self, key: str) -> bool:
        return self._retry(lambda: self.store.delete(key))

    def watch(self, prefix, callback):
        return self.store.watch(prefix, callback)

    def keys(self, prefix: str = "") -> "list[str]":
        return self._retry(lambda: self.store.keys(prefix))

    def lease(self, key: str, value: object, ttl: float) -> int:
        return self._retry(lambda: self.store.lease(key, value, ttl))

    def keep_alive(self, key: str, ttl: float) -> bool:
        return self._retry(lambda: self.store.keep_alive(key, ttl))

    def lease_deadline(self, key: str) -> "float | None":
        return self.store.lease_deadline(key)

    def lease_revoked(self, key: str) -> bool:
        return self.store.lease_revoked(key)

    def expired_keys(self, prefix: str = "") -> "list[str]":
        return self._retry(lambda: self.store.expired_keys(prefix))

    def force_expire(self, key: str, at: "float | None" = None) -> None:
        self.store.force_expire(key, at)
