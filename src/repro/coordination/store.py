"""A versioned key-value store with watches — the etcd stand-in (§V-D).

The paper deploys Elan on Kubernetes and persists the application master's
state machine on etcd.  This in-memory store provides the subset of etcd
semantics that requires: versioned puts, compare-and-swap, and watch
callbacks, so AM fail-over can be implemented and tested faithfully.
"""

from __future__ import annotations

import threading
import typing


class CasConflict(Exception):
    """Raised when a compare-and-swap loses a race."""


class KeyValueStore:
    """Thread-safe versioned KV store with prefix watches."""

    def __init__(self):
        self._lock = threading.Lock()
        self._data: typing.Dict[str, tuple] = {}  # key -> (value, version)
        self._watches: typing.List[tuple] = []  # (prefix, callback)

    def put(self, key: str, value: object) -> int:
        """Store ``value``; returns the new version (monotone per key)."""
        with self._lock:
            _old, version = self._data.get(key, (None, 0))
            new_version = version + 1
            self._data[key] = (value, new_version)
            watchers = [cb for prefix, cb in self._watches if key.startswith(prefix)]
        for callback in watchers:
            callback(key, value, new_version)
        return new_version

    def get(self, key: str, default: object = None) -> object:
        """Current value of ``key`` (or ``default``)."""
        with self._lock:
            value, _version = self._data.get(key, (default, 0))
            return value

    def version(self, key: str) -> int:
        """Current version of ``key`` (0 if absent)."""
        with self._lock:
            _value, version = self._data.get(key, (None, 0))
            return version

    def compare_and_swap(
        self, key: str, expected_version: int, value: object
    ) -> int:
        """Atomically update ``key`` iff its version matches.

        Raises :class:`CasConflict` on mismatch — callers (a recovering AM
        replica) must re-read and retry.
        """
        with self._lock:
            _old, version = self._data.get(key, (None, 0))
            if version != expected_version:
                raise CasConflict(
                    f"{key!r}: expected version {expected_version}, found {version}"
                )
            new_version = version + 1
            self._data[key] = (value, new_version)
            watchers = [cb for prefix, cb in self._watches if key.startswith(prefix)]
        for callback in watchers:
            callback(key, value, new_version)
        return new_version

    def delete(self, key: str) -> bool:
        """Remove ``key``; True if it existed."""
        with self._lock:
            return self._data.pop(key, None) is not None

    def watch(
        self, prefix: str, callback: typing.Callable[[str, object, int], None]
    ) -> typing.Callable[[], None]:
        """Register a callback for puts under ``prefix``; returns a canceller."""
        entry = (prefix, callback)
        with self._lock:
            self._watches.append(entry)

        def cancel() -> None:
            with self._lock:
                if entry in self._watches:
                    self._watches.remove(entry)

        return cancel

    def keys(self, prefix: str = "") -> "list[str]":
        """All keys under ``prefix``, sorted."""
        with self._lock:
            return sorted(k for k in self._data if k.startswith(prefix))
