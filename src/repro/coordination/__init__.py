"""Elan's control plane: AM, protocol, store, hooks, live runtime (§II, §V)."""

from .collective import Collective, CollectiveAborted
from .dessim import SimulatedAdjustment, SimulatedElasticJob
from .faults import ExponentialBackoff, FaultPlan, LeaseExpired, SilentCrash
from .hooks import Hook, HookRegistry
from .master import (
    AdjustmentKind,
    AdjustmentRequest,
    ApplicationMaster,
    Directive,
    DirectiveKind,
    MasterState,
    StaleEpochError,
)
from .messages import (
    DeduplicatingInbox,
    FaultyChannel,
    Message,
    MessageFactory,
    MessageType,
    ReliableSender,
)
from .ring import RingCollective, flatten_params, unflatten_params
from .runtime import (
    ElasticRuntime,
    GroupPlan,
    WorkerContext,
    params_consistent,
)
from .store import (
    TOMBSTONE,
    CasConflict,
    KeyValueStore,
    LeaseRevoked,
    RetryingStore,
    StoreUnavailable,
)
from .telemetry import RuntimeTelemetry, TelemetryEvent

__all__ = [
    "AdjustmentKind",
    "AdjustmentRequest",
    "ApplicationMaster",
    "CasConflict",
    "Collective",
    "CollectiveAborted",
    "DeduplicatingInbox",
    "Directive",
    "DirectiveKind",
    "ElasticRuntime",
    "ExponentialBackoff",
    "FaultPlan",
    "FaultyChannel",
    "GroupPlan",
    "Hook",
    "HookRegistry",
    "KeyValueStore",
    "LeaseExpired",
    "LeaseRevoked",
    "MasterState",
    "Message",
    "RetryingStore",
    "RingCollective",
    "RuntimeTelemetry",
    "SilentCrash",
    "SimulatedAdjustment",
    "SimulatedElasticJob",
    "StaleEpochError",
    "StoreUnavailable",
    "TelemetryEvent",
    "TOMBSTONE",
    "MessageFactory",
    "MessageType",
    "ReliableSender",
    "WorkerContext",
    "flatten_params",
    "params_consistent",
    "unflatten_params",
]
