"""Elan's control plane: AM, protocol, store, hooks, live runtime (§II, §V)."""

from .collective import Collective, CollectiveAborted
from .dessim import SimulatedAdjustment, SimulatedElasticJob
from .hooks import Hook, HookRegistry
from .master import (
    AdjustmentKind,
    AdjustmentRequest,
    ApplicationMaster,
    Directive,
    DirectiveKind,
    MasterState,
)
from .messages import (
    DeduplicatingInbox,
    FaultyChannel,
    Message,
    MessageFactory,
    MessageType,
    ReliableSender,
)
from .ring import RingCollective, flatten_params, unflatten_params
from .runtime import (
    ElasticRuntime,
    GroupPlan,
    WorkerContext,
    params_consistent,
)
from .store import CasConflict, KeyValueStore
from .telemetry import RuntimeTelemetry, TelemetryEvent

__all__ = [
    "AdjustmentKind",
    "AdjustmentRequest",
    "ApplicationMaster",
    "CasConflict",
    "Collective",
    "CollectiveAborted",
    "DeduplicatingInbox",
    "Directive",
    "DirectiveKind",
    "ElasticRuntime",
    "FaultyChannel",
    "GroupPlan",
    "Hook",
    "HookRegistry",
    "KeyValueStore",
    "MasterState",
    "Message",
    "RingCollective",
    "RuntimeTelemetry",
    "SimulatedAdjustment",
    "SimulatedElasticJob",
    "TelemetryEvent",
    "MessageFactory",
    "MessageType",
    "ReliableSender",
    "WorkerContext",
    "flatten_params",
    "params_consistent",
    "unflatten_params",
]
