"""Deterministic fault injection and degradation primitives.

The supervision layer (leases, fencing, automatic recovery) is only
credible if the failure matrix it defends against is drivable from
tests.  A :class:`FaultPlan` declares, up front and deterministically,
every fault one run should suffer — worker crashes (loud or silent),
control-plane message loss, forced lease expiries, store outages,
replication transfer failures, an AM crash — and is threaded through the
live runtime, the discrete-event simulator and the replication executor
so all three harnesses replay the same scenario.

:class:`ExponentialBackoff` is the shared degradation policy: bounded
exponential delays with an injectable sleeper, so retry loops are
testable without wall-clock sleeps.
"""

from __future__ import annotations

import dataclasses
import time
import typing

from .messages import FaultyChannel, Message


class LeaseExpired(RuntimeError):
    """Recorded as a worker's cause of death when its lease lapses.

    Raised nowhere: the supervisor *assigns* it to a worker whose
    heartbeat stopped (crash, hang, or forced expiry) so the recovery
    path treats lease-detected deaths exactly like loud crashes.
    """


class SilentCrash(BaseException):
    """Kills a worker thread without tripping the failure handler.

    Models a ``kill -9``/machine loss: the thread vanishes without
    recording its own death or aborting the collective, so the *only*
    way the system can notice is the lease expiring.  Derives from
    ``BaseException`` on purpose — the runtime's crash handler catches
    ``Exception``-like failures loudly; this must slip past it.
    """


class ExponentialBackoff:
    """Bounded exponential backoff with an injectable sleeper.

    ``delay(attempt)`` is pure (``base * factor**attempt``, capped at
    ``max_delay``); ``wait(attempt)`` additionally sleeps through the
    injected ``sleeper`` and keeps totals for assertions.
    """

    def __init__(
        self,
        base: float = 0.001,
        factor: float = 2.0,
        max_delay: float = 0.1,
        sleeper: typing.Callable[[float], None] = time.sleep,
    ):
        if base <= 0 or factor < 1 or max_delay < base:
            raise ValueError("need base > 0, factor >= 1, max_delay >= base")
        self.base = base
        self.factor = factor
        self.max_delay = max_delay
        self.sleeper = sleeper
        self.waits = 0
        self.total_delay = 0.0

    def delay(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (0-based), bounded."""
        return min(self.max_delay, self.base * self.factor ** max(0, attempt))

    def wait(self, attempt: int) -> float:
        """Sleep out the delay for ``attempt``; returns the delay used."""
        delay = self.delay(attempt)
        self.waits += 1
        self.total_delay += delay
        self.sleeper(delay)
        return delay


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """One run's complete, deterministic failure schedule.

    Every field is optional; an empty plan injects nothing.  Times are
    on the clock of whichever harness consumes the plan (wall clock for
    the live runtime, simulated seconds for dessim).
    """

    #: worker id -> iteration at which its thread raises (a loud crash).
    worker_crashes: typing.Mapping[str, int] = dataclasses.field(
        default_factory=dict
    )
    #: worker id -> iteration at which its thread vanishes without a
    #: trace (detectable only by lease expiry).
    silent_crashes: typing.Mapping[str, int] = dataclasses.field(
        default_factory=dict
    )
    #: drop each n-th control-plane message (0 = lossless).
    drop_every: int = 0
    #: deliver each n-th control-plane message twice (0 = no dupes).
    duplicate_every: int = 0
    #: send index (1-based) -> extra seconds of delivery latency injected
    #: before that send (network-transport plans only).
    net_delays: typing.Mapping[int, float] = dataclasses.field(
        default_factory=dict
    )
    #: send indices (1-based) at which the connection is reset *before*
    #: the send: the message is lost with the connection and the
    #: transport must reconnect (backoff + handshake) before any further
    #: traffic flows.  Consumed by both transports in :mod:`repro.net`,
    #: so chaos tests behave identically in memory and over TCP.
    connection_resets: typing.Tuple[int, ...] = ()
    #: lease key -> time at which it is forcibly revoked (fencing a
    #: worker out even though it is healthy).
    lease_expiries: typing.Mapping[str, float] = dataclasses.field(
        default_factory=dict
    )
    #: make the next n store operations raise ``StoreUnavailable``
    #: (an op-count outage: deterministic, clock-free).
    store_outage_ops: int = 0
    #: (start, end) clock windows during which every store op fails.
    store_outages: typing.Tuple[typing.Tuple[float, float], ...] = ()
    #: replication transfer index (plan order) -> how many times it
    #: fails before succeeding.
    transfer_failures: typing.Mapping[int, int] = dataclasses.field(
        default_factory=dict
    )
    #: crash and recover the AM once training reaches this iteration.
    am_crash_iteration: "int | None" = None

    # -- construction helpers -------------------------------------------------

    @classmethod
    def for_link(
        cls,
        drop_every: int = 0,
        duplicate_every: int = 0,
        resets: typing.Sequence[int] = (),
    ) -> "FaultPlan | None":
        """A per-link plan from CLI-style knobs, or None if fault-free.

        Used for both the AM control link and the ring data-plane peer
        links, so the two planes inject chaos through one code path.
        """
        if not (drop_every or duplicate_every or resets):
            return None
        return cls(
            drop_every=drop_every,
            duplicate_every=duplicate_every,
            connection_resets=tuple(resets),
        )

    # -- consumption helpers --------------------------------------------------

    def crash_iteration(self, worker_id: str) -> "int | None":
        """Iteration of the worker's loud crash, if one is scheduled."""
        return self.worker_crashes.get(worker_id)

    def silent_crash_iteration(self, worker_id: str) -> "int | None":
        """Iteration of the worker's silent crash, if one is scheduled."""
        return self.silent_crashes.get(worker_id)

    def crashes_by(self, worker_id: str, iteration: int) -> bool:
        """True once ``worker_id`` should be dead (loud or silent)."""
        for schedule in (self.worker_crashes, self.silent_crashes):
            at = schedule.get(worker_id)
            if at is not None and iteration >= at:
                return True
        return False

    def channel(
        self, deliver: typing.Callable[[Message], None]
    ) -> FaultyChannel:
        """A control-plane channel afflicted with this plan's loss/dupes."""
        return FaultyChannel(
            deliver,
            drop_every=self.drop_every,
            duplicate_every=self.duplicate_every,
        )

    @property
    def has_transport_faults(self) -> bool:
        """True if any network-transport fault is scheduled."""
        return bool(
            self.drop_every
            or self.duplicate_every
            or self.net_delays
            or self.connection_resets
        )

    def due_lease_expiries(self, now: float) -> "list[str]":
        """Lease keys whose forced expiry time has been reached."""
        return [key for key, when in self.lease_expiries.items() if now >= when]

    def transfer_failure_count(self, index: int) -> int:
        """How many times replication transfer ``index`` must fail."""
        return int(self.transfer_failures.get(index, 0))
