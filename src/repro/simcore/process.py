"""Simulation processes: generators driven by the event kernel."""

from __future__ import annotations

import typing

from .events import Event, Interrupt

if typing.TYPE_CHECKING:  # pragma: no cover
    from .simulator import Simulator


class Process(Event):
    """A running simulation process.

    A process wraps a generator.  Each value the generator yields must be an
    :class:`~repro.simcore.events.Event`; the process sleeps until that event
    triggers and is then resumed with the event's value.  A process is itself
    an event that triggers when the generator returns, so processes can wait
    for each other (``yield other_process``).
    """

    def __init__(self, sim: "Simulator", generator: typing.Generator, name: str = ""):
        super().__init__(sim)
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"Process requires a generator, got {generator!r}")
        self.name = name or getattr(generator, "__name__", "process")
        self._generator = generator
        self._waiting_on: Event | None = None
        # Bootstrap: resume the process at the current simulation time.
        init = Event(sim)
        init.callbacks.append(self._resume)
        init.succeed()

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self._triggered

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The event the process was waiting on is abandoned (its callback is
        removed); the process decides in its ``except Interrupt`` handler how
        to proceed.  Interrupting a dead process raises ``RuntimeError``.
        """
        if not self.is_alive:
            raise RuntimeError(f"cannot interrupt dead process {self.name!r}")
        if self._waiting_on is not None:
            try:
                self._waiting_on.callbacks.remove(self._resume)
            except ValueError:
                pass
            self._waiting_on = None
        wakeup = Event(self.sim)
        wakeup.callbacks.append(
            lambda _ev: self._step(throw=Interrupt(cause))
        )
        wakeup.succeed()

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event.ok:
            self._step(send=event._value)
        else:
            self._step(throw=event._exception)

    def _step(self, send: object = None, throw: BaseException | None = None) -> None:
        if not self.is_alive:
            return
        self.sim._active_process = self
        try:
            if throw is not None:
                target = self._generator.throw(throw)
            else:
                target = self._generator.send(send)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            self.fail(exc)
            return
        finally:
            self.sim._active_process = None
        if not isinstance(target, Event):
            self._step(
                throw=TypeError(
                    f"process {self.name!r} yielded non-event {target!r}"
                )
            )
            return
        if target.processed:
            # The event already happened; resume immediately (same time).
            wakeup = Event(self.sim)
            wakeup.callbacks.append(lambda _ev: self._resume(target))
            wakeup.succeed()
        else:
            self._waiting_on = target
            target.callbacks.append(self._resume)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "alive" if self.is_alive else "done"
        return f"<Process {self.name!r} {status}>"
