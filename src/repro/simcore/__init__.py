"""Discrete-event simulation kernel.

A minimal, fully tested SimPy-style kernel: generator processes, an event
heap, interrupts, condition events, and shared-resource primitives.  Every
timed experiment in the Elan reproduction runs on this kernel.
"""

from .events import Condition, Event, EventPending, Interrupt, Timeout, all_of, any_of
from .process import Process
from .resources import Container, Request, Resource, Store
from .simulator import Simulator

__all__ = [
    "Condition",
    "Container",
    "Event",
    "EventPending",
    "Interrupt",
    "Process",
    "Request",
    "Resource",
    "Simulator",
    "Store",
    "Timeout",
    "all_of",
    "any_of",
]
