"""The discrete-event simulation kernel.

:class:`Simulator` owns the simulated clock and the event heap.  All timed
experiments in this repository — adjustment-latency measurements, scheduler
runs, replication timelines — execute on this kernel.
"""

from __future__ import annotations

import heapq
import itertools
import typing

from .events import Event, Timeout, all_of, any_of
from .process import Process


class Simulator:
    """A discrete-event simulator with a monotonically advancing clock."""

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: list = []
        self._counter = itertools.count()  # tie-break for equal timestamps
        self._active_process: Process | None = None

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently being stepped, if any."""
        return self._active_process

    # -- event factories ---------------------------------------------------

    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """Create an event that triggers ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: typing.Generator, name: str = "") -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: typing.Sequence[Event]) -> Event:
        """Event triggering once every event in ``events`` has triggered."""
        return all_of(self, events)

    def any_of(self, events: typing.Sequence[Event]) -> Event:
        """Event triggering once any event in ``events`` has triggered."""
        return any_of(self, events)

    # -- scheduling and execution ------------------------------------------

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        heapq.heappush(self._heap, (self._now + delay, next(self._counter), event))

    def step(self) -> None:
        """Process the single next event in the queue."""
        when, _tie, event = heapq.heappop(self._heap)
        if when < self._now:  # pragma: no cover - kernel invariant
            raise RuntimeError("event scheduled in the past")
        self._now = when
        callbacks, event.callbacks = event.callbacks, []
        event._mark_processed()
        for callback in callbacks:
            callback(event)

    def run(self, until: "float | Event | None" = None) -> object:
        """Run the simulation.

        * ``until`` is ``None`` — run until no events remain.
        * ``until`` is a number — run until the clock reaches that time.
        * ``until`` is an event — run until that event is processed and
          return its value (raising its exception if it failed).
        """
        if until is None:
            while self._heap:
                self.step()
            return None
        if isinstance(until, Event):
            target = until
            while self._heap and not target.processed:
                self.step()
            if not target.triggered:
                raise RuntimeError(
                    "simulation ran out of events before `until` triggered"
                )
            return target.value
        horizon = float(until)
        if horizon < self._now:
            raise ValueError(f"cannot run until {horizon} < now {self._now}")
        while self._heap and self._heap[0][0] <= horizon:
            self.step()
        self._now = horizon
        return None

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        return self._heap[0][0] if self._heap else float("inf")
