"""Shared-resource primitives for simulation processes.

Provides the three primitives the Elan reproduction needs:

* :class:`Resource` — a counted semaphore with FIFO or priority queuing
  (GPUs in the scheduler, serialized links in the replication executor);
* :class:`Store` — an unbounded FIFO message channel (AM mailboxes);
* :class:`Container` — a continuous-quantity pool (bandwidth accounting).
"""

from __future__ import annotations

import collections
import itertools
import typing

from .events import Event

if typing.TYPE_CHECKING:  # pragma: no cover
    from .simulator import Simulator


class Request(Event):
    """A pending claim on a :class:`Resource`; triggers when granted.

    Usable as a context manager inside a process::

        with resource.request() as req:
            yield req
            ...  # critical section
    """

    def __init__(self, resource: "Resource", priority: float = 0.0):
        super().__init__(resource.sim)
        self.resource = resource
        self.priority = priority

    def __enter__(self) -> "Request":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.resource.release(self)


class Resource:
    """A counted resource with ``capacity`` slots.

    Requests are granted in priority order (lower value first), FIFO within
    a priority level.
    """

    def __init__(self, sim: "Simulator", capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._users: set = set()
        self._queue: list = []
        self._tiebreak = itertools.count()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queued(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._queue)

    def request(self, priority: float = 0.0) -> Request:
        """Claim a slot; the returned event triggers once granted."""
        req = Request(self, priority)
        import heapq

        heapq.heappush(self._queue, (priority, next(self._tiebreak), req))
        self._grant()
        return req

    def release(self, request: Request) -> None:
        """Return a slot previously granted to ``request``.

        Releasing a never-granted (still queued) request cancels it.
        """
        if request in self._users:
            self._users.remove(request)
        else:
            self._queue = [
                entry for entry in self._queue if entry[2] is not request
            ]
            import heapq

            heapq.heapify(self._queue)
        self._grant()

    def _grant(self) -> None:
        import heapq

        while self._queue and len(self._users) < self.capacity:
            _prio, _tie, req = heapq.heappop(self._queue)
            self._users.add(req)
            req.succeed(req)


class Store:
    """An unbounded FIFO channel of items between processes."""

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self._items: collections.deque = collections.deque()
        self._getters: collections.deque = collections.deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: object) -> None:
        """Deposit an item, waking the oldest waiting getter if any."""
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:
                getter.succeed(item)
                return
        self._items.append(item)

    def get(self) -> Event:
        """Return an event that triggers with the next available item."""
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event


class Container:
    """A pool of continuous quantity with blocking ``get``.

    ``put`` adds quantity immediately; ``get(amount)`` returns an event that
    triggers once the pool holds at least ``amount``.  Pending gets are
    served FIFO.
    """

    def __init__(self, sim: "Simulator", init: float = 0.0, capacity: float = float("inf")):
        if init < 0 or init > capacity:
            raise ValueError(f"init {init} outside [0, {capacity}]")
        self.sim = sim
        self.capacity = capacity
        self._level = float(init)
        self._getters: collections.deque = collections.deque()

    @property
    def level(self) -> float:
        """Quantity currently in the pool."""
        return self._level

    def put(self, amount: float) -> None:
        """Add ``amount`` to the pool (clamped at capacity)."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        self._level = min(self.capacity, self._level + amount)
        self._drain()

    def get(self, amount: float) -> Event:
        """Event that triggers once ``amount`` can be withdrawn."""
        if amount < 0:
            raise ValueError("amount must be non-negative")
        event = Event(self.sim)
        self._getters.append((amount, event))
        self._drain()
        return event

    def _drain(self) -> None:
        while self._getters and self._getters[0][0] <= self._level:
            amount, event = self._getters.popleft()
            self._level -= amount
            event.succeed(amount)
