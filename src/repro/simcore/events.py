"""Event primitives for the discrete-event simulation kernel.

The kernel is generator-based: simulation *processes* are Python generators
that ``yield`` :class:`Event` objects.  Yielding an event suspends the
process until the event is *triggered*, at which point the kernel resumes the
generator, sending the event's value in (or throwing its exception).

This mirrors the SimPy programming model but is implemented from scratch so
that the repository is self-contained and the semantics needed by the Elan
reproduction (interrupts, condition events, priority resources) are explicit
and tested.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .simulator import Simulator


class EventPending(Exception):
    """Raised when the value of an untriggered event is accessed."""


class Interrupt(Exception):
    """Thrown into a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`repro.simcore.process.Process.interrupt`.
    """

    def __init__(self, cause: object = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A happening at a point in simulated time.

    An event moves through three states:

    * *pending* — created, not yet scheduled;
    * *triggered* — given a value (or exception) and queued for processing;
    * *processed* — its callbacks have run and waiting processes resumed.
    """

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: list = []
        self._value: object = None
        self._exception: BaseException | None = None
        self._triggered = False
        self._processed = False

    @property
    def triggered(self) -> bool:
        """Whether the event has been given a value or exception."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """Whether the event's callbacks have already run."""
        return self._processed

    @property
    def ok(self) -> bool:
        """True if the event triggered successfully (no exception)."""
        return self._triggered and self._exception is None

    @property
    def value(self) -> object:
        """The event's value; raises :class:`EventPending` if untriggered."""
        if not self._triggered:
            raise EventPending(f"{self!r} has not been triggered")
        if self._exception is not None:
            raise self._exception
        return self._value

    def succeed(self, value: object = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._triggered:
            raise RuntimeError(f"{self!r} already triggered")
        self._triggered = True
        self._value = value
        self.sim._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to throw into waiters."""
        if self._triggered:
            raise RuntimeError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._exception = exception
        self.sim._schedule(self)
        return self

    def _mark_processed(self) -> None:
        self._processed = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = (
            "processed"
            if self._processed
            else "triggered" if self._triggered else "pending"
        )
        return f"<{type(self).__name__} {state} at {hex(id(self))}>"


class Timeout(Event):
    """An event that triggers ``delay`` time units after its creation."""

    def __init__(self, sim: "Simulator", delay: float, value: object = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(sim)
        self.delay = delay
        self._triggered = True
        self._value = value
        sim._schedule(self, delay=delay)


class Condition(Event):
    """An event that triggers when a quorum of child events have triggered.

    Used through the :func:`all_of` and :func:`any_of` helpers.  The value of
    a condition is a dict mapping each triggered child event to its value.
    """

    def __init__(self, sim: "Simulator", events: typing.Sequence[Event], count: int):
        super().__init__(sim)
        self.events = list(events)
        if count > len(self.events):
            raise ValueError(
                f"need {count} of {len(self.events)} events; impossible"
            )
        self._needed = count
        self._done = 0
        if count == 0 or not self.events:
            self.succeed({})
            return
        for event in self.events:
            if event.processed:
                self._on_child(event)
            else:
                event.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self._triggered:
            return
        if not event.ok:
            self.fail(event._exception)  # propagate the first failure
            return
        self._done += 1
        if self._done >= self._needed:
            self.succeed(
                {ev: ev._value for ev in self.events if ev.ok}
            )


def all_of(sim: "Simulator", events: typing.Sequence[Event]) -> Condition:
    """Return an event that triggers once *all* ``events`` have triggered."""
    return Condition(sim, events, len(list(events)))


def any_of(sim: "Simulator", events: typing.Sequence[Event]) -> Condition:
    """Return an event that triggers once *any* of ``events`` has triggered."""
    events = list(events)
    return Condition(sim, events, 1 if events else 0)
