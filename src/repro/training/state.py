"""The training state Elan replicates (paper Table II, Fig. 7).

Data-parallel training is a stateful iterative process; its full state is:

====================  ========  =====================================
component             device    size character
====================  ========  =====================================
model parameters      GPU       large (up to GBs; e.g. BERT > 1 GB)
optimizer state       GPU       large (momentum/Adam buffers)
data-loading state    CPU       small (one integer under serial
                                semantics; a record table otherwise)
communication group   CPU       small (member list)
runtime info          CPU       tiny (epoch, iteration, lr, batch)
====================  ========  =====================================

Every existing worker holds one identical copy of the whole state — the
fact the concurrent replication mechanism exploits (§IV-1).
"""

from __future__ import annotations

import dataclasses
import pickle
import typing

import numpy as np

from .nn import Params, clone_params, param_bytes


@dataclasses.dataclass
class RuntimeInfo:
    """Scalar bookkeeping that must survive an adjustment.

    The four ``ramp_*`` fields describe an in-flight progressive linear
    scaling ramp (paper Eq. 3); with the defaults the learning rate is
    constant at ``learning_rate``.
    """

    epoch: int = 0
    iteration: int = 0
    learning_rate: float = 0.1
    total_batch_size: int = 32
    ramp_start: int = -1
    ramp_length: int = 0
    ramp_base_lr: float = 0.0
    ramp_target_lr: float = 0.0

    def to_dict(self) -> dict:
        """Plain-dict form for serialization."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RuntimeInfo":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)


@dataclasses.dataclass
class TrainingState:
    """One worker's complete replica of the job state."""

    model: Params
    optimizer: dict
    loader: dict
    comm_group: typing.List[str]
    runtime: RuntimeInfo

    def clone(self) -> "TrainingState":
        """Deep copy — what a state replication produces on the new worker."""
        return TrainingState(
            model=clone_params(self.model),
            optimizer=pickle.loads(pickle.dumps(self.optimizer)),
            loader=dict(self.loader),
            comm_group=list(self.comm_group),
            runtime=RuntimeInfo.from_dict(self.runtime.to_dict()),
        )

    # -- size accounting (drives the replication cost model) -----------------

    def gpu_bytes(self) -> int:
        """Bytes resident on the GPU: parameters + optimizer buffers."""
        opt_bytes = sum(
            v.nbytes
            for v in self.optimizer.get("velocity", {}).values()
            if isinstance(v, np.ndarray)
        )
        return param_bytes(self.model) + opt_bytes

    def cpu_bytes(self) -> int:
        """Bytes resident on the CPU: loader + group + runtime info."""
        return (
            len(pickle.dumps(self.loader))
            + len(pickle.dumps(self.comm_group))
            + len(pickle.dumps(self.runtime.to_dict()))
        )

    def total_bytes(self) -> int:
        """Total replicable state size."""
        return self.gpu_bytes() + self.cpu_bytes()

    def optimizer_bytes(self) -> int:
        """Bytes of the optimizer (velocity) buffers alone."""
        return sum(
            v.nbytes
            for v in self.optimizer.get("velocity", {}).values()
            if isinstance(v, np.ndarray)
        )

    def zero_shard_bytes(self, world: int, rank: int = 0) -> int:
        """Per-worker optimizer bytes under ZeRO-style sharding.

        With the sharded optimizer axis each worker persists only its
        rank's contiguous slice of the flat velocity space, so the
        optimizer contribution to replication traffic drops from
        :meth:`optimizer_bytes` to roughly ``optimizer_bytes / world``
        (remainder elements land on the lowest ranks).
        """
        world = int(world)
        if world < 1:
            raise ValueError(f"world size must be >= 1, got {world}")
        if not 0 <= int(rank) < world:
            raise ValueError(f"rank {rank} outside world of {world}")
        velocity = [
            v for v in self.optimizer.get("velocity", {}).values()
            if isinstance(v, np.ndarray)
        ]
        total = sum(v.size for v in velocity)
        itemsize = velocity[0].itemsize if velocity else 8
        base, extra = divmod(total, world)
        return (base + (1 if int(rank) < extra else 0)) * itemsize

    def replicated_bytes(self, world: int = 1, zero_optimizer: bool = False,
                         rank: int = 0) -> int:
        """What one worker must actually receive at an adjustment."""
        if not zero_optimizer:
            return self.total_bytes()
        return (
            param_bytes(self.model)
            + self.zero_shard_bytes(world, rank)
            + self.cpu_bytes()
        )

    # -- serialization (used by the checkpoint/S&R baseline) -----------------

    def serialize(self) -> bytes:
        """Byte-serialize the full state (what a checkpoint writes)."""
        return pickle.dumps(
            {
                "model": self.model,
                "optimizer": self.optimizer,
                "loader": self.loader,
                "comm_group": self.comm_group,
                "runtime": self.runtime.to_dict(),
            }
        )

    @classmethod
    def deserialize(cls, blob: bytes) -> "TrainingState":
        """Inverse of :meth:`serialize`."""
        data = pickle.loads(blob)
        return cls(
            model=data["model"],
            optimizer=data["optimizer"],
            loader=data["loader"],
            comm_group=data["comm_group"],
            runtime=RuntimeInfo.from_dict(data["runtime"]),
        )

    def equals(self, other: "TrainingState") -> bool:
        """Exact equality of two replicas (data-consistency check)."""
        if set(self.model) != set(other.model):
            return False
        if any(
            not np.array_equal(self.model[k], other.model[k]) for k in self.model
        ):
            return False
        mine = self.optimizer.get("velocity", {})
        theirs = other.optimizer.get("velocity", {})
        if set(mine) != set(theirs):
            return False
        if any(not np.array_equal(mine[k], theirs[k]) for k in mine):
            return False
        return (
            self.loader == other.loader
            and self.comm_group == other.comm_group
            and self.runtime == other.runtime
        )
