"""Training substrate: numpy models, optimizers, loaders, training state.

The real (non-simulated) execution layer of the reproduction: everything
the live elastic runtime trains with, plus the two data-loading semantics
of paper §V-C and the replicable training state of Table II.
"""

from .architectures import (
    Architecture,
    deep_mlp_architecture,
    logistic_regression_architecture,
    mlp_architecture,
)
from .dataloader import ChunkLoader, SerialLoader
from .datasets import Dataset, make_classification
from .nn import (
    Params,
    accuracy,
    average_gradients,
    clone_params,
    forward,
    init_mlp,
    loss_and_gradients,
    param_bytes,
    params_allclose,
    softmax,
)
from .optim import MomentumSGD
from .state import RuntimeInfo, TrainingState
from .trainer import (
    TrainResult,
    progressive_lr,
    train_data_parallel,
    train_single,
)

__all__ = [
    "Architecture",
    "ChunkLoader",
    "Dataset",
    "MomentumSGD",
    "Params",
    "RuntimeInfo",
    "SerialLoader",
    "TrainResult",
    "TrainingState",
    "accuracy",
    "average_gradients",
    "clone_params",
    "deep_mlp_architecture",
    "forward",
    "init_mlp",
    "logistic_regression_architecture",
    "loss_and_gradients",
    "make_classification",
    "mlp_architecture",
    "param_bytes",
    "params_allclose",
    "progressive_lr",
    "softmax",
    "train_data_parallel",
    "train_single",
]
