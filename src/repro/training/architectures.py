"""Pluggable model architectures for the elastic runtime.

The paper demonstrates Elan's generality by integrating it with two
frameworks (Caffe's static engine and PyTorch's dynamic one, §V-A): the
elasticity machinery never looks inside the model, it only captures and
restores state through hooks.  Mirroring that, the live runtime accepts
any :class:`Architecture` — a triple of pure functions (initialize,
loss+gradients, accuracy) over a parameter dict — and ships with three:
the default two-layer MLP, a deeper MLP and plain logistic regression.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy as np

from .nn import Params, accuracy, init_mlp, loss_and_gradients, softmax


@dataclasses.dataclass(frozen=True)
class Architecture:
    """A trainable model as three pure functions over a parameter dict."""

    name: str
    init: typing.Callable[[int], Params]  # seed -> params
    loss_and_gradients: typing.Callable[
        [Params, np.ndarray, np.ndarray], typing.Tuple[float, Params]
    ]
    accuracy: typing.Callable[[Params, np.ndarray, np.ndarray], float]

    def gradient_template(self, seed: int = 0) -> Params:
        """Zero arrays with the parameter shapes (for ring allreduce)."""
        return {k: np.zeros_like(v) for k, v in self.init(seed).items()}


def mlp_architecture(
    input_dim: int, hidden_dim: int, num_classes: int
) -> Architecture:
    """The default 2-layer ReLU MLP."""
    return Architecture(
        name=f"mlp({input_dim}-{hidden_dim}-{num_classes})",
        init=lambda seed: init_mlp(input_dim, hidden_dim, num_classes, seed=seed),
        loss_and_gradients=loss_and_gradients,
        accuracy=accuracy,
    )


def deep_mlp_architecture(
    input_dim: int, hidden_dims: typing.Sequence[int], num_classes: int
) -> Architecture:
    """An MLP with arbitrarily many ReLU hidden layers."""
    dims = [input_dim, *hidden_dims, num_classes]
    if any(d < 1 for d in dims):
        raise ValueError("all layer dimensions must be >= 1")

    def init(seed: int) -> Params:
        rng = np.random.default_rng(seed)
        params: Params = {}
        for layer, (fan_in, fan_out) in enumerate(zip(dims, dims[1:])):
            params[f"w{layer}"] = rng.standard_normal(
                (fan_in, fan_out)
            ) * np.sqrt(2.0 / fan_in)
            params[f"b{layer}"] = np.zeros(fan_out)
        return params

    layers = len(dims) - 1

    def forward(params: Params, x: np.ndarray):
        activations = [x]
        for layer in range(layers):
            z = activations[-1] @ params[f"w{layer}"] + params[f"b{layer}"]
            activations.append(
                z if layer == layers - 1 else np.maximum(0.0, z)
            )
        return activations

    def loss_and_grads(params: Params, x: np.ndarray, y: np.ndarray):
        if len(x) == 0:
            raise ValueError("empty batch")
        activations = forward(params, x)
        probs = softmax(activations[-1])
        batch = len(x)
        loss = float(-np.log(probs[np.arange(batch), y] + 1e-12).mean())
        delta = probs
        delta[np.arange(batch), y] -= 1.0
        delta /= batch
        grads: Params = {}
        for layer in reversed(range(layers)):
            grads[f"w{layer}"] = activations[layer].T @ delta
            grads[f"b{layer}"] = delta.sum(axis=0)
            if layer > 0:
                delta = delta @ params[f"w{layer}"].T
                delta[activations[layer] <= 0.0] = 0.0
        return loss, grads

    def acc(params: Params, x: np.ndarray, y: np.ndarray) -> float:
        return float((forward(params, x)[-1].argmax(axis=1) == y).mean())

    return Architecture(
        name=f"mlp({'-'.join(str(d) for d in dims)})",
        init=init,
        loss_and_gradients=loss_and_grads,
        accuracy=acc,
    )


def logistic_regression_architecture(
    input_dim: int, num_classes: int
) -> Architecture:
    """Multinomial logistic regression — the smallest useful model."""
    if input_dim < 1 or num_classes < 2:
        raise ValueError("need input_dim >= 1 and num_classes >= 2")

    def init(seed: int) -> Params:
        rng = np.random.default_rng(seed)
        return {
            "w": rng.standard_normal((input_dim, num_classes))
            / np.sqrt(input_dim),
            "b": np.zeros(num_classes),
        }

    def loss_and_grads(params: Params, x: np.ndarray, y: np.ndarray):
        if len(x) == 0:
            raise ValueError("empty batch")
        logits = x @ params["w"] + params["b"]
        probs = softmax(logits)
        batch = len(x)
        loss = float(-np.log(probs[np.arange(batch), y] + 1e-12).mean())
        delta = probs
        delta[np.arange(batch), y] -= 1.0
        delta /= batch
        return loss, {"w": x.T @ delta, "b": delta.sum(axis=0)}

    def acc(params: Params, x: np.ndarray, y: np.ndarray) -> float:
        return float(((x @ params["w"] + params["b"]).argmax(axis=1) == y).mean())

    return Architecture(
        name=f"logreg({input_dim}-{num_classes})",
        init=init,
        loss_and_gradients=loss_and_grads,
        accuracy=acc,
    )
