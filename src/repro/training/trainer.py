"""Reference trainers on the numpy substrate.

Two entry points:

* :func:`train_single` — a plain single-process trainer with a pluggable
  learning-rate policy.  Running it across total batch sizes regenerates
  the paper's Fig. 5 from scratch (mechanically, not from the analytic
  convergence model): with a fixed epoch budget, larger batches mean fewer
  optimizer updates and worse generalization; linearly scaled — and
  progressively ramped — learning rates recover it, up to a point.

* :func:`train_data_parallel` — an in-process data-parallel trainer with K
  replicas and gradient averaging, used to verify the core equivalence
  that Elan relies on: K workers with per-worker batch b take *the same
  parameter trajectory* as one worker with batch K*b.
"""

from __future__ import annotations

import dataclasses
import typing

import numpy as np

from .dataloader import SerialLoader
from .datasets import Dataset
from .nn import (
    Params,
    accuracy,
    average_gradients,
    init_mlp,
    loss_and_gradients,
)
from .optim import MomentumSGD


@dataclasses.dataclass(frozen=True)
class TrainResult:
    """Outcome of a training run."""

    params: Params
    test_accuracy: float
    train_accuracy: float
    losses: typing.List[float]
    updates: int

    @property
    def diverged(self) -> bool:
        """Whether the loss blew up (NaN/inf or grew 10x from start)."""
        if not self.losses:
            return False
        last = self.losses[-1]
        return not np.isfinite(last) or last > 10.0 * max(self.losses[0], 1.0)


def progressive_lr(
    base_lr: float, target_lr: float, iteration: int, ramp_iterations: int
) -> float:
    """Paper Eq. 3 with ``T_0 = 0``: linear ramp from base to target."""
    if ramp_iterations <= 0 or iteration >= ramp_iterations:
        return target_lr
    return base_lr + (iteration / ramp_iterations) * (target_lr - base_lr)


def train_single(
    dataset: Dataset,
    total_batch_size: int,
    epochs: int = 30,
    base_lr: float = 0.1,
    base_total_batch: int = 32,
    lr_scaling: str = "fixed",
    ramp_iterations: "int | None" = None,
    hidden_dim: int = 64,
    momentum: float = 0.9,
    seed: int = 0,
) -> TrainResult:
    """Train one MLP for a fixed epoch budget at one total batch size.

    ``lr_scaling`` selects the paper's Fig. 5 variants:

    * ``"fixed"`` — keep ``base_lr`` whatever the batch ("Default");
    * ``"linear"`` — jump straight to ``base_lr * k`` where
      ``k = total_batch_size / base_total_batch``;
    * ``"progressive"`` — ramp to ``base_lr * k`` over ``ramp_iterations``
      (the progressive linear scaling rule, "Hybrid").

    ``ramp_iterations`` defaults to 10% of the planned update count, capped
    at the paper's T = 100: the rule assumes the ramp is short relative to
    the run (the paper finishes it in 100 of ~450k ImageNet iterations).
    """
    if lr_scaling not in ("fixed", "linear", "progressive"):
        raise ValueError(f"unknown lr_scaling {lr_scaling!r}")
    if total_batch_size < 1 or total_batch_size > dataset.train_size:
        raise ValueError(
            f"total batch {total_batch_size} outside [1, {dataset.train_size}]"
        )
    scale = total_batch_size / base_total_batch
    target_lr = base_lr if lr_scaling == "fixed" else base_lr * scale
    if ramp_iterations is None:
        planned = epochs * -(-dataset.train_size // total_batch_size)
        ramp_iterations = min(100, max(1, planned // 10))
    params = init_mlp(dataset.input_dim, hidden_dim, dataset.num_classes, seed=seed)
    optimizer = MomentumSGD(lr=base_lr, momentum=momentum)
    loader = SerialLoader(dataset.train_size, seed=seed)
    losses: typing.List[float] = []
    step = 0
    while loader.epoch < epochs:
        if lr_scaling == "progressive":
            optimizer.lr = progressive_lr(base_lr, target_lr, step, ramp_iterations)
        else:
            optimizer.lr = target_lr
        (indices,) = loader.next_iteration(1, total_batch_size)
        loss, grads = loss_and_gradients(
            params, dataset.train_x[indices], dataset.train_y[indices]
        )
        optimizer.step(params, grads)
        losses.append(loss)
        step += 1
        if not np.isfinite(loss):
            break  # diverged; stop wasting work
    return TrainResult(
        params=params,
        test_accuracy=accuracy(params, dataset.test_x, dataset.test_y),
        train_accuracy=accuracy(params, dataset.train_x, dataset.train_y),
        losses=losses,
        updates=step,
    )


def train_data_parallel(
    dataset: Dataset,
    num_workers: int,
    batch_per_worker: int,
    iterations: int,
    lr: float = 0.1,
    hidden_dim: int = 64,
    momentum: float = 0.9,
    seed: int = 0,
) -> TrainResult:
    """Synchronous data-parallel training with explicit gradient averaging.

    Every worker holds a replica (identical seed), computes gradients on
    its own serial-loader slice, and the replicas apply the averaged
    gradient — the collective-communication scheme of paper Fig. 7.  Only
    rank 0's replica is returned; by construction all replicas are equal.
    """
    if num_workers < 1:
        raise ValueError(f"num_workers must be >= 1, got {num_workers}")
    replicas = [
        init_mlp(dataset.input_dim, hidden_dim, dataset.num_classes, seed=seed)
        for _ in range(num_workers)
    ]
    optimizers = [MomentumSGD(lr=lr, momentum=momentum) for _ in range(num_workers)]
    loader = SerialLoader(dataset.train_size, seed=seed)
    losses: typing.List[float] = []
    for _ in range(iterations):
        slices = loader.next_iteration(num_workers, batch_per_worker)
        grads, batch_losses, weights = [], [], []
        for rank, indices in enumerate(slices):
            if len(indices) == 0:
                continue
            loss, grad = loss_and_gradients(
                replicas[rank],
                dataset.train_x[indices],
                dataset.train_y[indices],
            )
            grads.append(grad)
            batch_losses.append(loss)
            weights.append(len(indices))
        averaged = average_gradients(grads)
        for rank in range(num_workers):
            optimizers[rank].step(replicas[rank], averaged)
        losses.append(float(np.average(batch_losses, weights=weights)))
    params = replicas[0]
    return TrainResult(
        params=params,
        test_accuracy=accuracy(params, dataset.test_x, dataset.test_y),
        train_accuracy=accuracy(params, dataset.train_x, dataset.train_y),
        losses=losses,
        updates=iterations,
    )
