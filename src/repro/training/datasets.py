"""Synthetic datasets for the real (numpy) training substrate.

The paper trains on ImageNet/Cifar100/Tatoeba/WMT'16, none of which are
available offline.  The elasticity mechanisms only need *a* supervised
learning task whose generalization responds to the batch-size/learning-rate
trade-off, so we generate classification problems from a random teacher
network: inputs are Gaussian, labels come from an MLP with frozen random
weights plus label noise.  The task is learnable but not trivially so,
which is exactly what the Fig. 5 reproduction needs.
"""

from __future__ import annotations

import dataclasses

import numpy as np


@dataclasses.dataclass(frozen=True)
class Dataset:
    """An in-memory supervised classification dataset."""

    train_x: np.ndarray
    train_y: np.ndarray
    test_x: np.ndarray
    test_y: np.ndarray
    num_classes: int

    @property
    def train_size(self) -> int:
        """Number of training samples."""
        return len(self.train_x)

    @property
    def input_dim(self) -> int:
        """Feature dimensionality."""
        return self.train_x.shape[1]


def make_classification(
    train_size: int = 8192,
    test_size: int = 2048,
    input_dim: int = 32,
    num_classes: int = 10,
    teacher_hidden: int = 48,
    label_noise: float = 0.05,
    seed: int = 0,
) -> Dataset:
    """Generate a teacher-network classification task.

    ``label_noise`` flips that fraction of labels uniformly at random,
    bounding the reachable test accuracy away from 100% so that
    generalization differences between training regimes stay visible.
    """
    if train_size < 1 or test_size < 1:
        raise ValueError("dataset sizes must be positive")
    if not 0.0 <= label_noise < 1.0:
        raise ValueError(f"label_noise must be in [0, 1), got {label_noise}")
    rng = np.random.default_rng(seed)
    total = train_size + test_size
    x = rng.standard_normal((total, input_dim)).astype(np.float64)
    w1 = rng.standard_normal((input_dim, teacher_hidden)) / np.sqrt(input_dim)
    w2 = rng.standard_normal((teacher_hidden, num_classes)) / np.sqrt(teacher_hidden)
    logits = np.tanh(x @ w1) @ w2
    y = logits.argmax(axis=1)
    flip = rng.random(total) < label_noise
    y[flip] = rng.integers(0, num_classes, size=flip.sum())
    return Dataset(
        train_x=x[:train_size],
        train_y=y[:train_size],
        test_x=x[train_size:],
        test_y=y[train_size:],
        num_classes=num_classes,
    )
