"""A small neural-network library on numpy.

Implements exactly what the live elastic runtime needs: a two-layer MLP
classifier with softmax cross-entropy, explicit parameter dictionaries
(so training state can be extracted, replicated and restored byte-for-byte,
as Elan's hooks require), and deterministic initialization from a seed
(so every data-parallel worker builds an identical replica).
"""

from __future__ import annotations

import typing

import numpy as np

Params = typing.Dict[str, np.ndarray]


def init_mlp(
    input_dim: int, hidden_dim: int, num_classes: int, seed: int = 0
) -> Params:
    """He-initialized parameters of a 2-layer MLP classifier."""
    if min(input_dim, hidden_dim, num_classes) < 1:
        raise ValueError("all dimensions must be >= 1")
    rng = np.random.default_rng(seed)
    return {
        "w1": rng.standard_normal((input_dim, hidden_dim)) * np.sqrt(2.0 / input_dim),
        "b1": np.zeros(hidden_dim),
        "w2": rng.standard_normal((hidden_dim, num_classes))
        * np.sqrt(2.0 / hidden_dim),
        "b2": np.zeros(num_classes),
    }


def forward(params: Params, x: np.ndarray) -> typing.Tuple[np.ndarray, np.ndarray]:
    """Forward pass; returns (logits, hidden activations)."""
    hidden = np.maximum(0.0, x @ params["w1"] + params["b1"])  # ReLU
    logits = hidden @ params["w2"] + params["b2"]
    return logits, hidden


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax, numerically stabilized."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def loss_and_gradients(
    params: Params, x: np.ndarray, y: np.ndarray
) -> typing.Tuple[float, Params]:
    """Mean cross-entropy loss and its gradients for one mini-batch."""
    if len(x) == 0:
        raise ValueError("empty batch")
    logits, hidden = forward(params, x)
    probs = softmax(logits)
    batch = len(x)
    loss = float(-np.log(probs[np.arange(batch), y] + 1e-12).mean())
    dlogits = probs
    dlogits[np.arange(batch), y] -= 1.0
    dlogits /= batch
    dhidden = dlogits @ params["w2"].T
    dhidden[hidden <= 0.0] = 0.0
    grads = {
        "w2": hidden.T @ dlogits,
        "b2": dlogits.sum(axis=0),
        "w1": x.T @ dhidden,
        "b1": dhidden.sum(axis=0),
    }
    return loss, grads


def accuracy(params: Params, x: np.ndarray, y: np.ndarray) -> float:
    """Top-1 classification accuracy on (x, y)."""
    logits, _hidden = forward(params, x)
    return float((logits.argmax(axis=1) == y).mean())


def clone_params(params: Params) -> Params:
    """Deep copy of a parameter dictionary."""
    return {name: array.copy() for name, array in params.items()}


def params_allclose(a: Params, b: Params, atol: float = 0.0) -> bool:
    """Whether two parameter sets are (numerically) identical."""
    if set(a) != set(b):
        return False
    return all(np.allclose(a[name], b[name], atol=atol) for name in a)


def param_bytes(params: Params) -> int:
    """Total byte size of a parameter dictionary."""
    return sum(array.nbytes for array in params.values())


def average_gradients(gradient_sets: typing.Sequence[Params]) -> Params:
    """All-reduce (mean) of per-worker gradients — the collective step of
    data-parallel training (paper Fig. 7)."""
    if not gradient_sets:
        raise ValueError("no gradients to average")
    names = gradient_sets[0].keys()
    count = len(gradient_sets)
    return {
        name: sum(grads[name] for grads in gradient_sets) / count for name in names
    }
