"""Optimizers for the numpy training substrate.

Momentum SGD is the optimizer the paper's hybrid scaling analysis assumes
(its Eq. 1 is the plain SGD update).  The optimizer state (velocity
buffers) is part of the training state Elan replicates (Table II), so it is
held explicitly and can be extracted/restored.
"""

from __future__ import annotations

import typing

import numpy as np

from .nn import Params


class MomentumSGD:
    """SGD with classical momentum and a mutable learning rate.

    The learning rate is a plain attribute on purpose: the progressive
    linear scaling rule (paper Eq. 3) adjusts it every iteration during a
    ramp, and the runtime applies that by assignment before each step.
    """

    def __init__(self, lr: float, momentum: float = 0.9, weight_decay: float = 0.0):
        if lr <= 0:
            raise ValueError(f"learning rate must be > 0, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: typing.Dict[str, np.ndarray] = {}

    def step(self, params: Params, grads: Params) -> None:
        """Apply one in-place update to ``params``."""
        for name, grad in grads.items():
            if self.weight_decay:
                grad = grad + self.weight_decay * params[name]
            velocity = self._velocity.get(name)
            if velocity is None:
                velocity = np.zeros_like(params[name])
            velocity = self.momentum * velocity - self.lr * grad
            self._velocity[name] = velocity
            params[name] += velocity

    # -- state management (replicated by Elan, Table II) ---------------------

    def state_dict(self) -> dict:
        """Extract the optimizer state for replication."""
        return {
            "lr": self.lr,
            "momentum": self.momentum,
            "weight_decay": self.weight_decay,
            "velocity": {name: v.copy() for name, v in self._velocity.items()},
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a previously extracted optimizer state."""
        self.lr = state["lr"]
        self.momentum = state["momentum"]
        self.weight_decay = state["weight_decay"]
        self._velocity = {name: v.copy() for name, v in state["velocity"].items()}

    def state_bytes(self) -> int:
        """Byte size of the velocity buffers (GPU state in Table II)."""
        return sum(v.nbytes for v in self._velocity.values())


class ShardedMomentumSGD(MomentumSGD):
    """Momentum SGD whose *persisted* state is a ZeRO-style shard.

    The second parallelism dimension of the sharded-migration plane:
    each worker still steps with the full velocity (data-parallel
    replicas apply the identical update, so steps stay bit-identical to
    :class:`MomentumSGD`), but what it *persists* — and therefore what
    an adjustment must replicate per worker — is only its rank's
    contiguous slice of the flat velocity space, dropping per-worker
    replication traffic by 1/world.

    The flat space is the concatenation of the velocity buffers in
    parameter order; :meth:`shard_state_dict` cuts ``[rank, world)``
    element ranges out of it, :meth:`merge_shards` reassembles any
    complete shard set (even one persisted under a *different* world
    size), and :meth:`reshard` re-slices after an adjustment changed
    the worker count — reshaping along worker-count × shard-count.
    """

    def __init__(self, lr: float, momentum: float = 0.9,
                 weight_decay: float = 0.0, rank: int = 0, world: int = 1):
        super().__init__(lr, momentum, weight_decay)
        self.reshard(rank, world)

    def reshard(self, rank: int, world: int) -> None:
        """Adopt a new (rank, world) slicing after an adjustment."""
        world = int(world)
        rank = int(rank)
        if world < 1:
            raise ValueError(f"world size must be >= 1, got {world}")
        if not 0 <= rank < world:
            raise ValueError(f"rank {rank} outside world of {world}")
        self.rank = rank
        self.world = world

    # -- the flat velocity space ---------------------------------------------

    def _flat_layout(self) -> "list[tuple[str, int, int]]":
        """(name, flat_start, flat_end) per buffer, in insertion order."""
        layout = []
        offset = 0
        for name, velocity in self._velocity.items():
            layout.append((name, offset, offset + velocity.size))
            offset += velocity.size
        return layout

    @staticmethod
    def _shard_bounds(total: int, rank: int, world: int) -> "tuple[int, int]":
        base, extra = divmod(total, world)
        start = rank * base + min(rank, extra)
        return start, start + base + (1 if rank < extra else 0)

    def shard_state_dict(self, rank: "int | None" = None,
                         world: "int | None" = None) -> dict:
        """The persisted form: hyperparameters + one velocity slice."""
        rank = self.rank if rank is None else int(rank)
        world = self.world if world is None else int(world)
        layout = self._flat_layout()
        total = layout[-1][2] if layout else 0
        start, end = self._shard_bounds(total, rank, world)
        flat = (
            np.concatenate([v.ravel() for _, v in self._velocity.items()])
            if layout else np.zeros(0)
        )
        return {
            "lr": self.lr,
            "momentum": self.momentum,
            "weight_decay": self.weight_decay,
            "rank": rank,
            "world": world,
            "total": total,
            "shapes": {
                name: list(v.shape) for name, v in self._velocity.items()
            },
            "slice": flat[start:end].copy(),
        }

    def shard_bytes(self, rank: "int | None" = None,
                    world: "int | None" = None) -> int:
        """Persisted bytes for one rank — the 1/world of state_bytes."""
        shard = self.shard_state_dict(rank, world)
        return int(shard["slice"].nbytes)

    @classmethod
    def merge_shards(cls, shards: "typing.Sequence[dict]") -> dict:
        """Reassemble a full ``state_dict`` from one complete shard set.

        The shards may come from any world size (they carry their own
        ``(rank, world)``), as long as together they tile the flat
        space exactly — the property an adjustment relies on when the
        worker count changes between persist and restore.
        """
        if not shards:
            raise ValueError("cannot merge an empty shard set")
        first = shards[0]
        total = int(first["total"])
        flat = np.zeros(total, dtype=first["slice"].dtype
                        if first["slice"].size else np.float64)
        covered = 0
        for shard in shards:
            if int(shard["total"]) != total:
                raise ValueError("shards disagree on the flat-space size")
            start, end = cls._shard_bounds(
                total, int(shard["rank"]), int(shard["world"])
            )
            piece = np.asarray(shard["slice"]).ravel()
            if piece.size != end - start:
                raise ValueError(
                    f"shard {shard['rank']}/{shard['world']} has "
                    f"{piece.size} elements, expected {end - start}"
                )
            flat[start:end] = piece
            covered += end - start
        if covered != total:
            raise ValueError(
                f"shard set covers {covered} of {total} elements"
            )
        velocity = {}
        offset = 0
        for name, shape in first["shapes"].items():
            size = int(np.prod(shape)) if shape else 1
            velocity[name] = flat[offset:offset + size].reshape(shape).copy()
            offset += size
        return {
            "lr": first["lr"],
            "momentum": first["momentum"],
            "weight_decay": first["weight_decay"],
            "velocity": velocity,
        }
