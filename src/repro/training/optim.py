"""Optimizers for the numpy training substrate.

Momentum SGD is the optimizer the paper's hybrid scaling analysis assumes
(its Eq. 1 is the plain SGD update).  The optimizer state (velocity
buffers) is part of the training state Elan replicates (Table II), so it is
held explicitly and can be extracted/restored.
"""

from __future__ import annotations

import typing

import numpy as np

from .nn import Params


class MomentumSGD:
    """SGD with classical momentum and a mutable learning rate.

    The learning rate is a plain attribute on purpose: the progressive
    linear scaling rule (paper Eq. 3) adjusts it every iteration during a
    ramp, and the runtime applies that by assignment before each step.
    """

    def __init__(self, lr: float, momentum: float = 0.9, weight_decay: float = 0.0):
        if lr <= 0:
            raise ValueError(f"learning rate must be > 0, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: typing.Dict[str, np.ndarray] = {}

    def step(self, params: Params, grads: Params) -> None:
        """Apply one in-place update to ``params``."""
        for name, grad in grads.items():
            if self.weight_decay:
                grad = grad + self.weight_decay * params[name]
            velocity = self._velocity.get(name)
            if velocity is None:
                velocity = np.zeros_like(params[name])
            velocity = self.momentum * velocity - self.lr * grad
            self._velocity[name] = velocity
            params[name] += velocity

    # -- state management (replicated by Elan, Table II) ---------------------

    def state_dict(self) -> dict:
        """Extract the optimizer state for replication."""
        return {
            "lr": self.lr,
            "momentum": self.momentum,
            "weight_decay": self.weight_decay,
            "velocity": {name: v.copy() for name, v in self._velocity.items()},
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a previously extracted optimizer state."""
        self.lr = state["lr"]
        self.momentum = state["momentum"]
        self.weight_decay = state["weight_decay"]
        self._velocity = {name: v.copy() for name, v in state["velocity"].items()}

    def state_bytes(self) -> int:
        """Byte size of the velocity buffers (GPU state in Table II)."""
        return sum(v.nbytes for v in self._velocity.values())
