"""Data-loading semantics: serial vs chunk-based (paper §V-C, Fig. 13).

Elan proposes a **serial** loading semantics: all workers fetch from one
global, serially advancing position, so the not-yet-consumed data is always
one contiguous range and the whole loader state is a single integer.  The
widely used **chunk-based** semantics pre-partitions the epoch into chunks
owned by workers; after elastic adjustments the remaining data is
fragmented and the state is a record table with non-trivial management
logic.  Both are implemented here so the trade-off can be measured
(state size, repartition cost) and the runtime can use either.

Both loaders are *replicated state machines*: every worker holds an
identical copy and advances it with the same arguments each iteration, so
all replicas agree on who reads what — this is how the loader state stays
consistent under Elan's data-parallel scheme.
"""

from __future__ import annotations

import typing

import numpy as np


class SerialLoader:
    """Global serial data loading (the paper's proposed semantics).

    Each iteration hands out one contiguous slice of the current epoch's
    permutation, split contiguously among ranks.  The state is
    ``(epoch, position)`` — "a single integer" plus the epoch counter.
    """

    def __init__(self, dataset_size: int, seed: int = 0, shuffle: bool = True):
        if dataset_size < 1:
            raise ValueError(f"dataset_size must be >= 1, got {dataset_size}")
        self.dataset_size = dataset_size
        self.seed = seed
        self.shuffle = shuffle
        self.epoch = 0
        self.position = 0

    def _epoch_order(self) -> np.ndarray:
        if not self.shuffle:
            return np.arange(self.dataset_size)
        rng = np.random.default_rng(self.seed + self.epoch)
        return rng.permutation(self.dataset_size)

    def next_iteration(
        self, num_workers: int, batch_per_worker: int
    ) -> "list[np.ndarray]":
        """Sample indices for each rank's next micro-batch.

        The last batch of an epoch may be smaller; it is still split as
        evenly as possible so all ranks step together.  Advancing past the
        end rolls the epoch over.
        """
        if num_workers < 1 or batch_per_worker < 1:
            raise ValueError("num_workers and batch_per_worker must be >= 1")
        total = num_workers * batch_per_worker
        order = self._epoch_order()
        stop = min(self.position + total, self.dataset_size)
        batch = order[self.position : stop]
        self.position = stop
        if self.position >= self.dataset_size:
            self.epoch += 1
            self.position = 0
        return [np.asarray(part) for part in np.array_split(batch, num_workers)]

    @property
    def remaining_in_epoch(self) -> int:
        """Samples of the current epoch not yet handed out — contiguous."""
        return self.dataset_size - self.position

    def state_dict(self) -> dict:
        """The loader state: one integer position plus the epoch counter."""
        return {"epoch": self.epoch, "position": self.position}

    def load_state_dict(self, state: dict) -> None:
        """Restore a previously extracted state."""
        self.epoch = state["epoch"]
        self.position = state["position"]

    def repartition(self, num_workers: int) -> None:
        """Adapt to a new worker count.

        Serial semantics make this free: the remaining data is contiguous
        regardless of how many workers will read it, so there is nothing
        to do (§V-C: "the remaining data are always continuous").
        """
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")

    def state_size_bytes(self) -> int:
        """Size of the replicable loader state (two integers)."""
        return 16


class ChunkLoader:
    """Chunk-based loading (the widely-used baseline the paper contrasts).

    The epoch's permutation is cut into fixed-size chunks; ranks own
    disjoint chunk lists and consume them sequentially.  The loader state
    is a record table of per-chunk consumed offsets plus the ownership map.
    """

    def __init__(
        self,
        dataset_size: int,
        chunk_size: int = 256,
        num_workers: int = 1,
        seed: int = 0,
        shuffle: bool = True,
    ):
        if dataset_size < 1:
            raise ValueError(f"dataset_size must be >= 1, got {dataset_size}")
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.dataset_size = dataset_size
        self.chunk_size = chunk_size
        self.seed = seed
        self.shuffle = shuffle
        self.epoch = 0
        self._start_epoch(num_workers)

    @property
    def num_chunks(self) -> int:
        """Chunks per epoch (last chunk may be short)."""
        return -(-self.dataset_size // self.chunk_size)

    def _start_epoch(self, num_workers: int) -> None:
        self.consumed: typing.Dict[int, int] = {c: 0 for c in range(self.num_chunks)}
        self._assign(num_workers)

    def _chunk_indices(self, chunk_id: int) -> np.ndarray:
        if self.shuffle:
            rng = np.random.default_rng(self.seed + self.epoch)
            order = rng.permutation(self.dataset_size)
        else:
            order = np.arange(self.dataset_size)
        start = chunk_id * self.chunk_size
        return order[start : start + self.chunk_size]

    def _chunk_len(self, chunk_id: int) -> int:
        return min(self.chunk_size, self.dataset_size - chunk_id * self.chunk_size)

    def _remaining_of(self, chunk_id: int) -> int:
        return self._chunk_len(chunk_id) - self.consumed[chunk_id]

    def _assign(self, num_workers: int) -> None:
        """Distribute unfinished chunks across ranks, balancing remainders.

        This is the "complex management logic" of Fig. 13: on every
        repartition the fragmented leftovers must be re-spread.
        """
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        unfinished = sorted(
            (c for c in self.consumed if self._remaining_of(c) > 0),
            key=lambda c: -self._remaining_of(c),
        )
        self.ownership: typing.Dict[int, list] = {
            rank: [] for rank in range(num_workers)
        }
        loads = [0] * num_workers
        for chunk in unfinished:  # greedy balance by remaining samples
            rank = loads.index(min(loads))
            self.ownership[rank].append(chunk)
            loads[rank] += self._remaining_of(chunk)

    def next_iteration(
        self, num_workers: int, batch_per_worker: int
    ) -> "list[np.ndarray]":
        """Per-rank micro-batches; ranks that ran dry get empty arrays.

        When every chunk is consumed the epoch rolls over.
        """
        if num_workers != len(self.ownership):
            raise ValueError(
                f"loader partitioned for {len(self.ownership)} workers, "
                f"called with {num_workers}; repartition() first"
            )
        if batch_per_worker < 1:
            raise ValueError("batch_per_worker must be >= 1")
        batches = []
        for rank in range(num_workers):
            taken: list = []
            need = batch_per_worker
            for chunk in self.ownership[rank]:
                if need == 0:
                    break
                remaining = self._remaining_of(chunk)
                if remaining == 0:
                    continue
                take = min(need, remaining)
                offset = self.consumed[chunk]
                taken.append(self._chunk_indices(chunk)[offset : offset + take])
                self.consumed[chunk] += take
                need -= take
            batches.append(
                np.concatenate(taken) if taken else np.empty(0, dtype=np.int64)
            )
        if all(self._remaining_of(c) == 0 for c in self.consumed):
            self.epoch += 1
            self._start_epoch(num_workers)
        return batches

    @property
    def remaining_in_epoch(self) -> int:
        """Samples of the current epoch not yet handed out — fragmented."""
        return sum(self._remaining_of(c) for c in self.consumed)

    def state_dict(self) -> dict:
        """The record table: per-chunk offsets plus the ownership map."""
        return {
            "epoch": self.epoch,
            "consumed": dict(self.consumed),
            "ownership": {rank: list(chunks) for rank, chunks in self.ownership.items()},
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a previously extracted state."""
        self.epoch = state["epoch"]
        self.consumed = dict(state["consumed"])
        self.ownership = {
            rank: list(chunks) for rank, chunks in state["ownership"].items()
        }

    def repartition(self, num_workers: int) -> None:
        """Re-spread the fragmented remainder over a new worker count."""
        self._assign(num_workers)

    def state_size_bytes(self) -> int:
        """Size of the record table — grows with the number of chunks."""
        ownership_entries = sum(len(chunks) for chunks in self.ownership.values())
        return 8 + 16 * len(self.consumed) + 8 * ownership_entries
