"""repro — a reproduction of "Elan: Towards Generic and Efficient Elastic
Training for Deep Learning" (ICDCS 2020).

The package is organized bottom-up:

* :mod:`repro.simcore` — discrete-event simulation kernel;
* :mod:`repro.topology` — device/link model (L1-L4, P2P/SHM/NET);
* :mod:`repro.perfmodel` — calibrated throughput/bandwidth/convergence models;
* :mod:`repro.training` — numpy training substrate + Table II state;
* :mod:`repro.replication` — concurrent IO-free replication (§IV);
* :mod:`repro.coordination` — AM, protocol, live elastic runtime (§II, §V);
* :mod:`repro.core` — hybrid scaling, progressive LR, AdaBatch, the
  Table III API facade, the §VI-B experiment;
* :mod:`repro.baselines` — Shutdown-Restart and Litz;
* :mod:`repro.scheduling` — elastic cluster scheduling (§VI-C).

Quick start::

    from repro.core import ElasticJob
    from repro.training import make_classification

    with ElasticJob(make_classification(), workers=2) as job:
        job.wait_until_iteration(50)
        job.scale_out(2)          # training continues while workers start
        job.wait_for_adjustments(1)
"""

__version__ = "1.0.0"

__all__ = [
    "baselines",
    "coordination",
    "core",
    "perfmodel",
    "replication",
    "scheduling",
    "simcore",
    "topology",
    "training",
]
