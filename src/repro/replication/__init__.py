"""Concurrent IO-free state replication (paper §IV) and its baseline.

The planner turns topology into transfer assignments and contention-free
rounds; the executors run plans either on the discrete-event kernel (for
timed experiments) or live in memory (for the threaded runtime); the
checkpoint module models and implements the storage-based baseline.
"""

from .checkpoint import (
    CheckpointCost,
    SharedStorage,
    checkpoint_load_cost,
    checkpoint_write_cost,
)
from .executor import (
    LiveReplicator,
    ReplicationTimeline,
    SimulatedReplicationExecutor,
    TransferRecord,
)
from .planner import (
    ETHERNET_BANDWIDTH,
    ReplicationPlan,
    Transfer,
    plan_migration,
    plan_replication,
)

__all__ = [
    "CheckpointCost",
    "ETHERNET_BANDWIDTH",
    "LiveReplicator",
    "ReplicationPlan",
    "ReplicationTimeline",
    "SharedStorage",
    "SimulatedReplicationExecutor",
    "Transfer",
    "TransferRecord",
    "checkpoint_load_cost",
    "checkpoint_write_cost",
    "plan_migration",
    "plan_replication",
]
