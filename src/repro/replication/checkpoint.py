"""Checkpoint-based state movement — the baseline Elan replaces (§I-A, §V-B).

Shutdown-Restart systems dump the training state to persistent storage
(Lustre in the paper's testbed) and re-load it after restarting.  Compared
with Elan's IO-free replication this involves a GPU->CPU copy, a
serialization, a filesystem write, and on restart the reverse — the
"heavy-weight IO operations and CPU-GPU memory copy" the paper calls out.

This module provides both the *cost model* of those phases (used by the
S&R baseline in the Fig. 11/15 benchmarks) and a real in-memory
:class:`SharedStorage` that the live S&R baseline writes actual serialized
state through (emulating the shared filesystem).
"""

from __future__ import annotations

import dataclasses
import typing

from ..perfmodel import calibration
from ..training.state import TrainingState


@dataclasses.dataclass(frozen=True)
class CheckpointCost:
    """Time components of one checkpoint write or load."""

    device_copy: float  # GPU <-> CPU memory copy
    serialize: float  # (de)serialization overhead
    storage_io: float  # filesystem read/write

    @property
    def total(self) -> float:
        """End-to-end time of the operation."""
        return self.device_copy + self.serialize + self.storage_io


def checkpoint_write_cost(
    gpu_bytes: int,
    cpu_bytes: int,
    write_bandwidth: float = calibration.LUSTRE_WRITE_BANDWIDTH,
    copy_bandwidth: float = calibration.PCIE_COPY_BANDWIDTH,
    serialize_overhead: float = calibration.CHECKPOINT_SERIALIZE_OVERHEAD,
) -> CheckpointCost:
    """Cost of dumping the full state to shared storage."""
    if gpu_bytes < 0 or cpu_bytes < 0:
        raise ValueError("state sizes must be non-negative")
    total_bytes = gpu_bytes + cpu_bytes
    return CheckpointCost(
        device_copy=gpu_bytes / copy_bandwidth,
        serialize=serialize_overhead,
        storage_io=total_bytes / write_bandwidth,
    )


def checkpoint_load_cost(
    gpu_bytes: int,
    cpu_bytes: int,
    read_bandwidth: float = calibration.LUSTRE_READ_BANDWIDTH,
    copy_bandwidth: float = calibration.PCIE_COPY_BANDWIDTH,
    serialize_overhead: float = calibration.CHECKPOINT_SERIALIZE_OVERHEAD,
) -> CheckpointCost:
    """Cost of loading the full state from shared storage."""
    if gpu_bytes < 0 or cpu_bytes < 0:
        raise ValueError("state sizes must be non-negative")
    total_bytes = gpu_bytes + cpu_bytes
    return CheckpointCost(
        device_copy=gpu_bytes / copy_bandwidth,
        serialize=serialize_overhead,
        storage_io=total_bytes / read_bandwidth,
    )


class SharedStorage:
    """An in-memory stand-in for the Lustre shared filesystem.

    The live Shutdown-Restart baseline writes real serialized
    :class:`TrainingState` blobs through this, so restart-from-checkpoint
    is exercised end to end (serialization bugs would surface here).
    """

    def __init__(self):
        self._blobs: typing.Dict[str, bytes] = {}
        self.writes = 0
        self.reads = 0

    def save(self, path: str, state: TrainingState) -> int:
        """Serialize and store; returns the blob size in bytes."""
        blob = state.serialize()
        self._blobs[path] = blob
        self.writes += 1
        return len(blob)

    def load(self, path: str) -> TrainingState:
        """Load and deserialize a previously saved state."""
        if path not in self._blobs:
            raise KeyError(f"no checkpoint at {path!r}")
        self.reads += 1
        return TrainingState.deserialize(self._blobs[path])

    def exists(self, path: str) -> bool:
        """Whether a checkpoint exists at ``path``."""
        return path in self._blobs

    def delete(self, path: str) -> None:
        """Remove a checkpoint (idempotent)."""
        self._blobs.pop(path, None)
