"""Planning concurrent IO-free state replication (paper §IV-3).

Given the topology positions of the existing workers (each holding one
identical replica of the full training state, §IV-1) and of the new
workers, the planner:

1. selects for **each** new worker its *nearest* existing neighbor —
   nearest meaning the highest-bandwidth transport, P2P > SHM > NET;
2. groups the resulting transfers into **concurrency rounds**: transfers
   whose physical paths share no link (and no endpoint GPU) run in
   parallel, contending transfers — "typically when replications traverse
   L3" — run in turn.

The plan is deterministic for a given topology so that tests, the cost
model and the discrete-event executor all agree on what happens.
"""

from __future__ import annotations

import dataclasses
import typing

from ..topology import (
    BEST_TRANSPORT,
    BandwidthProfile,
    LinkLevel,
    TopologyNode,
    Transport,
    link_level,
    path_resources,
)

#: Ethernet bandwidth used for the (small) CPU-state replication that is
#: overlapped with the GPU transfer (§IV-3: "even we use web socket").
ETHERNET_BANDWIDTH = 125.0e6  # 1,000 Mb/s from the paper's testbed

#: Fixed software overhead of establishing one replication stream, seconds.
TRANSFER_SETUP_TIME = 5e-3


@dataclasses.dataclass(frozen=True)
class Transfer:
    """One source -> target state replication."""

    source: TopologyNode
    target: TopologyNode
    level: LinkLevel
    transport: Transport
    resources: frozenset
    gpu_bytes: int
    cpu_bytes: int

    def duration(self, profile: BandwidthProfile) -> float:
        """Wall time of this transfer: GPU state over the chosen transport,
        CPU state overlapped over Ethernet (whichever finishes last)."""
        gpu_time = profile.spec(self.transport).transfer_time(self.gpu_bytes)
        cpu_time = self.cpu_bytes / ETHERNET_BANDWIDTH
        return TRANSFER_SETUP_TIME + max(gpu_time, cpu_time)

    def describe(self) -> str:
        """Human-readable one-liner (used by examples and logs)."""
        return (
            f"{self.source.name} -> {self.target.name} "
            f"[{self.level.name}/{self.transport.value}]"
        )


@dataclasses.dataclass(frozen=True)
class ReplicationPlan:
    """A set of transfers scheduled into contention-free rounds."""

    transfers: typing.Tuple[Transfer, ...]
    rounds: typing.Tuple[typing.Tuple[Transfer, ...], ...]

    def estimated_time(self, profile: BandwidthProfile) -> float:
        """Makespan: rounds run serially, transfers within a round overlap."""
        return sum(
            max((t.duration(profile) for t in round_), default=0.0)
            for round_ in self.rounds
        )

    @property
    def max_concurrency(self) -> int:
        """Largest number of simultaneous transfers in any round."""
        return max((len(round_) for round_ in self.rounds), default=0)


def _transfer_claims(transfer: Transfer) -> frozenset:
    """Everything a transfer occupies: path links plus both endpoint GPUs.

    Endpoint GPUs are claims too — one source can feed only one new worker
    at a time, which is why the paper selects "one neighbor for each new
    worker rather than one for them all".
    """
    return transfer.resources | {
        f"gpu:{transfer.source.name}",
        f"gpu:{transfer.target.name}",
    }


def plan_replication(
    existing: typing.Sequence[TopologyNode],
    new: typing.Sequence[TopologyNode],
    gpu_bytes: int,
    cpu_bytes: int,
    allow_chaining: bool = False,
    fan_in: int = 1,
) -> ReplicationPlan:
    """Build the replication plan for adding ``new`` workers.

    ``allow_chaining`` enables an extension beyond the paper: a new worker
    that already received the state in an earlier round may serve as a
    source in later rounds, increasing fan-out for large scale-outs.

    ``fan_in`` enables the sharded-migration mode: each new worker pulls
    ``fan_in`` disjoint shards of the state concurrently from up to
    ``fan_in`` *distinct* sources (``gpu_bytes`` split across them, the
    small CPU state riding the first stream).  A target's fan-in
    transfers form one group scheduled as a unit — they must all land in
    the same round, so two joiners never share a source link within a
    round and each joiner gets k-link bandwidth instead of one.
    Chaining is mutually exclusive with fan-in (a chained source holds
    the whole state; shard owners are elected among originals only).
    """
    if not existing:
        raise ValueError("at least one existing worker must hold the state")
    overlap = {gpu.name for gpu in existing} & {gpu.name for gpu in new}
    if overlap:
        raise ValueError(f"workers cannot be both existing and new: {overlap}")
    fan_in = max(1, int(fan_in))
    if fan_in > 1 and allow_chaining:
        raise ValueError("fan_in > 1 is mutually exclusive with chaining")

    # Deterministic order: serve closest-to-the-cluster first by name.
    pending = sorted(new, key=lambda gpu: gpu.name)
    originals = list(existing)
    chained_sources: typing.List[TopologyNode] = []
    load: typing.Dict[str, int] = {gpu.name: 0 for gpu in existing}
    groups: typing.List[typing.List[Transfer]] = []

    def selection_key(target, gpu):
        # Nearest neighbor, but spread ties across sources: the paper
        # selects "one neighbor for each new worker rather than one for
        # them all" precisely so replications can proceed concurrently.
        return (int(link_level(target, gpu)), load.get(gpu.name, 0), gpu.name)

    def make_transfer(source, target, t_gpu_bytes, t_cpu_bytes):
        level = link_level(source, target)
        return Transfer(
            source=source,
            target=target,
            level=level,
            transport=BEST_TRANSPORT[level],
            resources=path_resources(source, target),
            gpu_bytes=t_gpu_bytes,
            cpu_bytes=t_cpu_bytes,
        )

    for target in pending:
        if fan_in > 1:
            count = min(fan_in, len(originals))
            sources = sorted(
                originals, key=lambda gpu: selection_key(target, gpu)
            )[:count]
            base, extra = divmod(gpu_bytes, count)
            group = []
            for index, source in enumerate(sources):
                load[source.name] = load.get(source.name, 0) + 1
                group.append(make_transfer(
                    source, target,
                    base + (1 if index < extra else 0),
                    cpu_bytes if index == 0 else 0,
                ))
            groups.append(group)
            continue
        source = min(originals, key=lambda gpu: selection_key(target, gpu))
        if chained_sources:
            # A chained source only starts serving a round after it was
            # itself served, so it must be *strictly closer* than every
            # original source to be worth the wait (e.g. a local P2P copy
            # instead of another cross-network transfer).
            candidate = min(
                chained_sources, key=lambda gpu: selection_key(target, gpu)
            )
            if int(link_level(target, candidate)) < int(
                link_level(target, source)
            ):
                source = candidate
        load[source.name] = load.get(source.name, 0) + 1
        groups.append([make_transfer(source, target, gpu_bytes, cpu_bytes)])
        if allow_chaining:
            chained_sources.append(target)

    # Greedy list scheduling into contention-free rounds; a fan-in group
    # is placed whole.  When chaining, a transfer sourced from a new
    # worker must wait for the round after that worker received the state.
    rounds: typing.List[typing.List[Transfer]] = []
    earliest_source_round = {gpu.name: 0 for gpu in existing}

    def group_claims(group):
        return frozenset().union(*(_transfer_claims(t) for t in group))

    ordered = sorted(
        groups,
        key=lambda g: (min(int(t.level) for t in g), g[0].target.name),
    )
    for group in ordered:
        claims = group_claims(group)
        target_name = group[0].target.name
        start = max(
            earliest_source_round.get(t.source.name, 0) for t in group
        )
        placed = False
        for index in range(start, len(rounds)):
            round_claims = frozenset().union(
                *(_transfer_claims(t) for t in rounds[index])
            )
            if not claims & round_claims:
                rounds[index].extend(group)
                earliest_source_round[target_name] = index + 1
                placed = True
                break
        if not placed:
            rounds.append(list(group))
            earliest_source_round[target_name] = len(rounds)
    return ReplicationPlan(
        transfers=tuple(t for group in groups for t in group),
        rounds=tuple(tuple(r) for r in rounds),
    )


def plan_migration(
    old_workers: typing.Sequence[TopologyNode],
    new_workers: typing.Sequence[TopologyNode],
    gpu_bytes: int,
    cpu_bytes: int,
) -> ReplicationPlan:
    """Plan a migration: the job moves entirely onto ``new_workers``.

    Replication-wise this is identical to a scale-out onto the new set —
    every new worker fetches the state from its nearest old worker; the
    old workers are released afterwards by the coordination layer.
    """
    return plan_replication(old_workers, new_workers, gpu_bytes, cpu_bytes)
