"""Executing replication plans.

Two executors share the planner's output:

* :class:`SimulatedReplicationExecutor` — runs the plan on the
  discrete-event kernel with one :class:`~repro.simcore.Resource` per
  physical link/GPU claim, validating that the planner's round structure
  is exactly what link contention permits and producing the timed
  replication timeline used by the Fig. 15 benchmarks.

* :class:`LiveReplicator` — performs the actual state copy between
  in-process workers of the live runtime (deep-copying the
  :class:`~repro.training.TrainingState`), which is "IO-free" in the same
  sense as the paper: no filesystem, no serialization to disk.
"""

from __future__ import annotations

import dataclasses
import typing

from ..simcore import Resource, Simulator
from ..topology import BandwidthProfile
from ..training.state import TrainingState
from .planner import ReplicationPlan, Transfer, _transfer_claims

if typing.TYPE_CHECKING:  # imported lazily at runtime (avoids a cycle
    # through repro.coordination, whose runtime imports this package)
    from ..coordination.faults import ExponentialBackoff, FaultPlan


@dataclasses.dataclass(frozen=True)
class TransferRecord:
    """Timing of one executed transfer."""

    transfer: Transfer
    start: float
    end: float

    @property
    def duration(self) -> float:
        """Wall time of this transfer."""
        return self.end - self.start


@dataclasses.dataclass(frozen=True)
class ReplicationTimeline:
    """The executed timeline of a whole plan."""

    records: typing.Tuple[TransferRecord, ...]

    @property
    def makespan(self) -> float:
        """End-to-end replication time."""
        return max((r.end for r in self.records), default=0.0)

    def concurrent_pairs(self) -> int:
        """Number of transfer pairs that overlapped in time."""
        count = 0
        for i, a in enumerate(self.records):
            for b in self.records[i + 1 :]:
                if a.start < b.end and b.start < a.end:
                    count += 1
        return count


class SimulatedReplicationExecutor:
    """Execute a plan on the DES kernel, honoring physical link claims.

    An optional :class:`~repro.coordination.faults.FaultPlan` injects
    transfer failures: transfer ``i`` (in plan order, flattened across
    rounds) fails ``plan.transfer_failure_count(i)`` times before
    succeeding, each attempt burning the full transfer duration plus an
    exponential-backoff delay.  The retries lengthen the makespan exactly
    the way a flaky link would; ``self.retries`` counts them.
    """

    def __init__(
        self,
        profile: "BandwidthProfile | None" = None,
        fault_plan: "FaultPlan | None" = None,
        backoff: "ExponentialBackoff | None" = None,
        tracer: "typing.Any | None" = None,
    ):
        from ..coordination.faults import ExponentialBackoff
        self.profile = profile or BandwidthProfile()
        self.fault_plan = fault_plan
        self.backoff = backoff or ExponentialBackoff(
            base=0.01, max_delay=0.5, sleeper=lambda _s: None
        )
        self.retries = 0
        #: Optional :class:`~repro.observability.Tracer`: each executed
        #: transfer lands as a ``replicate.transfer`` span (on the inner
        #: kernel's simulated time) tagged with its link class and retry
        #: count.
        self.tracer = tracer

    def execute(self, plan: ReplicationPlan) -> ReplicationTimeline:
        """Run every transfer as a process contending on shared links."""
        sim = Simulator()
        locks: typing.Dict[str, Resource] = {}
        records: typing.List[TransferRecord] = []
        transfer_index = {
            id(t): i
            for i, t in enumerate(
                t for round_ in plan.rounds for t in round_
            )
        }

        def lock_for(claim: str) -> Resource:
            if claim not in locks:
                locks[claim] = Resource(sim, capacity=1)
            return locks[claim]

        def run_transfer(transfer: Transfer):
            # Acquire all claims in sorted order (avoids deadlock).
            claims = sorted(_transfer_claims(transfer))
            requests = []
            for claim in claims:
                request = lock_for(claim).request()
                yield request
                requests.append((claim, request))
            start = sim.now
            failures = 0
            if self.fault_plan is not None:
                failures = self.fault_plan.transfer_failure_count(
                    transfer_index[id(transfer)]
                )
            for attempt in range(failures):
                # A failed attempt wastes the whole transfer, then backs
                # off before retrying (the link stays claimed: the state
                # on it is half-written and nothing else may use it).
                yield sim.timeout(transfer.duration(self.profile))
                self.retries += 1
                yield sim.timeout(self.backoff.delay(attempt))
            yield sim.timeout(transfer.duration(self.profile))
            records.append(TransferRecord(transfer, start, sim.now))
            if self.tracer is not None:
                self.tracer.add_span(
                    "replicate.transfer", start, sim.now,
                    track=transfer.target.name, cat="replicate",
                    source=transfer.source.name,
                    link=transfer.transport.value.upper(),
                    level=transfer.level.name,
                    retries=failures,
                    gpu_bytes=transfer.gpu_bytes,
                    cpu_bytes=transfer.cpu_bytes,
                )
            for claim, request in requests:
                locks[claim].release(request)

        # Launch rounds in order; a transfer may only start once its
        # round's predecessor rounds have fully completed for chained
        # sources, which the claim locks already guarantee (the source GPU
        # is held while it receives state).  We additionally release each
        # round's processes in sequence to match the planner's in-turn
        # semantics for contended links.
        def run_round(round_transfers, after):
            if after is not None:
                yield after
            done = [sim.process(run_transfer(t)) for t in round_transfers]
            yield sim.all_of(done)

        previous = None
        for round_ in plan.rounds:
            previous = sim.process(run_round(round_, previous))
        if previous is not None:
            sim.run(until=previous)
        return ReplicationTimeline(records=tuple(records))


class LiveReplicator:
    """IO-free in-memory replication for the live threaded runtime."""

    def __init__(self):
        self.replications = 0

    def replicate(self, source_state: TrainingState) -> TrainingState:
        """Produce an independent, byte-identical replica of the state.

        No serialization to disk, no filesystem: exactly the property the
        paper's mechanism has relative to checkpoint-based replication.
        """
        self.replications += 1
        return source_state.clone()
