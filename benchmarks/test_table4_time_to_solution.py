"""Fig. 19 / Table IV: training efficiency and time to solution.

Paper shape: 512-2048 (Elastic) reaches each target accuracy ~20% faster
than 512 (16); the speedup grows with the target; 512-2048 (64) — dynamic
batches on fixed resources — obtains no speedup (elasticity is
necessary).
"""

from conftest import fmt_row

from repro.core import ElasticTrainingExperiment

TARGETS = [0.745, 0.75, 0.755]
PAPER_STATIC = {0.745: 45073.52, 0.75: 45824.74, 0.755: 48829.64}


def build_rows():
    experiment = ElasticTrainingExperiment(seed=0)
    static, fixed, elastic = experiment.all_configurations()
    rows = []
    for target in TARGETS:
        ts = static.time_to_accuracy(target)
        tf = fixed.time_to_accuracy(target)
        te = elastic.time_to_accuracy(target)
        rows.append((target, ts, tf, te, ts / te))
    return (static.label, fixed.label, elastic.label), rows


def test_table4_time_to_solution(benchmark, save_result):
    labels, rows = benchmark(build_rows)

    widths = (8, 12, 14, 18, 9)
    lines = [fmt_row(("Target",) + labels + ("Speedup",), widths)]
    for target, ts, tf, te, speedup in rows:
        lines.append(fmt_row(
            (f"{target:.1%}", f"{ts:.0f}", f"{tf:.0f}", f"{te:.0f}",
             f"{speedup:.3f}"),
            widths,
        ))
    lines.append("paper static times: "
                 + ", ".join(f"{t:.1%}: {v:.0f}s" for t, v in PAPER_STATIC.items()))
    save_result("table4_time_to_solution", lines)

    speedups = [row[4] for row in rows]
    # ~20% speedup, growing with the target accuracy.
    assert all(1.15 < s < 1.45 for s in speedups)
    assert speedups == sorted(speedups)
    for target, ts, tf, _te, _s in rows:
        # Static absolute times land near the paper's (same testbed calib).
        assert abs(ts - PAPER_STATIC[target]) / PAPER_STATIC[target] < 0.15
        # Fixed-64 shows no speedup over static.
        assert ts / tf < 1.05
