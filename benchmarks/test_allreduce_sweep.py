"""Gradient-plane sweep: star rendezvous vs decentralized ring.

The PR-5 ring exists for one reason: the star plane funnels ``2·N·S``
gradient bytes through the AM every iteration (N uploads of S bytes, N
mean downloads), serializing the whole job's gradient traffic through
one process, while the ring moves ``2·S·(N-1)/N`` bytes per member over
direct peer links and the AM moves **zero**.  This sweep measures both
planes end to end — N worker threads per iteration, real reliable
links — over the in-memory transport and loopback TCP.

The acceptance bar (ISSUE 5): with the ring, per-iteration gradient
bytes through the AM are exactly zero (vs ``2·N·S`` for the star), and
the ring completes bit-identically to the star's reference mean.
"""

import threading
import time

import numpy as np
from conftest import fmt_row

from repro.coordination.messages import MessageType
from repro.net import (
    JobSpec,
    MemoryPeerHost,
    NetworkedApplicationMaster,
    RingMailbox,
    RingNode,
    ServerCore,
    TcpPeerHost,
    memory_link,
    ring_reference_average,
    tcp_link,
)
from repro.observability import MetricRegistry

WORKERS = 4
ITERATIONS = 5

SIZES = (
    ("64KB", 64_000),
    ("512KB", 512_000),
    ("2MB", 2_000_000),
)


def make_grads(nbytes, seed):
    rng = np.random.default_rng(seed)
    return {"w": rng.standard_normal(nbytes // 8)}


def run_threads(fn, workers):
    errors = {}

    def wrapped(worker):
        try:
            fn(worker)
        except Exception as exc:  # pragma: no cover - surfaced below
            errors[worker] = exc

    threads = [
        threading.Thread(target=wrapped, args=(w,), daemon=True)
        for w in workers
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120.0)
    assert not errors, errors


def star_plane(transport, nbytes):
    """N workers rendezvous at the AM for ITERATIONS iterations."""
    workers = [f"w{i}" for i in range(WORKERS)]
    spec = JobSpec(allreduce_timeout=60.0, ring_enabled=False)
    master = NetworkedApplicationMaster(spec, workers)
    server = master.serve_tcp() if transport == "tcp" else None
    grads = {w: make_grads(nbytes, seed=i) for i, w in enumerate(workers)}
    links = {}
    for worker in workers:
        if transport == "tcp":
            links[worker], _ = tcp_link(
                server.host, server.port, worker, ack_timeout=30.0,
                heartbeat_interval=None,
            )
        else:
            links[worker] = memory_link(
                master.core, worker, ack_timeout=30.0
            )
    try:
        started = time.perf_counter()

        def iterate(worker):
            for iteration in range(ITERATIONS):
                reply = links[worker].request(
                    MessageType.SYNC,
                    {"generation": 0, "iteration": iteration,
                     "grads": grads[worker]},
                )
                assert reply["grads"] is not None

        run_threads(iterate, workers)
        elapsed = time.perf_counter() - started
        am_bytes = master.metrics.snapshot()["net.sync.grad_bytes"]
    finally:
        for link in links.values():
            link.close()
        master.close()
    return {
        "sec_per_iter": elapsed / ITERATIONS,
        "am_bytes_per_iter": am_bytes / ITERATIONS,
    }


def ring_plane(transport, nbytes):
    """The same collective over direct peer links; the AM is not even
    instantiated — there is nothing for it to do."""
    workers = [f"w{i}" for i in range(WORKERS)]
    host = TcpPeerHost() if transport == "tcp" else MemoryPeerHost()
    metrics = MetricRegistry()
    grads = {w: make_grads(nbytes, seed=i) for i, w in enumerate(workers)}
    nodes, addrs = {}, {}
    for worker in workers:
        mailbox = RingMailbox(metrics=metrics)
        core = ServerCore(mailbox.handle, node_id=f"{worker}/peer")
        addrs[worker] = host.serve(core, worker)
        connect = (
            lambda addr, w=worker: host.connect(
                addr, node_id=w, ack_timeout=30.0
            )
        )
        nodes[worker] = RingNode(
            worker, mailbox, connect, step_timeout=60.0, metrics=metrics,
        )
    ring = {"epoch": 0, "order": workers, "peers": addrs, "active_from": 0}
    for node in nodes.values():
        node.install(ring)
    results = {}
    try:
        started = time.perf_counter()

        def iterate(worker):
            for iteration in range(ITERATIONS):
                results[worker] = nodes[worker].allreduce(
                    0, iteration, grads[worker]
                )

        run_threads(iterate, workers)
        elapsed = time.perf_counter() - started
        snap = metrics.snapshot()
    finally:
        for node in nodes.values():
            node.close()
        host.close()
    # Correctness oracle: the last iteration's distributed mean is
    # bit-identical to the reference the star path would have served.
    reference = ring_reference_average([grads[w] for w in workers])
    for worker in workers:
        assert results[worker]["w"].tobytes() == reference["w"].tobytes()
    return {
        "sec_per_iter": elapsed / ITERATIONS,
        "am_bytes_per_iter": 0.0,  # no AM in the gradient path at all
        "peer_bytes_per_member_iter": (
            snap["net.allreduce.bytes_sent"] / WORKERS / ITERATIONS
        ),
    }


def sweep():
    rows = []
    for label, nbytes in SIZES:
        for transport in ("memory", "tcp"):
            star = star_plane(transport, nbytes)
            ring = ring_plane(transport, nbytes)
            rows.append({
                "label": label, "nbytes": nbytes, "transport": transport,
                "star": star, "ring": ring,
            })
    return rows


def test_allreduce_sweep(benchmark, save_result):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    widths = (7, 7, 13, 13, 15, 15, 16)
    lines = [
        fmt_row(
            (
                "Size", "Path", "star ms/it", "ring ms/it",
                "AM B/it star", "AM B/it ring", "peer B/mbr/it",
            ),
            widths,
        )
    ]
    for row in rows:
        lines.append(
            fmt_row(
                (
                    row["label"], row["transport"],
                    f"{row['star']['sec_per_iter'] * 1e3:.2f}",
                    f"{row['ring']['sec_per_iter'] * 1e3:.2f}",
                    f"{row['star']['am_bytes_per_iter']:.0f}",
                    f"{row['ring']['am_bytes_per_iter']:.0f}",
                    f"{row['ring']['peer_bytes_per_member_iter']:.0f}",
                ),
                widths,
            )
        )
    lines.append(
        f"{WORKERS} workers, {ITERATIONS} iterations per cell; star AM "
        f"bytes = 2*N*S (N uploads + N mean downloads), ring AM bytes "
        f"= 0 by construction, ring peer bytes/member ~= 2*S*(N-1)/N"
    )
    save_result("allreduce_sweep", lines)

    for row in rows:
        nbytes = row["nbytes"]
        # Star: every iteration hauls ~2*N*S gradient bytes through the
        # AM (exactly 2*N*S of ndarray payload; wire framing is extra).
        star_bytes = row["star"]["am_bytes_per_iter"]
        assert star_bytes >= 2 * WORKERS * nbytes * 0.99, row
        # Ring: the AM sees zero gradient bytes.
        assert row["ring"]["am_bytes_per_iter"] == 0.0, row
        # And the bytes that do flow are spread across peer links at
        # the textbook 2*S*(N-1)/N per member.
        expected_peer = 2 * nbytes * (WORKERS - 1) / WORKERS
        peer = row["ring"]["peer_bytes_per_member_iter"]
        assert 0.9 * expected_peer <= peer <= 1.3 * expected_peer, row
