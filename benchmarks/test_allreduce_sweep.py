"""Gradient-plane sweep: star vs ring, across transports and codecs.

The PR-5 ring exists for one reason: the star plane funnels ``2·N·S``
gradient bytes through the AM every iteration (N uploads of S bytes, N
mean downloads), serializing the whole job's gradient traffic through
one process, while the ring moves ``2·S·(N-1)/N`` bytes per member over
direct peer links and the AM moves **zero**.  This sweep measures both
planes end to end — N worker threads per iteration, real reliable
links — and extends the ring axis along two new dimensions (PR 9):

* transport — in-memory links, loopback TCP, and the ``shm://``
  shared-memory ring-buffer transport for co-located workers;
* codec — raw float64 buckets (``none``), and the ``fp16`` / ``int8``
  error-feedback quantizers negotiated per ring epoch.

The acceptance bars: ring AM bytes are exactly zero and the
uncompressed ring is bit-identical to the star reference (ISSUE 5);
SHM beats loopback TCP at the largest payload and fp16 cuts shipped
ring bytes to ~a quarter (float64 grads) with bounded drift (ISSUE 9).
"""

import threading
import time

import numpy as np
from conftest import fmt_row

from repro.coordination.messages import MessageType
from repro.net import (
    JobSpec,
    MemoryPeerHost,
    NetworkedApplicationMaster,
    RingMailbox,
    RingNode,
    ServerCore,
    ShmPeerHost,
    TcpPeerHost,
    memory_link,
    ring_reference_average,
    tcp_link,
)
from repro.observability import MetricRegistry

WORKERS = 4
ITERATIONS = 5

SIZES = (
    ("64KB", 64_000),
    ("512KB", 512_000),
    ("2MB", 2_000_000),
)

RING_TRANSPORTS = ("memory", "tcp", "shm")
RING_CODECS = ("none", "fp16", "int8")

#: Worst-case drift of the compressed mean from the exact mean, per
#: element, for standard-normal gradients (asserted per run).
DRIFT_BOUND = {"none": 0.0, "fp16": 5e-3, "int8": 1e-1}


def make_grads(nbytes, seed):
    rng = np.random.default_rng(seed)
    return {"w": rng.standard_normal(nbytes // 8)}


def run_threads(fn, workers):
    errors = {}

    def wrapped(worker):
        try:
            fn(worker)
        except Exception as exc:  # pragma: no cover - surfaced below
            errors[worker] = exc

    threads = [
        threading.Thread(target=wrapped, args=(w,), daemon=True)
        for w in workers
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120.0)
    assert not errors, errors


def star_plane(transport, nbytes):
    """N workers rendezvous at the AM for ITERATIONS iterations."""
    workers = [f"w{i}" for i in range(WORKERS)]
    spec = JobSpec(allreduce_timeout=60.0, ring_enabled=False)
    master = NetworkedApplicationMaster(spec, workers)
    server = master.serve_tcp() if transport == "tcp" else None
    grads = {w: make_grads(nbytes, seed=i) for i, w in enumerate(workers)}
    links = {}
    for worker in workers:
        if transport == "tcp":
            links[worker], _ = tcp_link(
                server.host, server.port, worker, ack_timeout=30.0,
                heartbeat_interval=None,
            )
        else:
            links[worker] = memory_link(
                master.core, worker, ack_timeout=30.0
            )
    try:
        started = time.perf_counter()

        def iterate(worker):
            for iteration in range(ITERATIONS):
                reply = links[worker].request(
                    MessageType.SYNC,
                    {"generation": 0, "iteration": iteration,
                     "grads": grads[worker]},
                )
                assert reply["grads"] is not None

        run_threads(iterate, workers)
        elapsed = time.perf_counter() - started
        am_bytes = master.metrics.snapshot()["net.sync.grad_bytes"]
    finally:
        for link in links.values():
            link.close()
        master.close()
    return {
        "sec_per_iter": elapsed / ITERATIONS,
        "am_bytes_per_iter": am_bytes / ITERATIONS,
    }


def make_host(transport):
    return {
        "memory": MemoryPeerHost,
        "tcp": TcpPeerHost,
        "shm": ShmPeerHost,
    }[transport]()


def ring_plane(transport, nbytes, codec="none"):
    """The same collective over direct peer links; the AM is not even
    instantiated — there is nothing for it to do."""
    workers = [f"w{i}" for i in range(WORKERS)]
    host = make_host(transport)
    metrics = MetricRegistry()
    grads = {w: make_grads(nbytes, seed=i) for i, w in enumerate(workers)}
    nodes, addrs = {}, {}
    for worker in workers:
        mailbox = RingMailbox(metrics=metrics)
        core = ServerCore(mailbox.handle, node_id=f"{worker}/peer")
        addrs[worker] = host.serve(core, worker)
        connect = (
            lambda addr, w=worker: host.connect(
                addr, node_id=w, ack_timeout=30.0
            )
        )
        nodes[worker] = RingNode(
            worker, mailbox, connect, step_timeout=60.0, metrics=metrics,
        )
    ring = {"epoch": 0, "order": workers, "peers": addrs, "active_from": 0}
    if codec != "none":
        ring["codec"] = codec
    for node in nodes.values():
        node.install(ring)
    results = {}
    try:
        started = time.perf_counter()

        def iterate(worker):
            for iteration in range(ITERATIONS):
                results[worker] = nodes[worker].allreduce(
                    0, iteration, grads[worker]
                )

        run_threads(iterate, workers)
        elapsed = time.perf_counter() - started
        snap = metrics.snapshot()
    finally:
        for node in nodes.values():
            node.close()
        host.close()
    # Correctness oracle: uncompressed, the distributed mean is
    # bit-identical to the reference the star path would have served;
    # compressed, every replica holds identical bytes within the codec's
    # drift bound of the exact mean.
    reference = ring_reference_average([grads[w] for w in workers])
    drift = 0.0
    for worker in workers:
        if codec == "none":
            assert results[worker]["w"].tobytes() == reference["w"].tobytes()
        else:
            assert (
                results[worker]["w"].tobytes()
                == results[workers[0]]["w"].tobytes()
            )
    if codec != "none":
        drift = float(np.max(np.abs(results[workers[0]]["w"] - reference["w"])))
        assert drift < DRIFT_BOUND[codec], (transport, codec, drift)
    return {
        "sec_per_iter": elapsed / ITERATIONS,
        "am_bytes_per_iter": 0.0,  # no AM in the gradient path at all
        "peer_bytes_per_member_iter": (
            snap["net.allreduce.bytes_sent"] / WORKERS / ITERATIONS
        ),
        "drift": drift,
    }


def sweep():
    rows = []
    for label, nbytes in SIZES:
        star = {t: star_plane(t, nbytes) for t in ("memory", "tcp")}
        ring = {
            (transport, codec): ring_plane(transport, nbytes, codec)
            for transport in RING_TRANSPORTS
            for codec in RING_CODECS
        }
        rows.append({
            "label": label, "nbytes": nbytes, "star": star, "ring": ring,
        })
    return rows


def test_allreduce_sweep(benchmark, save_result):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    widths = (7, 6, 12, 12, 12, 12, 12, 15, 9)
    lines = [
        fmt_row(
            (
                "Size", "Codec", "star-mem ms", "star-tcp ms",
                "ring-mem ms", "ring-tcp ms", "ring-shm ms",
                "peer B/mbr/it", "drift",
            ),
            widths,
        )
    ]
    for row in rows:
        for codec in RING_CODECS:
            ring = {
                t: row["ring"][(t, codec)] for t in RING_TRANSPORTS
            }
            star_cells = (
                (
                    f"{row['star']['memory']['sec_per_iter'] * 1e3:.2f}",
                    f"{row['star']['tcp']['sec_per_iter'] * 1e3:.2f}",
                )
                if codec == "none" else ("-", "-")
            )
            lines.append(
                fmt_row(
                    (
                        row["label"], codec, *star_cells,
                        f"{ring['memory']['sec_per_iter'] * 1e3:.2f}",
                        f"{ring['tcp']['sec_per_iter'] * 1e3:.2f}",
                        f"{ring['shm']['sec_per_iter'] * 1e3:.2f}",
                        f"{ring['shm']['peer_bytes_per_member_iter']:.0f}",
                        (
                            f"{ring['shm']['drift']:.1e}"
                            if codec != "none" else "exact"
                        ),
                    ),
                    widths,
                )
            )
    lines.append(
        f"{WORKERS} workers, {ITERATIONS} iterations per cell; star AM "
        f"bytes = 2*N*S (N uploads + N mean downloads), ring AM bytes "
        f"= 0 by construction, ring peer bytes/member ~= 2*S*(N-1)/N "
        f"(scaled by the codec: fp16 ~1/4 of float64, int8 ~1/8); "
        f"drift = max |compressed mean - exact mean|"
    )
    save_result("allreduce_sweep", lines)

    for row in rows:
        nbytes = row["nbytes"]
        # Star: every iteration hauls ~2*N*S gradient bytes through the
        # AM (exactly 2*N*S of ndarray payload; wire framing is extra).
        for transport in ("memory", "tcp"):
            star_bytes = row["star"][transport]["am_bytes_per_iter"]
            assert star_bytes >= 2 * WORKERS * nbytes * 0.99, row["label"]
        raw = {}
        for transport in RING_TRANSPORTS:
            ring = row["ring"][(transport, "none")]
            # Ring: the AM sees zero gradient bytes.
            assert ring["am_bytes_per_iter"] == 0.0, row["label"]
            # And the bytes that do flow are spread across peer links
            # at the textbook 2*S*(N-1)/N per member.
            expected_peer = 2 * nbytes * (WORKERS - 1) / WORKERS
            peer = ring["peer_bytes_per_member_iter"]
            assert 0.9 * expected_peer <= peer <= 1.3 * expected_peer, (
                row["label"], transport, peer,
            )
            raw[transport] = peer
        # Codecs shrink shipped bytes by the dtype ratio: float64->fp16
        # is 4x, float64->int8 is 8x (metadata rides the JSON header,
        # not the counted segments).
        for transport in RING_TRANSPORTS:
            fp16 = row["ring"][(transport, "fp16")]
            int8 = row["ring"][(transport, "int8")]
            assert fp16["peer_bytes_per_member_iter"] <= (
                0.30 * raw[transport]
            ), (row["label"], transport)
            assert int8["peer_bytes_per_member_iter"] <= (
                0.15 * raw[transport]
            ), (row["label"], transport)

    # The SHM acceptance bar: at the largest payload, shared-memory
    # links beat loopback TCP on the uncompressed ring.
    largest = rows[-1]
    shm = largest["ring"][("shm", "none")]["sec_per_iter"]
    tcp = largest["ring"][("tcp", "none")]["sec_per_iter"]
    assert shm < tcp, (
        f"shm {shm * 1e3:.2f} ms/it not faster than tcp {tcp * 1e3:.2f} "
        f"ms/it at {largest['label']}"
    )
