"""Fig. 14: Elan's runtime overhead when no adjustments happen.

Paper shape: below 3 per mille for all 5 models on 2-64 workers.
"""

from conftest import fmt_row

from repro.baselines import runtime_overhead_fraction
from repro.perfmodel import MODEL_ZOO

WORKERS = [2, 4, 8, 16, 32, 64]


def compute_overheads():
    return {
        (name, workers): runtime_overhead_fraction(spec, workers)
        for name, spec in MODEL_ZOO.items()
        for workers in WORKERS
    }


def test_fig14_runtime_overhead(benchmark, save_result):
    overheads = benchmark(compute_overheads)

    widths = (14,) + (9,) * len(WORKERS)
    lines = [fmt_row(("Model",) + tuple(f"{n}wkr" for n in WORKERS), widths)]
    for name in MODEL_ZOO:
        lines.append(fmt_row(
            (name,) + tuple(
                f"{overheads[(name, n)] * 1000:.2f}‰" for n in WORKERS
            ),
            widths,
        ))
    save_result("fig14_runtime_overhead", lines)

    for key, overhead in overheads.items():
        assert overhead < 0.003, f"{key}: overhead {overhead:.4f} >= 3 per mille"
        assert overhead > 0.0
