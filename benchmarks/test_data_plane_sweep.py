"""Payload-size sweep: base64-JSON vs msgpack vs binary frames.

The PR-4 data plane exists for one reason: a snapshot serialized as
base64-inside-JSON costs a 4/3 size blowup plus two full copies per
direction, while a binary frame ships the arrays' own buffers and
rebuilds them as ``np.frombuffer`` views.  This sweep measures
serialization+transfer for payloads from 1 KB to 64 MB on both sides of
the transport seam:

* ``memory`` — pure serialize + deserialize (no socket), the cost the
  in-memory transport's callers would pay if they flattened state the
  old way versus the blob path.
* ``tcp``    — a real loopback-TCP round trip through
  ``write_frame``/``read_frame`` including decode on the far side.
* ``shm``    — the same binary frame through a shared-memory ring
  buffer (PR 9): one copy into the ring, ``np.frombuffer`` views out.

The acceptance bar (ISSUE 4): binary is at least 5x cheaper than
base64-JSON for snapshots of 16 MB and up, on both paths.  msgpack is
measured only when the optional dependency is importable; the column
reads ``n/a`` otherwise.  The shm bar (ISSUE 9): shipping the binary
frame through the ring is no slower than shipping it over loopback TCP
at the acceptance size.
"""

import socket
import threading
import time

import numpy as np
from conftest import fmt_row

from repro.coordination.messages import MessageFactory, MessageType
from repro.net import ShmRing, StateBlob, decode_state_blob
from repro.net import wire
from repro.net.shm import decode_shm_frame, shm_frame_buffers

SIZES = (
    ("1KB", 1_000),
    ("64KB", 64_000),
    ("1MB", 1_000_000),
    ("16MB", 16_000_000),
    ("64MB", 64_000_000),
)

ACCEPTANCE_SIZE = "16MB"
ACCEPTANCE_SPEEDUP = 5.0

HAVE_MSGPACK = wire.msgpack is not None


def make_state(nbytes):
    return {"params": {"w": np.arange(nbytes // 8, dtype=np.float64)}}


def timed(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


# -- memory path: serialize + deserialize, no socket --------------------------


def memory_codec_round_trip(state, codec):
    """Encode the state the legacy way (arrays -> base64 envelopes in a
    codec frame) and decode it back to ndarrays."""
    def run():
        data = wire.encode_frame(
            {"state": wire.encode_payload(state)}, codec
        )
        decoded = wire.decode_payload(
            wire.decode_frame(data, codec)["state"]
        )
        assert decoded["params"]["w"].nbytes == state["params"]["w"].nbytes
    return run


def memory_binary_round_trip(state):
    """Encode via the blob path (gather list over live buffers), make
    the one contiguous copy a receiver would, and decode views."""
    def run():
        blob = StateBlob.encode(state)
        data = bytearray(blob.total_bytes)
        offset = 0
        for seq in range(blob.total_chunks):
            chunk = blob.chunk(seq)
            data[offset:offset + len(chunk)] = chunk
            offset += len(chunk)
        decoded = decode_state_blob(data)
        assert decoded["params"]["w"].nbytes == state["params"]["w"].nbytes
    return run


# -- tcp path: loopback socket round trip --------------------------------------


def loopback_pair():
    listener = socket.socket()
    listener.bind(("127.0.0.1", 0))
    listener.listen(1)
    client = socket.create_connection(listener.getsockname())
    accepted, _ = listener.accept()
    listener.close()
    for sock in (client, accepted):
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return client, accepted


def tcp_round_trip(state, codec, binary):
    """One full message over loopback TCP: build the frame, write it,
    read and decode it on the far side.  Timed end to end."""
    factory = MessageFactory()

    def run():
        client, accepted = loopback_pair()
        try:
            result = {}

            def read():
                result["frame"] = wire.read_frame(accepted, codec)

            reader = threading.Thread(target=read, daemon=True)
            reader.start()
            message = factory.make(MessageType.SYNC, "bench", state)
            wire.write_frame(
                client, wire.message_frame(message, raw=binary),
                codec, binary=binary,
            )
            reader.join(timeout=120)
            decoded = wire.decode_message(result["frame"])
            assert (
                decoded.payload["params"]["w"].nbytes
                == state["params"]["w"].nbytes
            )
        finally:
            client.close()
            accepted.close()

    return run


# -- shm path: binary frame through a shared-memory ring -----------------------


def shm_round_trip(state):
    """One full message through a :class:`ShmRing`: build the binary
    frame's buffer list, write it into the ring (the one copy), read the
    record back and decode ``np.frombuffer`` views out of it."""
    factory = MessageFactory()
    # Records must fit in half the ring (the no-wrap guarantee), with
    # headroom for the frame header.
    capacity = 2 * state["params"]["w"].nbytes + 1_000_000

    def run():
        ring = ShmRing(capacity=capacity)
        try:
            message = factory.make(MessageType.SYNC, "bench", state)
            buffers = shm_frame_buffers(
                wire.message_frame(message, raw=True), "json"
            )
            assert ring.write(buffers) > 0
            view = ring.read()
            decoded = wire.decode_message(decode_shm_frame(view, "json"))
            assert (
                decoded.payload["params"]["w"].nbytes
                == state["params"]["w"].nbytes
            )
            del decoded, view
            ring.advance()
        finally:
            ring.close(unlink=True)

    return run


def sweep():
    rows = []
    for label, nbytes in SIZES:
        state = make_state(nbytes)
        repeats = 3 if nbytes <= 1_000_000 else 1
        row = {"label": label, "nbytes": nbytes}
        for path in ("memory", "tcp"):
            for codec_label, fn in (
                ("json", (
                    memory_codec_round_trip(state, "json")
                    if path == "memory"
                    else tcp_round_trip(state, "json", binary=False)
                )),
                ("msgpack", (
                    memory_codec_round_trip(state, "msgpack")
                    if path == "memory"
                    else tcp_round_trip(state, "msgpack", binary=False)
                ) if HAVE_MSGPACK else None),
                ("binary", (
                    memory_binary_round_trip(state)
                    if path == "memory"
                    else tcp_round_trip(state, "json", binary=True)
                )),
            ):
                key = f"{path}/{codec_label}"
                if fn is None:
                    row[key] = None  # dependency not installed
                    continue
                try:
                    row[key] = timed(fn, repeats)
                except wire.WireError:
                    # base64 expansion pushes the frame past the 64 MiB
                    # cap; the codec path simply cannot ship this size.
                    row[key] = "cap"
        row["shm/binary"] = timed(shm_round_trip(state), repeats)
        rows.append(row)
    return rows


def test_data_plane_sweep(benchmark, save_result):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    def cell(value):
        if value is None:
            return "n/a"
        if value == "cap":
            return "n/a (frame cap)"
        return f"{value * 1e3:.2f}"

    widths = (6, 14, 14, 14, 14, 14, 14, 14, 9, 9)
    lines = [
        fmt_row(
            (
                "Size",
                "mem json (ms)", "mem msgpk (ms)", "mem bin (ms)",
                "tcp json (ms)", "tcp msgpk (ms)", "tcp bin (ms)",
                "shm bin (ms)",
                "mem x", "tcp x",
            ),
            widths,
        )
    ]
    speedups = {}
    for row in rows:
        mem_x = tcp_x = "-"
        if isinstance(row["memory/json"], float):
            mem_x = f"{row['memory/json'] / row['memory/binary']:.1f}"
        if isinstance(row["tcp/json"], float):
            tcp_x = f"{row['tcp/json'] / row['tcp/binary']:.1f}"
        speedups[row["label"]] = (mem_x, tcp_x)
        lines.append(
            fmt_row(
                (
                    row["label"],
                    cell(row["memory/json"]), cell(row["memory/msgpack"]),
                    cell(row["memory/binary"]),
                    cell(row["tcp/json"]), cell(row["tcp/msgpack"]),
                    cell(row["tcp/binary"]), cell(row["shm/binary"]),
                    mem_x, tcp_x,
                ),
                widths,
            )
        )
    lines.append(
        "x columns: base64-JSON time / binary-frame time (same path); "
        "msgpack measured only when importable"
    )
    save_result("data_plane_sweep", lines)

    # The acceptance bar: >=5x at the 16 MB snapshot on BOTH paths.
    target = next(r for r in rows if r["label"] == ACCEPTANCE_SIZE)
    for path in ("memory", "tcp"):
        json_t, bin_t = target[f"{path}/json"], target[f"{path}/binary"]
        assert isinstance(json_t, float) and isinstance(bin_t, float)
        assert json_t / bin_t >= ACCEPTANCE_SPEEDUP, (
            f"{path}: json {json_t * 1e3:.1f} ms vs "
            f"binary {bin_t * 1e3:.1f} ms "
            f"({json_t / bin_t:.1f}x < {ACCEPTANCE_SPEEDUP}x)"
        )
    # The shm bar: the ring's single-copy path is no slower than the
    # loopback socket's two-copy path at the acceptance size.
    assert target["shm/binary"] <= target["tcp/binary"], (
        f"shm {target['shm/binary'] * 1e3:.1f} ms vs "
        f"tcp {target['tcp/binary'] * 1e3:.1f} ms at {ACCEPTANCE_SIZE}"
    )
    # Small payloads must not regress to absurdity either: binary stays
    # within the same order of magnitude at 1 KB.
    small = next(r for r in rows if r["label"] == "1KB")
    assert small["tcp/binary"] < small["tcp/json"] * 10
