"""Fig. 17: ResNet-50 strong-scaling curves at batches 512/1024/2048 on
the evaluation cluster — the curves that guided the paper's choice of
16/32/64 workers for the elastic-training experiment.

Paper shape: each batch's curve flattens (diminishing gains) around one
worker per 32 samples; larger batches keep scaling further right.
"""

from conftest import fmt_row

from repro.perfmodel import RESNET50, ThroughputModel
from repro.perfmodel.throughput import EVAL_CLUSTER

WORKERS = [4, 8, 16, 32, 64, 128]
BATCHES = [512, 1024, 2048]


def build_curves():
    model = ThroughputModel(RESNET50, EVAL_CLUSTER)
    return {
        batch: model.strong_scaling_curve(batch, WORKERS) for batch in BATCHES
    }


def test_fig17_resnet_strong_scaling(benchmark, save_result):
    curves = benchmark(build_curves)

    widths = (6,) + (9,) * len(WORKERS)
    lines = [fmt_row(("TBS",) + tuple(WORKERS), widths)]
    for batch, curve in curves.items():
        tps = dict(curve)
        lines.append(fmt_row(
            (batch,) + tuple(f"{tps.get(n, float('nan')):.0f}" for n in WORKERS),
            widths,
        ))
    save_result("fig17_resnet_strong_scaling", lines)

    tp = {batch: dict(curve) for batch, curve in curves.items()}
    # The paper's chosen configuration extracts most of each curve's value:
    # doubling workers beyond the chosen point buys little or hurts.
    for batch, chosen in ((512, 16), (1024, 32), (2048, 64)):
        gain_beyond = tp[batch][chosen * 2] / tp[batch][chosen]
        assert gain_beyond < 1.25, f"TBS {batch}: {gain_beyond:.2f}x beyond plan"
    # Larger batches scale further: throughput at 64 workers grows with TBS.
    at64 = [tp[batch][64] for batch in BATCHES]
    assert at64 == sorted(at64)
