"""Sharded-migration sweep: join-state-transfer time vs. shard owners.

The ISSUE-10 data plane replaces the single-uploader join path with a
multi-peer fan-in: the snapshot blob is cut into ``k`` digest-addressed
shards, each owned by a survivor, and the joiner runs one pipelined
fetch loop per owner concurrently.  This sweep measures the wall-clock
join-state-transfer time for snapshots from 1 MB to 64 MB with 1, 2 and
4 shard owners over every peer transport:

* ``memory`` — ``MemoryPeerHost``, the in-process mesh;
* ``tcp``    — ``TcpPeerHost``, real loopback sockets;
* ``shm``    — ``ShmPeerHost``, the PR-9 shared-memory ring buffers.

Loopback itself is not bandwidth-constrained — on a single machine both
arms push the same bytes through the same CPU, so raw fan-in measures
~1x.  What the paper's fan-in attacks is the *single uploader's uplink*:
one survivor's NIC feeding every joiner.  The sweep models that with a
token-bucket pacer on each owner's serve path (``EMULATED_UPLINK_BPS``,
a congested ~256 Mbit/s share): requests on one owner queue behind its
uplink, while distinct owners transmit concurrently — exactly the
resource the shard plan multiplies.

Each configuration also runs a *delta rejoin*: the joiner holds a stale
snapshot in which one parameter buffer of ten has changed (~10% of the
parameter space) and adopts every shard whose digest still matches,
fetching only the dirty ones.

Acceptance bars (ISSUE 10):

* fan-in with 4 owners is at least 2x faster than the single-owner
  fetch for the 16 MB snapshot on loopback TCP;
* the delta rejoin ships < 20% of the full snapshot's bytes at 16 MB
  and up (shard granularity makes the bound loose at 1 MB, where the
  plan collapses to a handful of chunk-sized shards).

The fetcher verifies every chunk digest, every shard digest and the
whole-blob digest on all paths, so each timed run is also a
bit-identity check against the monolithic encoding.

One observed (unasserted) characteristic worth keeping in the table:
the shm plane's fan-in degrades at 64 MB — four ring buffers streaming
concurrently contend on copies in a way the socket planes do not — so
the shards-vs-rings trade-off is visible rather than averaged away.
"""

import threading
import time

import numpy as np
from conftest import fmt_row

from repro.net import (
    MemoryPeerHost,
    ServerCore,
    ShmPeerHost,
    StateBlob,
    TcpPeerHost,
)
from repro.net.chunks import ShardedFetcher, ShardStore

SIZES = (
    ("1MB", 1_000_000),
    ("16MB", 16_000_000),
    ("64MB", 64_000_000),
)
OWNER_COUNTS = (1, 2, 4)
TRANSPORTS = ("memory", "tcp", "shm")

ACCEPTANCE_SIZE = "16MB"
ACCEPTANCE_SPEEDUP = 2.0
DELTA_OWNERS = 4
#: Delta granularity.  Shards are chunk-aligned, so a contiguous change
#: spanning 10% of the bytes dirties the shards it overlaps — at 20
#: shards that is ~3 of 20 (~15%), comfortably under the 20% bar.
DELTA_SHARDS = 20
DELTA_MAX_SHIPPED = 0.2

EMULATED_UPLINK_BPS = 32 * 1024 * 1024  # ~256 Mbit/s per owner uplink

TRANSFER_ID = "bench/g1"


def make_state(nbytes, params=10):
    """``params`` equal float64 buffers totalling ~``nbytes``."""
    per = max(1, nbytes // params // 8)
    return {
        "params": {
            f"p{i}": np.arange(i, i + per, dtype=np.float64)
            for i in range(params)
        },
        "optimizer": {"lr": 0.05, "velocity": {}},
        "loader": {"cursor": 7, "epoch": 1},
    }


def make_stale(state):
    """A copy of ``state`` with one param of ten changed (~10%)."""
    stale = {
        "params": {k: v.copy() for k, v in state["params"].items()},
        "optimizer": dict(state["optimizer"]),
        "loader": dict(state["loader"]),
    }
    stale["params"]["p4"] += 1.0
    return stale


def make_host(transport):
    if transport == "memory":
        return MemoryPeerHost()
    if transport == "tcp":
        return TcpPeerHost()
    return ShmPeerHost()


class AmStub:
    """The AM side of a sharded join: gates rounds, never serves bytes."""

    node_id = "joiner"

    def request(self, msg_type, payload=None):
        payload = dict(payload or {})
        if payload.get("probe"):
            return {"ok": True, "open": True}
        if payload.get("complete"):
            return {"ok": True}
        raise AssertionError(
            "the AM was asked to serve a chunk — fan-in fell back"
        )

    def close(self):
        pass


class Uplink:
    """Token-bucket pacer for one owner's emulated NIC.

    Serializes that owner's transmissions (pipelined requests queue
    behind each other) without holding a lock across the sleep, so
    distinct owners' uplinks run concurrently.
    """

    def __init__(self, rate=EMULATED_UPLINK_BPS):
        self.rate = rate
        self._lock = threading.Lock()
        self._free_at = 0.0

    def send(self, nbytes):
        with self._lock:
            now = time.monotonic()
            start = max(now, self._free_at)
            self._free_at = start + nbytes / self.rate
            wait = self._free_at - now
        if wait > 0:
            time.sleep(wait)


class ShardedWorld:
    """``owners`` ShardStores serving one frozen blob over ``host``,
    each behind its own emulated uplink."""

    def __init__(self, host, blob, owners):
        self.host = host
        self.blob = blob
        self.stores = []
        self.addrs = []
        for index in range(owners):
            store = ShardStore()
            store.register(TRANSFER_ID, blob)
            uplink = Uplink()

            def handle(message, _store=store, _uplink=uplink):
                reply = _store.handle_fetch(message.sender, message.payload)
                if reply.get("ok"):
                    _uplink.send(len(reply["data"]))
                return reply

            core = ServerCore(handle, node_id=f"owner{index}/peer")
            self.stores.append(store)
            self.addrs.append(host.serve(core, f"owner{index}"))

    def descriptor(self, shard_count):
        descriptor = self.blob.describe(TRANSFER_ID)
        shards = self.blob.shard_plan(shard_count)
        for shard in shards:
            owner = shard["index"] % len(self.addrs)
            shard["owner"] = f"owner{owner}"
            shard["addr"] = self.addrs[owner]
        descriptor["shards"] = shards
        return descriptor

    def connect(self, addr):
        return self.host.connect(addr, node_id="joiner", ack_timeout=2.0)


def fetch_once(world, descriptor, stale_state=None):
    """One timed sharded join; returns ``(seconds, fetcher)``."""
    fetcher = ShardedFetcher(
        AmStub(), connect=world.connect, poll_interval=0.001, timeout=300.0,
    )
    start = time.perf_counter()
    state = fetcher.fetch(descriptor, stale_state=stale_state)
    elapsed = time.perf_counter() - start
    # The digest chain already proved bit-identity to the monolithic
    # encoding; spot-check the decoded views anyway.
    assert state["loader"]["cursor"] == 7
    assert state["params"]["p0"].dtype == np.float64
    return elapsed, fetcher


def timed_fetch(world, descriptor, repeats, stale_state=None):
    best = (float("inf"), None)
    for _ in range(repeats):
        result = fetch_once(world, descriptor, stale_state=stale_state)
        best = min(best, result, key=lambda r: r[0])
    return best


def sweep():
    rows = []
    for transport in TRANSPORTS:
        for label, nbytes in SIZES:
            state = make_state(nbytes)
            stale = make_stale(state)
            blob = StateBlob.encode(state)
            repeats = 3 if nbytes <= 1_000_000 else (
                2 if nbytes <= 16_000_000 else 1
            )
            row = {"transport": transport, "label": label,
                   "total": blob.total_bytes}
            for owners in OWNER_COUNTS:
                host = make_host(transport)
                try:
                    world = ShardedWorld(host, blob, owners)
                    elapsed, _ = timed_fetch(
                        world, world.descriptor(owners), repeats
                    )
                    row[f"full/{owners}"] = elapsed
                finally:
                    host.close()
            host = make_host(transport)
            try:
                world = ShardedWorld(host, blob, DELTA_OWNERS)
                descriptor = world.descriptor(DELTA_SHARDS)
                elapsed, fetcher = timed_fetch(
                    world, descriptor, repeats, stale_state=stale
                )
                row["delta"] = elapsed
                row["delta_shipped"] = fetcher.stats.get(
                    "net.shards.bytes_fetched", 0
                )
                row["delta_skipped"] = fetcher.stats.get(
                    "net.shards.delta_bytes_skipped", 0
                )
            finally:
                host.close()
            rows.append(row)
    return rows


def test_sharded_migration_sweep(benchmark, save_result):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    widths = (8, 6, 12, 12, 12, 8, 11, 13)
    lines = [
        fmt_row(
            (
                "Plane", "Size",
                "1-owner(ms)", "2-owner(ms)", "4-owner(ms)", "fan-in x",
                "delta(ms)", "delta shipped",
            ),
            widths,
        )
    ]
    for row in rows:
        speedup = row["full/1"] / row["full/4"]
        shipped_pct = 100.0 * row["delta_shipped"] / row["total"]
        lines.append(
            fmt_row(
                (
                    row["transport"], row["label"],
                    f"{row['full/1'] * 1e3:.1f}",
                    f"{row['full/2'] * 1e3:.1f}",
                    f"{row['full/4'] * 1e3:.1f}",
                    f"{speedup:.1f}",
                    f"{row['delta'] * 1e3:.1f}",
                    f"{shipped_pct:.1f}%",
                ),
                widths,
            )
        )
    lines.append(
        "fan-in x: 1-owner time / 4-owner time (same plane+size); delta: "
        f"rejoin with 1/{DELTA_SHARDS} params changed, {DELTA_OWNERS} owners, "
        f"{DELTA_SHARDS}-shard plan; every owner uplink paced to "
        f"{EMULATED_UPLINK_BPS // (1024 * 1024)} MiB/s"
    )
    save_result("sharded_migration_sweep", lines)

    # Acceptance: 4-owner fan-in >= 2x the single-owner fetch at 16 MB
    # on loopback TCP (the paper's congested-uplink scenario).
    target = next(
        r for r in rows
        if r["transport"] == "tcp" and r["label"] == ACCEPTANCE_SIZE
    )
    speedup = target["full/1"] / target["full/4"]
    assert speedup >= ACCEPTANCE_SPEEDUP, (
        f"tcp {ACCEPTANCE_SIZE}: 1-owner {target['full/1'] * 1e3:.1f} ms vs "
        f"4-owner {target['full/4'] * 1e3:.1f} ms "
        f"({speedup:.2f}x < {ACCEPTANCE_SPEEDUP}x)"
    )
    # Acceptance: the delta rejoin ships < 20% of the snapshot when ~10%
    # of the parameter space changed, on every plane at 16 MB and up.
    for row in rows:
        # Adopted + fetched must tile the blob exactly, always.
        assert row["delta_shipped"] + row["delta_skipped"] == row["total"]
        if row["label"] == "1MB":
            continue  # the plan collapses to a few chunk-sized shards
        assert row["delta_shipped"] < DELTA_MAX_SHIPPED * row["total"], (
            f"{row['transport']} {row['label']}: shipped "
            f"{row['delta_shipped']} of {row['total']} bytes"
        )
