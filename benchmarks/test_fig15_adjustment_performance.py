"""Fig. 15: migration / scale-in / scale-out latency, Elan vs S&R.

Paper shape: Elan completes every adjustment in about a second; S&R is
~4x slower on migration and one to two orders of magnitude slower on
scaling (start + restart sit on its critical path).
"""

from conftest import fmt_row

from repro.baselines import ElanAdjustmentModel, ShutdownRestartModel
from repro.perfmodel import MODEL_LABELS

#: (kind, M -> N) scales in the style of the paper's Fig. 15 panels.
CASES = {
    "migration": [(4, 4), (8, 8), (16, 16)],
    "scale_in": [(8, 4), (16, 8), (32, 16)],
    "scale_out": [(4, 8), (8, 16), (16, 32)],
}
REPEATS = 5


def run_measurements():
    rows = []
    for kind, scales in CASES.items():
        for old, new in scales:
            for label, spec in MODEL_LABELS.items():
                elan_times, sr_times = [], []
                for seed in range(REPEATS):
                    elan_times.append(
                        ElanAdjustmentModel(seed=seed).adjustment_time(
                            kind, spec, old, new
                        ).total
                    )
                    sr_times.append(
                        ShutdownRestartModel(seed=seed).adjustment_time(
                            kind, spec, old, new
                        ).total
                    )
                elan = sum(elan_times) / REPEATS
                sr = sum(sr_times) / REPEATS
                rows.append((kind, f"{old}->{new}", label, elan, sr, sr / elan))
    return rows


def test_fig15_adjustment_performance(benchmark, save_result):
    rows = benchmark.pedantic(run_measurements, rounds=1, iterations=1)

    widths = (10, 8, 5, 9, 9, 8)
    lines = [fmt_row(
        ("Case", "Scale", "Model", "Elan(s)", "S&R(s)", "Ratio"), widths
    )]
    for kind, scale, label, elan, sr, ratio in rows:
        lines.append(fmt_row(
            (kind, scale, label, f"{elan:.2f}", f"{sr:.2f}", f"{ratio:.0f}x"),
            widths,
        ))
    save_result("fig15_adjustment_performance", lines)

    for kind, scale, label, elan, sr, ratio in rows:
        assert elan < 1.5, f"{kind}/{scale}/{label}: Elan {elan:.2f}s not ~1s"
        if kind == "migration":
            assert 2.0 < ratio < 10.0, f"migration ratio {ratio:.1f}"
        else:
            assert 10.0 < ratio < 150.0, f"{kind} ratio {ratio:.1f}"
