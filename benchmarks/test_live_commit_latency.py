"""Live measurement: the wall-clock cost of an in-process commit.

The Fig. 15 numbers come from calibrated models of the paper's hardware;
this benchmark measures the *live runtime's* steps 4-5 (state capture via
hooks, replication, group reconstruction, repartition, scaling decision)
on real threads.  It cannot reproduce the paper's absolute seconds — the
state is a toy MLP and the transport is memory — but it demonstrates that
the protocol machinery itself adds only milliseconds on top of the data
movement, i.e. the ~1 s adjustments in Fig. 15 are transfer-bound, not
protocol-bound.
"""

import statistics
import threading
import time

from conftest import fmt_row

from repro.coordination import ElasticRuntime
from repro.coordination.messages import MessageType
from repro.net import (
    JobSpec,
    NetworkedApplicationMaster,
    WorkerAgent,
    memory_link,
    tcp_link,
)
from repro.training import make_classification

ADJUSTMENTS = 6


def run_live_job():
    dataset = make_classification(train_size=1024, test_size=256, seed=61)
    runtime = ElasticRuntime(
        dataset, initial_workers=2, total_batch_size=64, seed=61
    )
    runtime.start()
    committed = 0
    for step in range(ADJUSTMENTS):
        runtime.wait_until_iteration(runtime.snapshot()["iteration"] + 3)
        if step % 2 == 0:
            runtime.scale_out(2)
        else:
            runtime.scale_in(2)
        committed += 1
        assert runtime.wait_for_adjustments(committed)
    runtime.stop()
    return runtime.commit_latencies


def test_live_commit_latency(benchmark, save_result):
    latencies = benchmark.pedantic(run_live_job, rounds=1, iterations=1)

    widths = (10, 12)
    lines = [fmt_row(("Commit", "Latency (ms)"), widths)]
    for index, latency in enumerate(latencies):
        lines.append(fmt_row((index, f"{latency * 1e3:.2f}"), widths))
    lines.append(
        f"mean {statistics.mean(latencies) * 1e3:.2f} ms, "
        f"max {max(latencies) * 1e3:.2f} ms over {len(latencies)} commits"
    )
    save_result("live_commit_latency", lines)

    assert len(latencies) == ADJUSTMENTS
    # Protocol overhead is milliseconds — adjustments are transfer-bound.
    assert max(latencies) < 0.25


def run_networked_job(transport):
    """One scale-out commit on the networked AM over either transport."""
    spec = JobSpec(
        iterations=24, coordination_interval=4, iteration_sleep=0.005,
    )
    master = NetworkedApplicationMaster(spec, ["w0", "w1"])
    server = master.serve_tcp() if transport == "tcp" else None

    def link(node_id, ack_timeout=0.5):
        if transport == "tcp":
            client, _ = tcp_link(
                server.host, server.port, node_id, ack_timeout=ack_timeout
            )
            return client
        return memory_link(master.core, node_id, ack_timeout=ack_timeout)

    results = {}
    threads = {}

    def run(worker):
        client = link(worker)
        try:
            results[worker] = WorkerAgent(
                worker, client, poll_interval=0.01
            ).run()
        finally:
            client.close()

    def start(worker):
        threads[worker] = threading.Thread(
            target=run, args=(worker,), daemon=True
        )
        threads[worker].start()

    for worker in ("w0", "w1"):
        start(worker)
    driver = link("driver", ack_timeout=2.0)
    while driver.request(MessageType.STATUS)["iteration"] < 4:
        time.sleep(0.01)
    assert driver.request(
        MessageType.ADJUSTMENT_REQUEST,
        {"kind": "scale_out", "add": ["w2", "w3"]},
    )["accepted"]
    for worker in ("w2", "w3"):
        start(worker)
    for thread in threads.values():
        thread.join(timeout=60)
    status = driver.request(MessageType.STATUS)
    driver.close()
    master.close()
    assert status["complete"] and status["adjustments_committed"] == 1
    assert len(set(status["digests"].values())) == 1
    return status["commit_latencies"]


def test_networked_commit_latency(benchmark, save_result):
    """In-memory vs loopback-TCP commit latency on the networked AM.

    One scale-out (2 -> 4 workers) per transport; the commit latency is
    request -> finished adjustment, including the joiners' report polls
    and the state replication round-trip over the wire.
    """
    memory_latencies = run_networked_job("memory")
    tcp_latencies = benchmark.pedantic(
        run_networked_job, args=("tcp",), rounds=1, iterations=1
    )

    widths = (10, 14, 14)
    lines = [fmt_row(("Commit", "memory (ms)", "tcp (ms)"), widths)]
    for index in range(max(len(memory_latencies), len(tcp_latencies))):
        def cell(values):
            return (
                f"{values[index] * 1e3:.2f}" if index < len(values) else "-"
            )
        lines.append(
            fmt_row((index, cell(memory_latencies), cell(tcp_latencies)),
                    widths)
        )
    lines.append(
        f"memory mean {statistics.mean(memory_latencies) * 1e3:.2f} ms; "
        f"tcp mean {statistics.mean(tcp_latencies) * 1e3:.2f} ms "
        f"(loopback sockets, JSON codec)"
    )
    save_result("networked_commit_latency", lines)

    assert len(memory_latencies) == 1
    assert len(tcp_latencies) == 1
    # Loose bound: one commit (including joiner polling at 10 ms cadence
    # and snapshot replication) stays well under a second over loopback.
    assert max(tcp_latencies) < 5.0
