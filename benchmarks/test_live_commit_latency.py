"""Live measurement: the wall-clock cost of an in-process commit.

The Fig. 15 numbers come from calibrated models of the paper's hardware;
this benchmark measures the *live runtime's* steps 4-5 (state capture via
hooks, replication, group reconstruction, repartition, scaling decision)
on real threads.  It cannot reproduce the paper's absolute seconds — the
state is a toy MLP and the transport is memory — but it demonstrates that
the protocol machinery itself adds only milliseconds on top of the data
movement, i.e. the ~1 s adjustments in Fig. 15 are transfer-bound, not
protocol-bound.
"""

import statistics

from conftest import fmt_row

from repro.coordination import ElasticRuntime
from repro.training import make_classification

ADJUSTMENTS = 6


def run_live_job():
    dataset = make_classification(train_size=1024, test_size=256, seed=61)
    runtime = ElasticRuntime(
        dataset, initial_workers=2, total_batch_size=64, seed=61
    )
    runtime.start()
    committed = 0
    for step in range(ADJUSTMENTS):
        runtime.wait_until_iteration(runtime.snapshot()["iteration"] + 3)
        if step % 2 == 0:
            runtime.scale_out(2)
        else:
            runtime.scale_in(2)
        committed += 1
        assert runtime.wait_for_adjustments(committed)
    runtime.stop()
    return runtime.commit_latencies


def test_live_commit_latency(benchmark, save_result):
    latencies = benchmark.pedantic(run_live_job, rounds=1, iterations=1)

    widths = (10, 12)
    lines = [fmt_row(("Commit", "Latency (ms)"), widths)]
    for index, latency in enumerate(latencies):
        lines.append(fmt_row((index, f"{latency * 1e3:.2f}"), widths))
    lines.append(
        f"mean {statistics.mean(latencies) * 1e3:.2f} ms, "
        f"max {max(latencies) * 1e3:.2f} ms over {len(latencies)} commits"
    )
    save_result("live_commit_latency", lines)

    assert len(latencies) == ADJUSTMENTS
    # Protocol overhead is milliseconds — adjustments are transfer-bound.
    assert max(latencies) < 0.25
