"""Fig. 18: top-1 accuracy of static vs elastic ResNet-50 training.

Paper shape: 512 (16) reaches 75.89%; 512-2048 (Elastic) reaches 75.87%
— the hybrid scaling mechanism keeps model performance through two
batch-size doublings.
"""

import pytest
from conftest import fmt_row

from repro.core import ElasticTrainingExperiment


def build_runs():
    experiment = ElasticTrainingExperiment(seed=0)
    return experiment.static_baseline(), experiment.elastic()


def test_fig18_elastic_accuracy(benchmark, save_result):
    static, elastic = benchmark(build_runs)

    epochs = list(range(0, 91, 10))
    widths = (8, 12, 12)
    lines = [fmt_row(("Epoch", static.label, elastic.label), (8, 12, 18))]
    for epoch in epochs:
        lines.append(fmt_row(
            (
                epoch,
                f"{static.accuracy_model.accuracy_at_epoch(epoch, static.accuracy_penalty):.4f}",
                f"{elastic.accuracy_model.accuracy_at_epoch(epoch, elastic.accuracy_penalty):.4f}",
            ),
            (8, 12, 18),
        ))
    lines.append(
        f"final: static {static.final_accuracy:.4f} "
        f"elastic {elastic.final_accuracy:.4f} "
        f"(paper: 0.7589 vs 0.7587)"
    )
    save_result("fig18_elastic_accuracy", lines)

    assert static.final_accuracy == pytest.approx(0.7589, abs=0.005)
    assert abs(static.final_accuracy - elastic.final_accuracy) < 0.002

