"""Table I: the DL models used for the scaling-strategy analysis."""

from conftest import fmt_row

from repro.perfmodel import MODEL_ZOO


def test_table1_model_zoo(benchmark, save_result):
    def build():
        return [
            (
                spec.name,
                spec.family,
                spec.domain,
                f"{spec.parameters / 1e6:.0f}M",
                spec.dataset,
            )
            for spec in MODEL_ZOO.values()
        ]

    rows = benchmark(build)
    widths = (14, 10, 6, 8, 10)
    lines = [fmt_row(("Model", "Type", "Domain", "#Params", "Dataset"), widths)]
    lines += [fmt_row(row, widths) for row in rows]
    save_result("table1_model_zoo", lines)

    assert len(rows) == 5
    by_name = {row[0]: row for row in rows}
    assert by_name["VGG-19"][3] == "143M"
    assert by_name["MobileNet-v2"][3] == "3M"
    assert by_name["Seq2Seq"][3] == "45M"
    assert by_name["Transformer"][3] == "47M"
