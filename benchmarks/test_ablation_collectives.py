"""Ablation: allreduce algorithm choice (ring vs tree vs hierarchical).

Elan rides on collective communication; this sweep shows why the
throughput model assumes ring allreduce for gradient-sized messages
(bandwidth-bound) and where the alternatives win: trees for tiny
latency-bound messages, the two-level hierarchy once rings span nodes
with an expensive per-hop cost.
"""

from conftest import fmt_row

from repro.perfmodel import (
    RESNET50,
    best_algorithm,
    hierarchical_allreduce_time,
    ring_allreduce_time,
    tree_allreduce_time,
)
from repro.perfmodel.calibration import (
    EVAL_ALLREDUCE_HOP_LATENCY,
    EVAL_INTER_NODE_BANDWIDTH,
    INTRA_NODE_BUS_BANDWIDTH,
)

KB, MB = 1024, 1024**2
SIZES = [4 * KB, 256 * KB, 4 * MB, 104 * MB]  # up to a ResNet-50 gradient
WORKERS = [8, 32, 128]


def sweep():
    rows = []
    for workers in WORKERS:
        for size in SIZES:
            ring = ring_allreduce_time(
                workers, size, EVAL_INTER_NODE_BANDWIDTH,
                EVAL_ALLREDUCE_HOP_LATENCY,
            )
            tree = tree_allreduce_time(
                workers, size, EVAL_INTER_NODE_BANDWIDTH,
                EVAL_ALLREDUCE_HOP_LATENCY,
            )
            hier = hierarchical_allreduce_time(
                workers, size,
                intra_bandwidth=INTRA_NODE_BUS_BANDWIDTH,
                inter_bandwidth=EVAL_INTER_NODE_BANDWIDTH,
                hop_latency=EVAL_ALLREDUCE_HOP_LATENCY,
            )
            rows.append((workers, size, ring, tree, hier))
    return rows


def test_ablation_collectives(benchmark, save_result):
    rows = benchmark(sweep)

    widths = (8, 10, 11, 11, 11)
    lines = [fmt_row(("Workers", "Size", "Ring (s)", "Tree (s)", "Hier (s)"),
                     widths)]
    for workers, size, ring, tree, hier in rows:
        label = f"{size // KB}KB" if size < MB else f"{size // MB}MB"
        lines.append(fmt_row(
            (workers, label, f"{ring:.4f}", f"{tree:.4f}", f"{hier:.4f}"),
            widths,
        ))
    save_result("ablation_collectives", lines)

    by_key = {(w, s): (r, t, h) for w, s, r, t, h in rows}
    # Tiny messages on big rings: tree wins over ring.
    ring, tree, _h = by_key[(128, 4 * KB)]
    assert tree < ring
    # Gradient-sized messages in one node: ring wins over tree.
    assert best_algorithm(8, 104 * MB, INTRA_NODE_BUS_BANDWIDTH) == "ring"
    # Cross-node gradient allreduce: the hierarchy beats the flat ring.
    ring, _tree, hier = by_key[(128, 104 * MB)]
    assert hier < ring
