"""Fig. 22: the elastic policy under Ideal / Elan / S&R elasticity.

Paper shape: Elan performs like the ideal system (free, instantaneous
adjustments); S&R's heavy adjustments cost ~6% extra average JCT —
high-performance elasticity is *necessary* to profit from elastic
scheduling.
"""

from conftest import fmt_row

from repro.scheduling import (
    ClusterSimulator,
    ElanCosts,
    ElasticFifoPolicy,
    IdealCosts,
    ShutdownRestartCosts,
    generate_trace,
)

SEEDS = (1, 2, 3)
GPUS = 128


def run_all():
    metrics = {}
    for costs_cls in (IdealCosts, ElanCosts, ShutdownRestartCosts):
        jcts, makespans = [], []
        for seed in SEEDS:
            trace = generate_trace(seed=seed)
            result = ClusterSimulator(
                trace, ElasticFifoPolicy(), total_gpus=GPUS,
                costs=costs_cls() if costs_cls is IdealCosts
                else costs_cls(seed=seed),
            ).run()
            jcts.append(result.average_jct)
            makespans.append(result.makespan)
        metrics[costs_cls().name] = (
            sum(jcts) / len(jcts),
            sum(makespans) / len(makespans),
        )
    return metrics


def test_fig22_system_comparison(benchmark, save_result):
    metrics = benchmark.pedantic(run_all, rounds=1, iterations=1)

    widths = (8, 14, 16, 12)
    lines = [fmt_row(("System", "Avg JCT (s)", "Makespan (s)", "JCT vs ideal"),
                     widths)]
    for name, (jct, makespan) in metrics.items():
        lines.append(fmt_row(
            (name, f"{jct:.0f}", f"{makespan:.0f}",
             f"+{jct / metrics['ideal'][0] - 1:.1%}"),
            widths,
        ))
    save_result("fig22_system_comparison", lines)

    ideal_jct, _ = metrics["ideal"]
    elan_jct, _ = metrics["elan"]
    sr_jct, _ = metrics["sr"]
    # Elan within 1% of ideal.
    assert elan_jct < 1.01 * ideal_jct
    # S&R visibly worse than Elan (paper: +6%; the gap grows with longer
    # traces — ours is down-sampled like the paper's).
    assert sr_jct > 1.02 * elan_jct
