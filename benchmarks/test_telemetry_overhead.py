"""Live measurement: what telemetry shipping costs the training loop.

The fleet telemetry plane ships trace/metric deltas from a background
thread over the worker's existing AM link, so the training loop should
pay (almost) nothing: the shipper never blocks an iteration, and the
per-tick work is one bounded ``collect_events`` pass plus one request.
This benchmark runs the same two-worker networked job with shipping
off, at the 1 s default, and at an aggressive 100 ms cadence, and
compares the mean ``worker.iteration`` span time — the ISSUE's
acceptance bar is < 5 % overhead at the default interval.
"""

import threading

from conftest import fmt_row

from repro.net import JobSpec, NetworkedApplicationMaster, WorkerAgent, memory_link
from repro.observability import MetricRegistry, Tracer

WORKERS = ("w0", "w1")
ITERATIONS = 40
ITERATION_SLEEP = 0.01


def run_job(telemetry_interval):
    """One complete job; returns (mean_iteration_s, ships, events)."""
    spec = JobSpec(
        iterations=ITERATIONS, coordination_interval=8,
        iteration_sleep=ITERATION_SLEEP, ring_enabled=False,
        telemetry_interval=telemetry_interval,
    )
    master = NetworkedApplicationMaster(spec, list(WORKERS))
    tracers = {}
    agents = {}
    errors = {}

    def run_worker(worker_id):
        tracer = Tracer(process=worker_id)
        metrics = MetricRegistry()
        tracers[worker_id] = tracer
        link = memory_link(
            master.core, worker_id, ack_timeout=0.5,
            tracer=tracer, metrics=metrics,
        )
        agent = WorkerAgent(
            worker_id, link, poll_interval=0.02,
            tracer=tracer, metrics=metrics,
        )
        agents[worker_id] = agent
        try:
            agent.run()
        except Exception as exc:
            errors[worker_id] = exc
        finally:
            link.close()

    threads = [
        threading.Thread(target=run_worker, args=(w,), daemon=True)
        for w in WORKERS
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120.0)
    master.close()
    assert not errors, errors

    durations = [
        span.duration
        for tracer in tracers.values()
        for span in tracer.spans("worker.iteration")
    ]
    assert len(durations) == len(WORKERS) * ITERATIONS
    ships = sum(
        a.telemetry.ships for a in agents.values() if a.telemetry is not None
    )
    events = sum(
        a.telemetry.events_shipped
        for a in agents.values()
        if a.telemetry is not None
    )
    return sum(durations) / len(durations), ships, events


def run_sweep():
    return {
        label: run_job(interval)
        for label, interval in (
            ("off", 0.0), ("1s", 1.0), ("100ms", 0.1),
        )
    }


def test_telemetry_overhead(benchmark, save_result):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    base_mean, _, _ = results["off"]
    widths = (10, 14, 12, 8, 8)
    lines = [fmt_row(
        ("Shipping", "Mean iter (ms)", "Overhead", "Ships", "Events"),
        widths,
    )]
    for label in ("off", "1s", "100ms"):
        mean, ships, events = results[label]
        overhead = (mean - base_mean) / base_mean
        lines.append(fmt_row(
            (label, f"{mean * 1e3:.3f}", f"{overhead * 100:+.2f}%",
             ships, events),
            widths,
        ))
    save_result("telemetry_overhead", lines)

    # Shipping actually happened at both live cadences.
    assert results["1s"][1] >= 1
    assert results["100ms"][1] >= 2
    assert results["100ms"][2] > 0
    # The acceptance bar: the default 1 s cadence perturbs the mean
    # iteration by under 5 %.
    overhead_default = (results["1s"][0] - base_mean) / base_mean
    assert overhead_default < 0.05, results
