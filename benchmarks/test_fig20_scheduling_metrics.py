"""Fig. 20: JPT / JCT / makespan under FIFO, BF, E-FIFO, E-BF.

Paper shape (3 simulation runs): elasticity reduces job pending time by
43%+, job completion time by 25%+ and makespan by 21%+ relative to the
static policies.
"""

from conftest import fmt_row

from repro.scheduling import (
    BackfillPolicy,
    ClusterSimulator,
    ElanCosts,
    ElasticBackfillPolicy,
    ElasticFifoPolicy,
    FifoPolicy,
    generate_trace,
    summarize,
)

SEEDS = (1, 2, 3)
GPUS = 128


def run_all():
    summaries = {}
    for policy_cls in (FifoPolicy, BackfillPolicy, ElasticFifoPolicy,
                       ElasticBackfillPolicy):
        results = []
        for seed in SEEDS:
            trace = generate_trace(seed=seed)
            results.append(
                ClusterSimulator(
                    trace, policy_cls(), total_gpus=GPUS, costs=ElanCosts()
                ).run()
            )
        summaries[policy_cls().name] = summarize(results)
    return summaries


def test_fig20_scheduling_metrics(benchmark, save_result):
    summaries = benchmark.pedantic(run_all, rounds=1, iterations=1)

    widths = (8, 16, 16, 18)
    lines = [fmt_row(("Policy", "JPT (s)", "JCT (s)", "Makespan (s)"), widths)]
    for name, summary in summaries.items():
        lines.append(fmt_row(
            (
                name,
                f"{summary['jpt_mean']:.0f}±{summary['jpt_std']:.0f}",
                f"{summary['jct_mean']:.0f}±{summary['jct_std']:.0f}",
                f"{summary['makespan_mean']:.0f}±{summary['makespan_std']:.0f}",
            ),
            widths,
        ))
    for static, elastic in (("fifo", "e-fifo"), ("bf", "e-bf")):
        jpt = 1 - summaries[elastic]["jpt_mean"] / summaries[static]["jpt_mean"]
        jct = 1 - summaries[elastic]["jct_mean"] / summaries[static]["jct_mean"]
        mksp = 1 - (
            summaries[elastic]["makespan_mean"]
            / summaries[static]["makespan_mean"]
        )
        lines.append(
            f"{elastic} vs {static}: JPT -{jpt:.0%}  JCT -{jct:.0%}  "
            f"makespan -{mksp:.0%}"
        )
    save_result("fig20_scheduling_metrics", lines)

    for static, elastic in (("fifo", "e-fifo"), ("bf", "e-bf")):
        assert summaries[elastic]["jpt_mean"] < (
            0.57 * summaries[static]["jpt_mean"]
        ), "JPT reduction below 43%"
        assert summaries[elastic]["jct_mean"] < (
            0.80 * summaries[static]["jct_mean"]
        ), "JCT reduction below 20%"
        assert summaries[elastic]["makespan_mean"] < (
            0.90 * summaries[static]["makespan_mean"]
        ), "makespan reduction below 10%"
