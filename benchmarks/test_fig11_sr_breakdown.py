"""Figs. 10/11: the Shutdown-Restart timeline and its phase breakdown.

Paper shape: the long start + initialization phases dominate the S&R
timeline — the observation that motivates the asynchronous coordination
mechanism.

The breakdown is built through the tracing layer: the S&R phase
sequence is replayed as consecutive ``sr.<phase>`` spans on a
retrospective tracer, and the table/assertions are derived from the
trace — the same pipeline a recorded live trace would flow through.
"""

from conftest import fmt_row

from repro.baselines import ShutdownRestartModel
from repro.observability import Tracer
from repro.perfmodel import RESNET50

PHASE_ORDER = ["coordinate", "checkpoint", "shutdown", "start", "init", "load"]


def trace_sr_timeline(timing) -> Tracer:
    """Replay the S&R phase sequence as consecutive ``sr.<phase>`` spans."""
    tracer = Tracer(process="sr-breakdown")
    cursor = 0.0
    for phase in PHASE_ORDER:
        seconds = timing.phases.get(phase, 0.0)
        tracer.add_span(f"sr.{phase}", cursor, cursor + seconds,
                        track="sr", cat="adjust")
        cursor += seconds
    return tracer


def test_fig11_sr_breakdown(benchmark, save_result):
    model = ShutdownRestartModel(seed=0)
    benchmark(
        lambda: ShutdownRestartModel(seed=0).adjustment_time(
            "scale_out", RESNET50, 8, 16
        )
    )
    timing = model.adjustment_time("scale_out", RESNET50, 8, 16)
    tracer = trace_sr_timeline(timing)

    durations = {
        span.name.removeprefix("sr."): span.duration
        for span in tracer.spans()
    }
    total = sum(durations.values())

    widths = (12, 10, 8)
    lines = [fmt_row(("Phase", "Time (s)", "Share"), widths)]
    for phase in PHASE_ORDER:
        seconds = durations[phase]
        lines.append(fmt_row(
            (phase, f"{seconds:.2f}", f"{seconds / total:.0%}"), widths
        ))
    lines.append(fmt_row(("total", f"{total:.2f}", "100%"), widths))
    save_result("fig11_sr_breakdown", lines)

    # The trace reproduces the model's timing exactly ...
    assert abs(total - timing.total) < 1e-9
    spans = sorted(tracer.spans(), key=lambda s: s.start)
    for earlier, later in zip(spans, spans[1:]):
        assert abs(later.start - earlier.end) < 1e-9  # contiguous phases
    # ... and shows the paper's shape: start+init dominate.
    startup = durations["start"] + durations["init"]
    assert startup > 0.6 * total
    assert durations["checkpoint"] > durations["coordinate"]
    assert set(durations) == set(PHASE_ORDER)
