"""Figs. 10/11: the Shutdown-Restart timeline and its phase breakdown.

Paper shape: the long start + initialization phases dominate the S&R
timeline — the observation that motivates the asynchronous coordination
mechanism.
"""

from conftest import fmt_row

from repro.baselines import ShutdownRestartModel
from repro.perfmodel import RESNET50

PHASE_ORDER = ["coordinate", "checkpoint", "shutdown", "start", "init", "load"]


def test_fig11_sr_breakdown(benchmark, save_result):
    model = ShutdownRestartModel(seed=0)
    timing = benchmark(
        lambda: ShutdownRestartModel(seed=0).adjustment_time(
            "scale_out", RESNET50, 8, 16
        )
    )
    timing = model.adjustment_time("scale_out", RESNET50, 8, 16)

    widths = (12, 10, 8)
    lines = [fmt_row(("Phase", "Time (s)", "Share"), widths)]
    for phase in PHASE_ORDER:
        seconds = timing.phases.get(phase, 0.0)
        lines.append(fmt_row(
            (phase, f"{seconds:.2f}", f"{seconds / timing.total:.0%}"), widths
        ))
    lines.append(fmt_row(("total", f"{timing.total:.2f}", "100%"), widths))
    save_result("fig11_sr_breakdown", lines)

    startup = timing.phases["start"] + timing.phases["init"]
    assert startup > 0.6 * timing.total  # start+init dominate
    assert timing.phases["checkpoint"] > timing.phases["coordinate"]
    assert set(timing.phases) == set(PHASE_ORDER)
