"""Fig. 5: accuracy vs total batch size, Default vs Hybrid.

Two independent reproductions:

1. **Real training** — the numpy trainer runs the fixed-epoch experiment
   from scratch (the MobileNet-v2/Cifar100 analog on a synthetic task):
   the Default (fixed-LR) curve decays with batch size; the Hybrid curve
   (progressive linear scaling) holds it, dipping only at the extreme.
2. **Calibrated model** — the analytic convergence model evaluated at the
   paper's exact batch range 2^5..2^12.
"""

from conftest import fmt_row

from repro.perfmodel import MOBILENETV2_CIFAR100, AccuracyModel, LrPolicy
from repro.training import make_classification, train_single

REAL_BATCHES = [32, 128, 512, 2048, 4096]
MODEL_BATCHES = [2**k for k in range(5, 13)]


def run_real_experiment():
    dataset = make_classification(train_size=8192, test_size=2048, seed=1)
    results = {}
    for batch in REAL_BATCHES:
        default = train_single(
            dataset, batch, epochs=15, base_lr=0.01, lr_scaling="fixed", seed=2
        )
        hybrid = train_single(
            dataset, batch, epochs=15, base_lr=0.01,
            lr_scaling="progressive", seed=2,
        )
        results[batch] = (default.test_accuracy, hybrid.test_accuracy)
    return results


def test_fig05_real_training(benchmark, save_result):
    results = benchmark.pedantic(run_real_experiment, rounds=1, iterations=1)

    widths = (8, 10, 10)
    lines = [fmt_row(("TBS", "Default", "Hybrid"), widths)]
    for batch, (default, hybrid) in results.items():
        lines.append(fmt_row(
            (batch, f"{default:.3f}", f"{hybrid:.3f}"), widths
        ))
    save_result("fig05_accuracy_vs_batch_real", lines)

    defaults = [results[b][0] for b in REAL_BATCHES]
    hybrids = [results[b][1] for b in REAL_BATCHES]
    # Default decays monotonically and collapses at the extreme.
    assert defaults == sorted(defaults, reverse=True)
    assert defaults[-1] < defaults[0] - 0.2
    # Hybrid holds accuracy within a few points of the small-batch run.
    assert min(hybrids) > defaults[0] - 0.08
    # Hybrid beats Default at every enlarged batch.
    for batch in REAL_BATCHES[1:]:
        assert results[batch][1] > results[batch][0]


def test_fig05_calibrated_model(benchmark, save_result):
    model = AccuracyModel(MOBILENETV2_CIFAR100)

    def evaluate():
        return {
            batch: (
                model.final_accuracy(batch, LrPolicy.FIXED),
                model.final_accuracy(batch, LrPolicy.PROGRESSIVE_LINEAR),
            )
            for batch in MODEL_BATCHES
        }

    results = benchmark(evaluate)
    widths = (8, 10, 10)
    lines = [fmt_row(("TBS", "Default", "Hybrid"), widths)]
    for batch, (default, hybrid) in results.items():
        lines.append(fmt_row((batch, f"{default:.3f}", f"{hybrid:.3f}"), widths))
    save_result("fig05_accuracy_vs_batch_model", lines)

    base = results[32][1]
    # Hybrid flat through 2^11, dips at 2^12 (paper: "still goes down when
    # the total batch size is too large (2^12)").
    for batch in MODEL_BATCHES[:-1]:
        assert abs(results[batch][1] - base) < 1e-6
    assert results[4096][1] < base - 0.005
    defaults = [results[b][0] for b in MODEL_BATCHES]
    assert defaults == sorted(defaults, reverse=True)
