"""Extension: transient capacity (spot instances, §VI-C's cloud remark).

The same workload on a cluster whose capacity swings 96 <-> 48 GPUs every
six hours: static scheduling suffers preemption kills at each dip, while
elastic jobs shrink in place and re-expand — no evictions, much lower
completion times.
"""

from conftest import fmt_row

from repro.scheduling import (
    ClusterSimulator,
    ElanCosts,
    ElasticFifoPolicy,
    FifoPolicy,
    generate_trace,
)

CHURN = [
    (hour * 3600.0, 96 if (hour // 6) % 2 == 0 else 48)
    for hour in range(0, 72, 6)
]


def run_both():
    trace = generate_trace(num_jobs=60, seed=77)
    out = {}
    for policy in (FifoPolicy(), ElasticFifoPolicy()):
        out[policy.name] = ClusterSimulator(
            trace, policy, total_gpus=96,
            capacity_profile=CHURN, costs=ElanCosts(),
        ).run()
    return out


def test_ablation_spot_capacity(benchmark, save_result):
    results = benchmark.pedantic(run_both, rounds=1, iterations=1)

    widths = (8, 12, 12, 10, 9)
    lines = [fmt_row(("Policy", "JCT (s)", "JPT (s)", "Evictions",
                      "Adjusts"), widths)]
    for name, result in results.items():
        lines.append(fmt_row(
            (name, f"{result.average_jct:.0f}", f"{result.average_jpt:.0f}",
             result.evictions, result.adjustments),
            widths,
        ))
    save_result("ablation_spot_capacity", lines)

    static, elastic = results["fifo"], results["e-fifo"]
    assert elastic.evictions == 0  # shrink-in-place absorbs every dip
    assert static.evictions >= 1  # static pays preemption kills
    assert elastic.average_jct < 0.7 * static.average_jct


def test_capacity_planning_savings(benchmark, save_result):
    """Extension: GPUs needed for the same JCT target, static vs elastic."""
    from repro.scheduling import capacity_sweep, elasticity_hardware_savings

    def compute():
        trace = generate_trace(num_jobs=60, seed=5)
        static_at_96 = capacity_sweep(trace, FifoPolicy(), [96])[0]
        savings = elasticity_hardware_savings(
            trace, FifoPolicy(), ElasticFifoPolicy(),
            static_at_96.average_jct, [48, 64, 96, 128],
        )
        return static_at_96, savings

    static_at_96, savings = benchmark.pedantic(compute, rounds=1, iterations=1)
    lines = [
        f"target: average JCT <= {static_at_96.average_jct:.0f} s "
        f"(what static FIFO delivers on 96 GPUs)",
        f"GPUs needed: fifo={savings['fifo']}  e-fifo={savings['e-fifo']}",
    ]
    save_result("ablation_capacity_planning", lines)

    assert savings["fifo"] == 96
    assert savings["e-fifo"] is not None and savings["e-fifo"] <= 64
