"""Table II: characteristics of the training states.

Paper shape: states live on heterogeneous devices; the GPU-resident parts
(model parameters, optimizer state) are orders of magnitude larger than
the CPU-resident parts (data-loading state, communication group, runtime
info) — which is why replication must be efficient for GPU states and
why CPU states can ride along over a plain socket.
"""

from conftest import fmt_row

from repro.perfmodel import MODEL_ZOO
from repro.training import (
    MomentumSGD,
    RuntimeInfo,
    SerialLoader,
    TrainingState,
    init_mlp,
    loss_and_gradients,
    make_classification,
)


def build_table():
    rows = []
    for name, spec in MODEL_ZOO.items():
        rows.append((
            name,
            spec.param_bytes,
            spec.optimizer_bytes,
            spec.cpu_state_bytes,
        ))
    return rows


def test_table2_state_characteristics(benchmark, save_result):
    rows = benchmark(build_table)

    widths = (14, 14, 14, 12)
    lines = [fmt_row(
        ("Model", "Params(GPU)", "Optim(GPU)", "CPU state"), widths
    )]
    for name, params, optim, cpu in rows:
        lines.append(fmt_row(
            (name, f"{params / 1024**2:.0f}MB", f"{optim / 1024**2:.0f}MB",
             f"{cpu}B"),
            widths,
        ))
    save_result("table2_state_characteristics", lines)

    for _name, params, optim, cpu in rows:
        assert params > 100 * cpu  # GPU state dominates CPU state
        assert optim == params  # one momentum slot per parameter

    # Cross-check with a real (numpy) training state.
    dataset = make_classification(train_size=256, test_size=64, seed=0)
    params = init_mlp(dataset.input_dim, 64, dataset.num_classes, seed=0)
    optimizer = MomentumSGD(lr=0.1)
    _loss, grads = loss_and_gradients(params, dataset.train_x[:16],
                                      dataset.train_y[:16])
    optimizer.step(params, grads)
    loader = SerialLoader(dataset.train_size)
    state = TrainingState(
        model=params,
        optimizer=optimizer.state_dict(),
        loader=loader.state_dict(),
        comm_group=["w0", "w1"],
        runtime=RuntimeInfo(),
    )
    assert state.gpu_bytes() > 10 * state.cpu_bytes()
