"""Extension: SRTF-ordered elastic scheduling vs the paper's E-FIFO.

The paper leaves "a more complicated scheduling policy" to future work;
this benchmark evaluates one — elastic SRTF (admission and marginal-gain
allocation biased toward jobs closest to completion) — on the same traces
as Fig. 20.  Expected: a further average-JCT reduction at roughly equal
makespan (SRTF trades fairness, not efficiency).
"""

from conftest import fmt_row

from repro.scheduling import (
    ClusterSimulator,
    ElanCosts,
    ElasticFifoPolicy,
    ElasticSrtfPolicy,
    generate_trace,
)

SEEDS = (1, 2, 3)
GPUS = 128


def run_both():
    metrics = {}
    for policy_cls in (ElasticFifoPolicy, ElasticSrtfPolicy):
        jcts, jpts, makespans = [], [], []
        for seed in SEEDS:
            trace = generate_trace(seed=seed)
            result = ClusterSimulator(
                trace, policy_cls(), total_gpus=GPUS, costs=ElanCosts()
            ).run()
            jcts.append(result.average_jct)
            jpts.append(result.average_jpt)
            makespans.append(result.makespan)
        metrics[policy_cls().name] = (
            sum(jpts) / len(jpts),
            sum(jcts) / len(jcts),
            sum(makespans) / len(makespans),
        )
    return metrics


def test_ablation_srtf_policy(benchmark, save_result):
    metrics = benchmark.pedantic(run_both, rounds=1, iterations=1)

    widths = (8, 12, 12, 14)
    lines = [fmt_row(("Policy", "JPT (s)", "JCT (s)", "Makespan (s)"), widths)]
    for name, (jpt, jct, makespan) in metrics.items():
        lines.append(fmt_row(
            (name, f"{jpt:.0f}", f"{jct:.0f}", f"{makespan:.0f}"), widths
        ))
    fifo_jct = metrics["e-fifo"][1]
    srtf_jct = metrics["e-srtf"][1]
    lines.append(f"e-srtf JCT vs e-fifo: -{1 - srtf_jct / fifo_jct:.0%}")
    save_result("ablation_srtf_policy", lines)

    # SRTF further reduces average JCT ...
    assert srtf_jct < 0.90 * fifo_jct
    # ... without sacrificing overall efficiency (makespan within 5%).
    assert metrics["e-srtf"][2] < 1.05 * metrics["e-fifo"][2]
