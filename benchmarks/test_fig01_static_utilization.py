"""Fig. 1: GPU utilization of a statically scheduled cluster.

The paper's motivating figure: without elasticity, utilization swings
with the diurnal arrival pattern and jobs pend even while GPUs idle
(fragmentation + head-of-line blocking).
"""

from conftest import fmt_row

from repro.scheduling import ClusterSimulator, FifoPolicy, generate_trace

GPUS = 128
RESOLUTION = 2 * 3600.0


def run_static():
    trace = generate_trace(seed=0)
    return ClusterSimulator(trace, FifoPolicy(), total_gpus=GPUS).run()


def test_fig01_static_utilization(benchmark, save_result):
    result = benchmark.pedantic(run_static, rounds=1, iterations=1)

    series = result.utilization_series(RESOLUTION)
    widths = (8, 8, 22)
    lines = [fmt_row(("Hour", "Util", ""), widths)]
    for t, fraction in series:
        bar = "#" * int(fraction * 20)
        lines.append(fmt_row((f"{t / 3600:.0f}", f"{fraction:.0%}", bar),
                             widths))
    lines.append(f"average utilization: {result.average_utilization():.0%}")
    save_result("fig01_static_utilization", lines)

    fractions = [f for _t, f in series]
    # Dramatic fluctuation: both near-full and clearly-idle periods occur.
    assert max(fractions) > 0.85
    assert min(fractions) < 0.45
    # And overall utilization is mediocre — the waste Elan goes after.
    assert result.average_utilization() < 0.85
