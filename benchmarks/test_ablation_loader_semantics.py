"""Ablation: serial vs chunk-based data-loading semantics (§V-C, Fig. 13).

The serial semantics keeps the loader state at a constant 16 bytes (one
position integer + the epoch counter) no matter the dataset, while the
chunk-based record table grows linearly; after an elastic adjustment the
serial remainder is one contiguous range, the chunked remainder is
fragmented across partially consumed chunks.
"""

from conftest import fmt_row

from repro.training import ChunkLoader, SerialLoader

DATASET_SIZES = [10_000, 100_000, 1_281_167, 10_000_000]  # up to ImageNet+
CHUNK_SIZE = 256


def measure():
    rows = []
    for size in DATASET_SIZES:
        serial = SerialLoader(size)
        chunked = ChunkLoader(size, chunk_size=CHUNK_SIZE, num_workers=8)
        rows.append((size, serial.state_size_bytes(),
                     chunked.state_size_bytes()))
    return rows


def fragmentation_after_adjustment():
    serial = SerialLoader(4096, seed=1)
    chunked = ChunkLoader(4096, chunk_size=64, num_workers=8, seed=1)
    for _ in range(3):
        serial.next_iteration(8, 16)
        chunked.next_iteration(8, 16)
    serial.repartition(12)
    chunked.repartition(12)
    partially_consumed = sum(
        1 for c, used in chunked.consumed.items()
        if 0 < used < chunked._chunk_len(c)
    )
    return serial.remaining_in_epoch, partially_consumed


def test_ablation_loader_semantics(benchmark, save_result):
    rows = benchmark(measure)
    remaining, fragments = fragmentation_after_adjustment()

    widths = (12, 14, 16)
    lines = [fmt_row(("Dataset", "Serial state", "Chunked state"), widths)]
    for size, serial_bytes, chunk_bytes in rows:
        lines.append(fmt_row(
            (size, f"{serial_bytes} B", f"{chunk_bytes / 1024:.1f} KB"),
            widths,
        ))
    lines.append(
        f"after a mid-epoch 8->12 repartition: serial remainder is one "
        f"contiguous range of {remaining} samples; chunked remainder spans "
        f"{fragments} partially-consumed chunks"
    )
    save_result("ablation_loader_semantics", lines)

    # Serial state is constant; chunked grows linearly with the dataset.
    serial_sizes = {serial_bytes for _s, serial_bytes, _c in rows}
    assert serial_sizes == {16}
    chunk_sizes = [c for _s, _serial, c in rows]
    assert chunk_sizes == sorted(chunk_sizes)
    assert chunk_sizes[-1] > 1000 * 16  # orders of magnitude bigger
    assert fragments >= 2  # the Fig. 13 fragmentation is real
