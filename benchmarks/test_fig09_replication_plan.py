"""Fig. 9: the topology example — E and F join {A, B, C, D}.

A, B share a PCIe switch; C sits on the other socket of the same node; D
is on a second node.  New worker E lands next to C, F next to D.  The
planner must pick C -> E and D -> F and run both replications in
parallel, exactly the example the paper walks through.
"""

from conftest import fmt_row

from repro.perfmodel import RESNET50
from repro.replication import SimulatedReplicationExecutor, plan_replication
from repro.topology import BandwidthProfile, build_cluster, gpu_by_name


def build_plan():
    cluster = build_cluster(2)
    layout = {
        "A": "node0/gpu0",  # switch0, socket0
        "B": "node0/gpu1",  # same switch as A
        "C": "node0/gpu4",  # socket1 of node0
        "D": "node1/gpu0",  # second node
        "E": "node0/gpu5",  # same switch as C
        "F": "node1/gpu4",  # same node as D, other socket
    }
    gpus = {k: gpu_by_name(cluster, v) for k, v in layout.items()}
    existing = [gpus[k] for k in "ABCD"]
    new = [gpus[k] for k in "EF"]
    plan = plan_replication(
        existing, new, RESNET50.gpu_state_bytes, RESNET50.cpu_state_bytes
    )
    return gpus, plan


def test_fig09_replication_plan(benchmark, save_result):
    gpus, plan = benchmark(build_plan)
    timeline = SimulatedReplicationExecutor().execute(plan)

    lines = [fmt_row(("Transfer", "Level", "Transport", "Time(ms)"),
                     (34, 6, 10, 9))]
    for record in timeline.records:
        t = record.transfer
        lines.append(fmt_row(
            (t.describe().split(" [")[0], t.level.name, t.transport.value,
             f"{record.duration * 1e3:.1f}"),
            (34, 6, 10, 9),
        ))
    lines.append(f"rounds: {len(plan.rounds)}  "
                 f"makespan: {timeline.makespan * 1e3:.1f} ms")
    save_result("fig09_replication_plan", lines)

    by_target = {t.target.name: t.source.name for t in plan.transfers}
    assert by_target[gpus["E"].name] == gpus["C"].name  # E fetches from C
    assert by_target[gpus["F"].name] == gpus["D"].name  # F fetches from D
    assert len(plan.rounds) == 1  # the two replications run in parallel
    assert timeline.concurrent_pairs() == 1
