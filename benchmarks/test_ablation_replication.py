"""Ablation: what each replication design choice buys (§IV-3).

Dissects the concurrent IO-free mechanism on a 16 -> 32 worker scale-out
of a VGG-19-sized state (1.1 GB):

* topology-aware nearest-neighbor vs a topology-oblivious planner that
  always fetches from worker 0 (one source, arbitrary distance);
* concurrent rounds vs fully serial execution;
* the chaining extension (replicated workers become sources).
"""

from conftest import fmt_row

from repro.perfmodel import VGG19
from repro.replication import plan_replication
from repro.replication.planner import ReplicationPlan
from repro.topology import BandwidthProfile, build_cluster, gpus_of


def build_variants():
    cluster = build_cluster(4)
    gpus = gpus_of(cluster)
    existing, new = gpus[:16], gpus[16:32]
    profile = BandwidthProfile()
    variants = {}

    aware = plan_replication(
        existing, new, VGG19.gpu_state_bytes, VGG19.cpu_state_bytes
    )
    variants["topology-aware, concurrent"] = aware.estimated_time(profile)

    chained = plan_replication(
        existing, new, VGG19.gpu_state_bytes, VGG19.cpu_state_bytes,
        allow_chaining=True,
    )
    variants["topology-aware + chaining"] = chained.estimated_time(profile)

    oblivious = plan_replication(
        existing[:1], new, VGG19.gpu_state_bytes, VGG19.cpu_state_bytes
    )
    variants["single-source (oblivious)"] = oblivious.estimated_time(profile)

    # Fully serial: same transfers as the aware plan, one per round.
    serial = ReplicationPlan(
        transfers=aware.transfers,
        rounds=tuple((t,) for t in aware.transfers),
    )
    variants["topology-aware, serial"] = serial.estimated_time(profile)
    return variants


def test_ablation_replication(benchmark, save_result):
    variants = benchmark(build_variants)

    widths = (30, 10, 8)
    best = min(variants.values())
    lines = [fmt_row(("Variant", "Time (s)", "vs best"), widths)]
    for name, seconds in sorted(variants.items(), key=lambda kv: kv[1]):
        lines.append(fmt_row(
            (name, f"{seconds:.3f}", f"{seconds / best:.1f}x"), widths
        ))
    save_result("ablation_replication", lines)

    assert variants["topology-aware + chaining"] <= (
        variants["topology-aware, concurrent"] + 1e-9
    )
    assert variants["topology-aware, concurrent"] < (
        variants["topology-aware, serial"]
    )
    assert variants["topology-aware, concurrent"] < (
        variants["single-source (oblivious)"]
    )
    # The full mechanism is several times faster than the naive plan.
    assert variants["single-source (oblivious)"] > (
        2.0 * variants["topology-aware + chaining"]
    )
