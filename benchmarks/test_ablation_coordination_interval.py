"""Ablation: the coordination-frequency trade-off (§V-B).

"The frequency of coordination is configurable ... which gives users the
flexibility to make a trade-off between elasticity and training
efficiency."  Coordinating every iteration reacts fastest but costs the
most; long intervals are nearly free but delay adjustment commits (an
adjustment waits for the next boundary — on average interval/2
iterations).
"""

from conftest import fmt_row

from repro.baselines import runtime_overhead_fraction
from repro.perfmodel import RESNET50, ThroughputModel

INTERVALS = [1, 2, 5, 10, 25, 50, 100]
WORKERS = 16
BATCH = 512


def sweep():
    iteration_time = ThroughputModel(RESNET50).iteration_time(WORKERS, BATCH)
    rows = []
    for interval in INTERVALS:
        overhead = runtime_overhead_fraction(
            RESNET50, WORKERS, coordination_interval=interval
        )
        expected_delay = (interval / 2.0) * iteration_time
        rows.append((interval, overhead, expected_delay))
    return rows


def test_ablation_coordination_interval(benchmark, save_result):
    rows = benchmark(sweep)

    widths = (10, 12, 16)
    lines = [fmt_row(("Interval", "Overhead", "Commit delay (s)"), widths)]
    for interval, overhead, delay in rows:
        lines.append(fmt_row(
            (interval, f"{overhead * 1000:.3f}‰", f"{delay:.3f}"), widths
        ))
    save_result("ablation_coordination_interval", lines)

    overheads = [o for _i, o, _d in rows]
    delays = [d for _i, _o, d in rows]
    # Overhead strictly falls, commit delay strictly rises: a real
    # trade-off with no dominant point.
    assert overheads == sorted(overheads, reverse=True)
    assert delays == sorted(delays)
    # Even the most aggressive setting stays under the paper's 3 per mille.
    assert overheads[0] < 0.003
    # And a 100-iteration interval still commits within ~10 s (<< S&R's
    # restart cost), so coarse coordination remains attractive.
    assert delays[-1] < 10.0
