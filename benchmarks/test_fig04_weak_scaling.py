"""Fig. 4: training throughput under weak scaling (5 models x per-worker
batches).

Paper shape: throughput grows (near-)linearly with workers, and the slope
increases with the per-worker batch size.
"""

from conftest import fmt_row

from repro.perfmodel import MODEL_ZOO, ThroughputModel

WORKERS = [1, 2, 4, 8, 16, 32, 64]
PER_WORKER_BATCHES = [16, 32, 64]


def build_curves():
    curves = {}
    for name, spec in MODEL_ZOO.items():
        model = ThroughputModel(spec)
        for batch in PER_WORKER_BATCHES:
            curves[(name, batch)] = model.weak_scaling_curve(batch, WORKERS)
    return curves


def test_fig04_weak_scaling(benchmark, save_result):
    curves = benchmark(build_curves)

    widths = (14, 6) + (9,) * len(WORKERS)
    lines = [fmt_row(("Model", "b/wkr") + tuple(WORKERS), widths)]
    for (name, batch), curve in curves.items():
        lines.append(fmt_row(
            (name, batch) + tuple(f"{tp:.0f}" for _n, tp in curve), widths,
        ))
    save_result("fig04_weak_scaling", lines)

    for (name, batch), curve in curves.items():
        tps = [tp for _n, tp in curve]
        # Monotone growth throughout the plotted range.
        assert tps == sorted(tps), f"{name}@{batch}: not monotone"
    for name in MODEL_ZOO:
        # Slope grows with the per-worker batch (obs. 2 of §III-1):
        # compare throughput at 32 workers across batch sizes.
        at32 = [dict(curves[(name, b)])[32] for b in PER_WORKER_BATCHES]
        assert at32 == sorted(at32), f"{name}: slope not growing with batch"
