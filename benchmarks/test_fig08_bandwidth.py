"""Fig. 8: bandwidth of P2P / SHM / NET across message sizes.

Paper shape: P2P > SHM > NET at every size; all saturate for large
messages.
"""

from conftest import fmt_row

from repro.perfmodel import bandwidth_sweep, verify_figure8_ordering
from repro.topology import Transport


def test_fig08_bandwidth(benchmark, save_result):
    sweep = benchmark(bandwidth_sweep)

    sizes = [size for size, _bw in sweep[Transport.P2P]]
    widths = (12, 12, 12, 12)
    lines = [fmt_row(("Size", "P2P GB/s", "SHM GB/s", "NET GB/s"), widths)]
    for index, size in enumerate(sizes):
        row = [f"{size / 1024:.0f}KB" if size < 1024**2 else f"{size / 1024**2:.0f}MB"]
        for transport in (Transport.P2P, Transport.SHM, Transport.NET):
            row.append(f"{sweep[transport][index][1] / 1e9:.2f}")
        lines.append(fmt_row(row, widths))
    save_result("fig08_bandwidth", lines)

    assert verify_figure8_ordering(sweep)
    for transport, points in sweep.items():
        bws = [bw for _s, bw in points]
        assert bws == sorted(bws), f"{transport}: not monotone in size"
        # Saturation: the largest message achieves >90% of the curve max.
        assert bws[-1] > 0.9 * max(bws)
