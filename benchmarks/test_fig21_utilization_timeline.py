"""Figs. 1/21: GPU utilization over time, static vs elastic scheduling.

Fig. 1 (the motivation): under static scheduling, utilization fluctuates
heavily and the cluster idles while jobs pend.  Fig. 21: the elastic
policy absorbs the fluctuation and keeps utilization high.
"""

from conftest import fmt_row

from repro.scheduling import (
    ClusterSimulator,
    ElanCosts,
    ElasticFifoPolicy,
    FifoPolicy,
    generate_trace,
)

GPUS = 128
RESOLUTION = 4 * 3600.0  # 4-hour buckets for the printed series


def run_pair():
    trace = generate_trace(seed=1)
    static = ClusterSimulator(trace, FifoPolicy(), total_gpus=GPUS,
                              costs=ElanCosts()).run()
    elastic = ClusterSimulator(trace, ElasticFifoPolicy(), total_gpus=GPUS,
                               costs=ElanCosts()).run()
    return static, elastic


def test_fig21_utilization_timeline(benchmark, save_result):
    static, elastic = benchmark.pedantic(run_pair, rounds=1, iterations=1)

    static_series = dict(static.utilization_series(RESOLUTION))
    elastic_series = dict(elastic.utilization_series(RESOLUTION))
    times = sorted(set(static_series) | set(elastic_series))
    widths = (10, 10, 10)
    lines = [fmt_row(("Hour", "Static", "Elastic"), widths)]
    for t in times:
        lines.append(fmt_row(
            (
                f"{t / 3600:.0f}",
                f"{static_series.get(t, 0.0):.0%}",
                f"{elastic_series.get(t, 0.0):.0%}",
            ),
            widths,
        ))
    lines.append(
        f"average: static {static.average_utilization():.0%} "
        f"elastic {elastic.average_utilization():.0%}"
    )
    save_result("fig21_utilization_timeline", lines)

    # Elastic scheduling achieves higher average utilization (paper: 21%+
    # improvement; measured as makespan shrinkage + busier GPUs).
    assert elastic.average_utilization() > 1.10 * static.average_utilization()
    # And it deals with fluctuation better: during the loaded middle of
    # the trace the elastic cluster stays close to fully busy more often.
    window = [t for t in times if 12 * 3600 <= t <= 36 * 3600]
    elastic_busy = sum(1 for t in window if elastic_series.get(t, 0) > 0.9)
    static_busy = sum(1 for t in window if static_series.get(t, 0) > 0.9)
    assert elastic_busy >= static_busy
