"""Fig. 16: relative training throughput of Litz versus Elan.

Paper shape: Litz runs far below Elan for every model (context switches
swap GPU contexts through CPU memory); the loss exceeds 90% on
Transformer; more workers recover a little thanks to local gradient
aggregation.
"""

from conftest import fmt_row

from repro.baselines import LITZ_2, LITZ_4, LitzModel
from repro.perfmodel import MODEL_ZOO, TRANSFORMER

WORKERS = [2, 4, 8, 16, 32, 64]


def compute_relative():
    relative = {}
    for name, spec in MODEL_ZOO.items():
        for config, tag in ((LITZ_2, "Litz-2"), (LITZ_4, "Litz-4")):
            model = LitzModel(spec, config)
            relative[(name, tag)] = [
                model.relative_throughput(n) for n in WORKERS
            ]
    return relative


def test_fig16_litz_throughput(benchmark, save_result):
    relative = benchmark(compute_relative)

    widths = (14, 8) + (7,) * len(WORKERS)
    lines = [fmt_row(("Model", "Variant") + tuple(WORKERS), widths)]
    for (name, tag), values in relative.items():
        lines.append(fmt_row(
            (name, tag) + tuple(f"{v:.2f}" for v in values), widths
        ))
    save_result("fig16_litz_throughput", lines)

    for (name, tag), values in relative.items():
        assert max(values) < 0.45, f"{name}/{tag}: Litz too fast"
        # Mild recovery (or at worst flatness) with more workers.
        assert values[-1] >= values[0] - 1e-9, f"{name}/{tag}: got worse"
    # Transformer with Litz-4 loses more than 90% (paper's callout).
    transformer = LitzModel(TRANSFORMER, LITZ_4)
    assert transformer.relative_throughput(2) < 0.11
