"""Fig. 12: the asynchronous coordination timeline, simulated on the DES.

Reconstructs the paper's Fig. 10-vs-Fig. 12 contrast on the event kernel:
a ResNet-50 job iterates while two new workers start and initialize;
under Elan the adjustment commits at the first coordination boundary
after the last report (start/init entirely off the critical path), under
S&R the whole job stops for checkpoint + restart.  The benchmark verifies
the training-loss-of-time accounting of both systems.
"""

from conftest import fmt_row

from repro.baselines import ElanAdjustmentModel, ShutdownRestartModel
from repro.perfmodel import RESNET50, ThroughputModel
from repro.perfmodel.calibration import (
    WORKER_INIT_TIME,
    WORKER_START_TIME,
)
from repro.simcore import Simulator

OLD_WORKERS, NEW_WORKERS = 8, 16
BATCH = 512


def simulate_elan_timeline():
    """DES run: training iterations vs new-worker startup in parallel."""
    sim = Simulator()
    throughput = ThroughputModel(RESNET50)
    iteration_time = throughput.iteration_time(OLD_WORKERS, BATCH)
    events = []
    reports = []
    adjustment = {"commit": None, "resume": None}
    pause = ElanAdjustmentModel(seed=0).adjustment_time(
        "scale_out", RESNET50, OLD_WORKERS, NEW_WORKERS
    ).total

    def new_worker(worker_id, start_jitter):
        yield sim.timeout(WORKER_START_TIME + start_jitter)
        events.append((sim.now, f"{worker_id} started"))
        yield sim.timeout(WORKER_INIT_TIME)
        events.append((sim.now, f"{worker_id} reported"))
        reports.append(sim.now)

    def training():
        iterations = 0
        while adjustment["resume"] is None:
            yield sim.timeout(iteration_time)
            iterations += 1
            # Coordinate every iteration: commit once all reported.
            if len(reports) == 2 and adjustment["commit"] is None:
                adjustment["commit"] = sim.now
                events.append((sim.now, "commit: replicate + adjust"))
                yield sim.timeout(pause)
                adjustment["resume"] = sim.now
                events.append((sim.now, "training resumed on 16 workers"))
        return iterations

    sim.process(new_worker("worker A", 0.0))
    sim.process(new_worker("worker B", 2.5))  # a straggling starter
    trainer = sim.process(training())
    iterations = sim.run(until=trainer)
    return events, iterations, adjustment, pause


def test_fig12_async_timeline(benchmark, save_result):
    events, iterations, adjustment, pause = benchmark.pedantic(
        simulate_elan_timeline, rounds=1, iterations=1
    )
    sr_total = ShutdownRestartModel(seed=0).adjustment_time(
        "scale_out", RESNET50, OLD_WORKERS, NEW_WORKERS
    ).total

    widths = (10, 40)
    lines = [fmt_row(("t (s)", "event"), widths)]
    for when, what in sorted(events):
        lines.append(fmt_row((f"{when:.2f}", what), widths))
    lines.append(
        f"iterations completed while workers started: {iterations - 1}"
    )
    lines.append(f"training pause (Elan): {pause:.2f} s")
    lines.append(f"training pause (S&R would be): {sr_total:.2f} s")
    save_result("fig12_async_timeline", lines)

    # Training made real progress during the ~25s of start+init.
    assert iterations > 50
    # The commit waited for the straggling starter (no partial commits).
    last_report = max(t for t, what in events if "reported" in what)
    assert adjustment["commit"] >= last_report
    # And the actual pause is two orders of magnitude below S&R's.
    assert pause < 1.0
    assert sr_total > 20 * pause
