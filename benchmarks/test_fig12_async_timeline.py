"""Fig. 12: the asynchronous coordination timeline, from the trace.

Reconstructs the paper's Fig. 10-vs-Fig. 12 contrast on the DES twin of
the control plane (`SimulatedElasticJob`, which drives the *real*
ApplicationMaster): a ResNet-50 job iterates while new workers start and
initialize; under Elan the adjustment commits at the first coordination
boundary after the last report (start/init entirely off the critical
path), under S&R the whole job stops for checkpoint + restart.

Every number in the table — worker startup windows, overlapped
iterations, commit point, training pause — is derived from the job's
trace (``adjust.request`` / ``worker.start_init`` / ``worker.report`` /
``adjust.commit`` / ``iteration`` events), not from ad-hoc timers: the
figure is exactly what Perfetto would show for the exported file.
"""

from conftest import fmt_row

from repro.baselines import ShutdownRestartModel
from repro.coordination import SimulatedElasticJob
from repro.perfmodel import RESNET50

OLD_WORKERS, NEW_WORKERS = 8, 16
BATCH = 512
REQUEST_AT = 5.0


def simulate_elan_job() -> SimulatedElasticJob:
    """DES run: training iterations vs new-worker startup in parallel."""
    job = SimulatedElasticJob(
        RESNET50, workers=OLD_WORKERS, total_batch_size=BATCH, seed=0
    )
    job.at(REQUEST_AT, lambda: job.request_scale_out(
        NEW_WORKERS - OLD_WORKERS
    ))
    job.run(until=400.0)
    return job


def test_fig12_async_timeline(benchmark, save_result):
    job = benchmark.pedantic(simulate_elan_job, rounds=1, iterations=1)
    tracer = job.tracer
    sr_total = ShutdownRestartModel(seed=0).adjustment_time(
        "scale_out", RESNET50, OLD_WORKERS, NEW_WORKERS
    ).total

    # -- reconstruct the timeline purely from trace events --------------------
    (request,) = tracer.instants("adjust.request")
    startups = sorted(tracer.spans("worker.start_init"),
                      key=lambda s: s.end)
    reports = tracer.instants("worker.report")
    (commit,) = tracer.spans("adjust.commit")
    iterations = tracer.spans("iteration")
    overlapped = [
        s for s in iterations if request.start <= s.end <= commit.start
    ]

    events = [(request.start, "scale-out 8 -> 16 requested")]
    for span in startups:
        events.append(
            (span.end, f"{span.args['worker']} started + initialized "
                       f"({span.duration:.1f}s)")
        )
    events.append((commit.start, "commit: replicate + adjust"))
    events.append(
        (commit.end, f"training resumed on {commit.args['new_workers']} "
                     f"workers")
    )

    widths = (10, 44)
    lines = [fmt_row(("t (s)", "event (from trace)"), widths)]
    for when, what in sorted(events):
        lines.append(fmt_row((f"{when:.2f}", what), widths))
    lines.append(
        f"iterations completed while workers started: {len(overlapped)}"
    )
    lines.append(f"training pause (Elan): {commit.duration:.2f} s")
    lines.append(f"training pause (S&R would be): {sr_total:.2f} s")
    save_result("fig12_async_timeline", lines)

    # Training made real progress during the ~25s of start+init.
    assert len(overlapped) > 50
    # Every new worker reported before the commit (no partial commits) ...
    assert len(startups) == len(reports) == NEW_WORKERS - OLD_WORKERS
    last_report = max(i.start for i in reports)
    assert commit.start >= last_report
    # ... and the commit sub-phases tile the pause.
    (replicate,) = tracer.spans("commit.replicate")
    (reconfigure,) = tracer.spans("commit.reconfigure")
    assert abs(
        replicate.duration + reconfigure.duration - commit.duration
    ) < 1e-9
    # The actual pause is two orders of magnitude below S&R's.
    assert commit.duration < 1.0
    assert sr_total > 20 * commit.duration
    # The trace agrees with the job's own measured adjustment record.
    (adjustment,) = job.adjustments
    assert abs(adjustment.pause - commit.duration) < 1e-9
    assert abs(adjustment.commit_time - commit.start) < 1e-9
