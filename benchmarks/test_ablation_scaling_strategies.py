"""Ablation: strong vs weak vs hybrid scaling on a 16 -> 64 scale-out.

The trade-off hybrid scaling navigates (§III): after quadrupling the
workers of a ResNet-50 job mid-training,

* **strong** keeps batch 512 — algorithm-transparent but the extra GPUs
  mostly idle (strong scaling is far past its optimum at 64 workers);
* **weak, fixed LR** jumps to batch 2048 — fast, but the unscaled LR
  costs accuracy (Fig. 5's Default);
* **weak, abrupt LR** scales the LR in one step — recovers most accuracy
  but risks the sharp-change penalty;
* **hybrid** (weak + progressive linear scaling) gets the throughput AND
  keeps the accuracy.
"""

from conftest import fmt_row

from repro.perfmodel import (
    RESNET50,
    RESNET50_IMAGENET,
    AccuracyModel,
    LrPolicy,
    ThroughputModel,
)
from repro.perfmodel.throughput import EVAL_CLUSTER

OLD_WORKERS, NEW_WORKERS = 16, 64
BASE_BATCH = 512


def evaluate_strategies():
    throughput = ThroughputModel(RESNET50, EVAL_CLUSTER)
    accuracy = AccuracyModel(RESNET50_IMAGENET)
    before = throughput.throughput(OLD_WORKERS, BASE_BATCH)
    strategies = {
        "strong (TBS 512)": (BASE_BATCH, LrPolicy.PROGRESSIVE_LINEAR),
        "weak, fixed LR": (BASE_BATCH * 4, LrPolicy.FIXED),
        "weak, abrupt LR": (BASE_BATCH * 4, LrPolicy.LINEAR_ABRUPT),
        "hybrid (weak + progressive)": (
            BASE_BATCH * 4, LrPolicy.PROGRESSIVE_LINEAR,
        ),
    }
    rows = {}
    for name, (batch, policy) in strategies.items():
        tp = throughput.throughput(NEW_WORKERS, batch)
        final = accuracy.final_accuracy(batch, policy)
        rows[name] = (tp / before, final)
    return rows


def test_ablation_scaling_strategies(benchmark, save_result):
    rows = benchmark(evaluate_strategies)

    widths = (28, 12, 12)
    lines = [fmt_row(("Strategy", "Speedup", "Final top-1"), widths)]
    for name, (speedup, final) in rows.items():
        lines.append(fmt_row(
            (name, f"{speedup:.2f}x", f"{final:.2%}"), widths
        ))
    save_result("ablation_scaling_strategies", lines)

    strong_speed, strong_acc = rows["strong (TBS 512)"]
    fixed_speed, fixed_acc = rows["weak, fixed LR"]
    abrupt_speed, abrupt_acc = rows["weak, abrupt LR"]
    hybrid_speed, hybrid_acc = rows["hybrid (weak + progressive)"]

    # Weak scaling (any LR) is much faster than strong at 4x workers.
    assert hybrid_speed > 1.5 * strong_speed
    assert fixed_speed == hybrid_speed  # same compute, LR doesn't change it
    # Strong scaling is perfectly algorithm-transparent.
    assert strong_acc == hybrid_acc or strong_acc >= hybrid_acc - 1e-9
    # Fixed LR pays a visible accuracy cost; abrupt recovers most of it;
    # progressive recovers it fully (batch 2048 < the critical batch).
    assert fixed_acc < hybrid_acc - 0.02
    assert fixed_acc < abrupt_acc < hybrid_acc + 1e-12
