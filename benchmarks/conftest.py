"""Shared helpers for the figure/table regeneration benchmarks.

Every benchmark regenerates the data behind one paper figure or table,
saves the rendered rows under ``benchmarks/results/`` and asserts the
paper's qualitative shape.  Run with::

    pytest benchmarks/ --benchmark-only

and inspect ``benchmarks/results/*.txt`` afterwards.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir):
    """Write one experiment's rendered output to results/<name>.txt."""

    def _save(name: str, lines: "list[str]") -> str:
        text = "\n".join(lines) + "\n"
        path = results_dir / f"{name}.txt"
        path.write_text(text)
        print(f"\n=== {name} ===\n{text}")
        return text

    return _save


def fmt_row(cells, widths):
    """Fixed-width row renderer for the saved tables."""
    return "  ".join(str(c).ljust(w) for c, w in zip(cells, widths))
