"""Fig. 3: training throughput under strong scaling (5 models x batches).

Paper shape: throughput increases and then decreases with the number of
workers; the optimal worker count moves right with larger total batches.
"""

from conftest import fmt_row

from repro.perfmodel import MODEL_ZOO, ThroughputModel

# The paper plots up to 64 workers; we extend the sweep so the post-peak
# decline is visible for every batch size (VGG's optimum at TBS 2048 sits
# near 93 workers).
WORKERS = [1, 2, 4, 8, 16, 32, 64, 128, 256]
BATCHES = [256, 512, 1024, 2048]


def build_curves():
    curves = {}
    for name, spec in MODEL_ZOO.items():
        model = ThroughputModel(spec)
        for batch in BATCHES:
            curves[(name, batch)] = model.strong_scaling_curve(batch, WORKERS)
    return curves


def test_fig03_strong_scaling(benchmark, save_result):
    curves = benchmark(build_curves)

    widths = (14, 6) + (9,) * len(WORKERS)
    lines = [fmt_row(("Model", "TBS") + tuple(WORKERS), widths)]
    for (name, batch), curve in curves.items():
        throughputs = {n: tp for n, tp in curve}
        lines.append(fmt_row(
            (name, batch)
            + tuple(f"{throughputs[n]:.0f}" if n in throughputs else "-"
                    for n in WORKERS),
            widths,
        ))
    save_result("fig03_strong_scaling", lines)

    peaks = {}
    for (name, batch), curve in curves.items():
        tps = [tp for _n, tp in curve]
        peak = tps.index(max(tps))
        # Rise-then-fall: the peak is interior to the sweep.
        assert peak > 0, f"{name}@{batch}: no rise"
        assert peak < len(tps) - 1, f"{name}@{batch}: no decline in range"
        peaks[(name, batch)] = curve[peak][0]
    # The optimum moves right (non-strictly) with the total batch size.
    for name in MODEL_ZOO:
        worker_opts = [peaks[(name, batch)] for batch in BATCHES]
        assert worker_opts == sorted(worker_opts), f"{name}: peaks not monotone"
